#include "marvel/cell_engine.h"

#include <algorithm>
#include <cstring>

#include "balance/digest.h"
#include "balance/steal.h"
#include "features/color_correlogram.h"
#include "features/color_histogram.h"
#include "features/edge_histogram.h"
#include "features/texture.h"
#include "kernels/cc_kernel.h"
#include "kernels/cd_kernel.h"
#include "kernels/ch_kernel.h"
#include "kernels/eh_kernel.h"
#include "kernels/tx_kernel.h"
#include "shard/mirror.h"
#include "shard/reducer.h"
#include "support/error.h"

namespace cellport::marvel {

namespace {

/// Feature output buffers are padded to 8 floats so every kernel's
/// (16-byte-granular) result DMA fits.
std::size_t padded_dim(int dim) {
  return cellport::round_up(static_cast<std::size_t>(dim), 8);
}

}  // namespace

CellEngine::CellEngine(sim::Machine& machine,
                       const std::string& library_path, Scenario scenario,
                       kernels::BufferingDepth buffering, bool use_naive,
                       guard::GuardPolicy guard)
    : machine_(machine),
      scenario_(scenario),
      buffering_(buffering),
      use_naive_(use_naive),
      profiler_(machine.ppe()),
      guard_(guard) {
  images_counter_ = &machine_.metrics().counter("marvel.images_analyzed");
  feed_images_counter_ = &machine_.metrics().counter("feed.images");
  feed_rows_counter_ = &machine_.metrics().counter("feed.rows");
  feed_fallback_counter_ =
      &machine_.metrics().counter("feed.ppe_fallbacks");
  fuse_images_counter_ = &machine_.metrics().counter("fuse.images");
  {
    // One-time overhead: the model library load, on the PPE.
    port::Profiler::Scope probe(profiler_, kPhaseStartup);
    sim::SimTime t0 = machine_.ppe().now_ns();
    models_ = learn::load_library(library_path, &machine_.ppe());
    startup_ns_ = machine_.ppe().now_ns() - t0;
  }

  const struct {
    port::KernelModule& (*module)();
    const char* phase;
    int dim;
    const learn::ConceptModelSet* set;
    const char* name;
    features::FeatureVector (*ref)(const img::RgbImage&,
                                   sim::ScalarContext*);
  } config[4] = {
      {&kernels::ch_module, kPhaseCh, features::kColorHistogramDim,
       &models_.color_histogram, "color_histogram",
       &features::extract_color_histogram},
      {&kernels::cc_module, kPhaseCc, features::kColorCorrelogramDim,
       &models_.color_correlogram, "color_correlogram",
       &features::extract_color_correlogram},
      {&kernels::tx_module, kPhaseTx, features::kTextureDim,
       &models_.texture, "texture", &features::extract_texture},
      {&kernels::eh_module, kPhaseEh, features::kEdgeHistogramDim,
       &models_.edge_histogram, "edge_histogram",
       &features::extract_edge_histogram},
  };

  // cellshard: choose the shard plan for this machine shape up front so
  // guarded and unguarded engines pin the same placement.
  if (scenario_ == Scenario::kSharded) {
    plan_ = shard::plan_shards(machine_.num_spes());
    auto& metrics = machine_.metrics();
    metrics.gauge("shard.plan.ch").set(plan_.extract_shards[shard::kSlotCh]);
    metrics.gauge("shard.plan.cc").set(plan_.extract_shards[shard::kSlotCc]);
    metrics.gauge("shard.plan.tx").set(plan_.extract_shards[shard::kSlotTx]);
    metrics.gauge("shard.plan.eh").set(plan_.extract_shards[shard::kSlotEh]);
    metrics.gauge("shard.plan.cd").set(plan_.detect_spes);
    shard_reduce_counter_ = &metrics.counter("shard.reduces");
    // cellfuse: the fused lane/detect split for the same machine shape
    // (consulted only when set_fused(true); lanes ride the extract-shard
    // SPEs pinned below, capped at this count).
    fused_plan_ = shard::plan_fused(machine_.num_spes());
    metrics.gauge("shard.plan.fused_lanes").set(fused_plan_.lanes);
    metrics.gauge("shard.plan.fused_cd").set(fused_plan_.detect_spes);
  }

  // Static schedule: one resident kernel per SPE (Section 3.3). A guarded
  // engine wraps the same placement in GuardedInterfaces; any SPE beyond
  // the pinned set becomes a shared spare retries may migrate to.
  if (guard_.enabled) {
    health_ = std::make_unique<guard::SpeHealth>(machine_, guard_.retry);
    fallback_counter_ = &machine_.metrics().counter("guard.ppe_fallbacks");
    int pinned = scenario_ == Scenario::kMultiSPE2 ? 8
                 : scenario_ == Scenario::kSharded ? plan_.spes_used()
                                                   : 5;
    std::vector<int> spares;
    for (int s = pinned; s < machine_.num_spes(); ++s) spares.push_back(s);
    if (scenario_ == Scenario::kSharded) {
      int spe = 0;
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < plan_.extract_shards[i]; ++j) {
          slots_[i].g_shards.push_back(
              std::make_unique<guard::GuardedInterface>(
                  *health_, config[i].module(), spe++, spares));
        }
      }
      for (int b = 0; b < plan_.detect_spes; ++b) {
        g_cd_shards_.push_back(std::make_unique<guard::GuardedInterface>(
            *health_, kernels::cd_module(), spe++, spares));
      }
    } else {
      for (int i = 0; i < 4; ++i) {
        slots_[i].g_extract = std::make_unique<guard::GuardedInterface>(
            *health_, config[i].module(), i, spares);
      }
      if (scenario_ == Scenario::kMultiSPE2) {
        for (int i = 0; i < 4; ++i) {
          slots_[i].g_detect = std::make_unique<guard::GuardedInterface>(
              *health_, kernels::cd_module(), 4 + i, spares);
        }
      } else {
        g_cd_ = std::make_unique<guard::GuardedInterface>(
            *health_, kernels::cd_module(), 4, spares);
      }
    }
  } else if (scenario_ == Scenario::kSharded) {
    int spe = 0;
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < plan_.extract_shards[i]; ++j) {
        slots_[i].shard_ifs.push_back(std::make_unique<port::SPEInterface>(
            config[i].module(), spe++));
      }
    }
    for (int b = 0; b < plan_.detect_spes; ++b) {
      cd_shard_ifs_.push_back(
          std::make_unique<port::SPEInterface>(kernels::cd_module(), spe++));
    }
  } else {
    ch_if_ = std::make_unique<port::SPEInterface>(kernels::ch_module(), 0);
    cc_if_ = std::make_unique<port::SPEInterface>(kernels::cc_module(), 1);
    tx_if_ = std::make_unique<port::SPEInterface>(kernels::tx_module(), 2);
    eh_if_ = std::make_unique<port::SPEInterface>(kernels::eh_module(), 3);
    cd_if_ = std::make_unique<port::SPEInterface>(kernels::cd_module(), 4);
    if (scenario_ == Scenario::kMultiSPE2) {
      for (int i = 0; i < 3; ++i) {
        cd_extra_[i] = std::make_unique<port::SPEInterface>(
            kernels::cd_module(), 5 + i);
      }
    }
    slots_[0].extract_if = ch_if_.get();
    slots_[1].extract_if = cc_if_.get();
    slots_[2].extract_if = tx_if_.get();
    slots_[3].extract_if = eh_if_.get();
  }

  for (int i = 0; i < 4; ++i) {
    FeatureSlot& slot = slots_[i];
    slot.phase = config[i].phase;
    slot.dim = config[i].dim;
    slot.name = config[i].name;
    slot.ref_extract = config[i].ref;
    slot.out = cellport::AlignedBuffer<float>(padded_dim(config[i].dim));
    setup_detection(slot, *config[i].set);
    if (scenario_ == Scenario::kMultiSPE2 && !guard_.enabled) {
      slot.detect_if = i == 0 ? cd_if_.get() : cd_extra_[i - 1].get();
    }
  }
  if (scenario_ == Scenario::kSharded) setup_sharding();
}

void CellEngine::setup_sharding() {
  // Raw-partial bytes per shard: fixed for the counting kernels; TX is
  // tile-count dependent and (re)sized per image in prepare_shards.
  const std::size_t part_bytes[4] = {
      kernels::kShardChWords * sizeof(std::uint32_t),
      kernels::kShardCcWords * sizeof(std::uint32_t),
      0,
      kernels::kShardEhWords * sizeof(std::uint32_t),
  };
  for (int i = 0; i < 4; ++i) {
    FeatureSlot& slot = slots_[i];
    const auto n = static_cast<std::size_t>(plan_.extract_shards[i]);
    slot.shard_msgs = std::vector<port::WrappedMessage<kernels::ImageMsg>>(n);
    slot.shard_parts.resize(n);
    if (part_bytes[i] > 0) {
      for (auto& p : slot.shard_parts) {
        p = cellport::AlignedBuffer<std::uint8_t>(part_bytes[i]);
      }
    }
  }
  // Detection staging: each block's kernel pads its score DMA to an even
  // count, so blocks land in per-block buffers and the PPE concatenates
  // the exact counts (writing into slot.scores directly would overlap at
  // odd block boundaries).
  std::size_t max_models = 0;
  for (const auto& slot : slots_) {
    max_models = std::max(max_models, slot.set->models.size());
  }
  const auto d = static_cast<std::size_t>(plan_.detect_spes);
  cd_block_msgs_ = std::vector<port::WrappedMessage<kernels::DetectMsg>>(d);
  cd_block_scores_.resize(d);
  for (auto& s : cd_block_scores_) {
    s = cellport::AlignedBuffer<double>(cellport::round_up(max_models, 2));
  }
}

void CellEngine::prepare_shards(const img::RgbImage& pixels) {
  const int h = pixels.height();
  std::uint64_t stores = 0;
  for (int i = 0; i < 4; ++i) {
    FeatureSlot& slot = slots_[i];
    const int n = plan_.extract_shards[i];
    slot.shard_rows = i == shard::kSlotTx ? shard::split_tiles(h, n)
                                          : shard::split_rows(h, n);
    for (int j = 0; j < n; ++j) {
      const shard::Range& r = slot.shard_rows[static_cast<std::size_t>(j)];
      if (r.empty()) continue;
      if (i == shard::kSlotTx) {
        const auto bytes = static_cast<std::size_t>(
                               shard::tx_partial_doubles(r)) *
                           sizeof(double);
        auto& part = slot.shard_parts[static_cast<std::size_t>(j)];
        if (part.bytes() < bytes) {
          part = cellport::AlignedBuffer<std::uint8_t>(bytes);
        }
      }
      kernels::ImageMsg& m = *slot.shard_msgs[static_cast<std::size_t>(j)];
      m = *slot.msg;
      m.row_begin = r.begin;
      m.row_end = r.end;
      m.out_ea = reinterpret_cast<std::uint64_t>(
          slot.shard_parts[static_cast<std::size_t>(j)].data());
      stores += 4;
    }
  }
  machine_.ppe().charge(sim::OpClass::kStore, stores);
}

void CellEngine::setup_detection(FeatureSlot& slot,
                                 const learn::ConceptModelSet& set) {
  slot.set = &set;
  slot.descs = cellport::AlignedBuffer<kernels::DetectModelDesc>(
      set.models.size());
  for (std::size_t m = 0; m < set.models.size(); ++m) {
    const learn::SvmModel& model = set.models[m];
    kernels::DetectModelDesc& d = slot.descs[m];
    d.sv_ea = reinterpret_cast<std::uint64_t>(model.sv_data());
    d.coef_ea = reinterpret_cast<std::uint64_t>(model.coef().data());
    d.num_sv = model.num_sv();
    d.sv_stride = model.sv_stride();
    d.gamma = model.gamma();
    d.rho = model.rho();
    d.kernel_type = static_cast<std::int32_t>(model.kernel());
  }
  slot.scores = cellport::AlignedBuffer<double>(
      cellport::round_up(set.models.size(), 2));
  kernels::DetectMsg& msg = *slot.detect_msg;
  msg.feature_ea = reinterpret_cast<std::uint64_t>(slot.out.data());
  msg.dim = slot.dim;
  msg.num_models = static_cast<std::int32_t>(set.models.size());
  msg.models_ea = reinterpret_cast<std::uint64_t>(slot.descs.data());
  msg.scores_ea = reinterpret_cast<std::uint64_t>(slot.scores.data());
  msg.buffering = buffering_;
}

void CellEngine::fill_image_msg(FeatureSlot& slot,
                                const img::RgbImage& pixels) {
  // Listing 4's FILL_MSG_FROM_COLORIMAGE: wrap the class members into the
  // aligned message structure.
  machine_.ppe().charge(sim::OpClass::kStore, 12);
  kernels::ImageMsg& msg = *slot.msg;
  msg.pixels_ea = reinterpret_cast<std::uint64_t>(pixels.data());
  msg.width = pixels.width();
  msg.height = pixels.height();
  msg.stride = pixels.stride();
  msg.buffering = buffering_;
  msg.out_ea = reinterpret_cast<std::uint64_t>(slot.out.data());
  msg.out_count = slot.dim;
}

void CellEngine::run_detection(FeatureSlot& slot,
                               port::SPEInterface& iface) {
  iface.SendAndWait(static_cast<int>(kernels::SPU_Run),
                    slot.detect_msg.ea());
}

void CellEngine::collect(FeatureSlot& slot, features::FeatureVector& fv,
                         DetectionScores& scores, const char* name) {
  // Copy results from the output buffers back into the class data
  // (Section 3.3, last step). Charged as the loads/stores it is.
  machine_.ppe().charge(sim::OpClass::kLoad,
                        static_cast<std::uint64_t>(slot.dim) +
                            slot.scores.size());
  machine_.ppe().charge(sim::OpClass::kStore,
                        static_cast<std::uint64_t>(slot.dim) +
                            slot.scores.size());
  fv.name = name;
  fv.values.assign(slot.out.data(), slot.out.data() + slot.dim);
  scores.values.assign(slot.scores.data(),
                       slot.scores.data() + slot.set->models.size());
}

// ---- cellfeed: SPE-resident ingest of PPM carriers ----
//
// The paper's strategy applied to the last PPE-serial stage: the bytes
// of a raw frame never cross the PPE. The header is parsed there (it is
// a handful of bytes and decides the geometry); the packed pixel rows
// are gathered by DMA lists, shifted/unpacked, and scattered as whole
// destination rows by the feed kernel, with the image's rows split
// across the scenario's detect-side SPEs — which are idle during every
// schedule's decode phase, including the decode-ahead overlap of the
// pipelined batch and streaming modes.

std::vector<CellEngine::FeedLane> CellEngine::feed_lanes() {
  std::vector<FeedLane> lanes;
  if (scenario_ == Scenario::kSharded) {
    if (guard_.enabled) {
      for (auto& g : g_cd_shards_) lanes.push_back({nullptr, g.get()});
    } else {
      for (auto& f : cd_shard_ifs_) lanes.push_back({f.get(), nullptr});
    }
  } else if (scenario_ == Scenario::kMultiSPE2) {
    for (auto& slot : slots_) {
      if (guard_.enabled) {
        lanes.push_back({nullptr, slot.g_detect.get()});
      } else {
        lanes.push_back({slot.detect_if, nullptr});
      }
    }
  } else if (guard_.enabled) {
    lanes.push_back({nullptr, g_cd_.get()});
  } else {
    lanes.push_back({cd_if_.get(), nullptr});
  }
  return lanes;
}

img::RgbImage CellEngine::ingest(const img::SicEncoded& image) {
  sim::ScalarContext& ppe = machine_.ppe();
  if (feed_ && img::is_ppm(image)) {
    // The strict shared parser: a malformed header throws the exact
    // IoError the PPE decode path throws (accept/reject is identical).
    img::PpmHeader hdr =
        img::parse_p6_header(image.bytes.data(), image.bytes.size());
    const std::size_t row_bytes = static_cast<std::size_t>(hdr.width) * 3;
    const std::size_t payload =
        row_bytes * static_cast<std::size_t>(hdr.height);
    if (hdr.pixel_offset + payload > image.bytes.size()) {
      throw cellport::IoError("truncated P6 pixel data");
    }
    const std::size_t stride = cellport::round_up(row_bytes, 16);
    // Feed eligibility: one list element per row (the MFC 16KiB cap
    // bounds both the widened gather window and the scatter stride), and
    // the carrier must keep >= 15 readable bytes on both sides of the
    // payload because gather windows anchor on enclosing 16-byte
    // boundaries (img::ppm_encode guarantees the slack; hand-built
    // carriers without it decode on the PPE).
    const bool fits_list =
        cellport::round_up(row_bytes + 15, 16) <= sim::Mfc::kMaxTransfer &&
        stride <= sim::Mfc::kMaxTransfer;
    const bool slack =
        hdr.pixel_offset >= 15 &&
        image.bytes.size() >= hdr.pixel_offset + payload + 15;
    if (fits_list && slack) {
      {
        probe::ProbeSpan span(prt(), probe::Phase::kDecode, ppe,
                              "feed_header");
        // Raw frames are memory-resident producer buffers: no file
        // open, and only the header bytes ever touch the PPE.
        ppe.charge_io(hdr.pixel_offset, /*open_file=*/false);
        ppe.charge(sim::OpClass::kIntAlu, 32);  // token scan
      }
      img::RgbImage dst(hdr.width, hdr.height);
      feed_image(image, hdr, dst);
      return dst;
    }
  }
  probe::ProbeSpan span(prt(), probe::Phase::kDecode, ppe, "sic_decode");
  ppe.charge_io(image.bytes.size(), /*open_file=*/true);
  return img::sic_decode(image, &ppe);
}

void CellEngine::feed_image(const img::SicEncoded& image,
                            const img::PpmHeader& hdr, img::RgbImage& dst) {
  sim::ScalarContext& ppe = machine_.ppe();
  probe::ProbeSpan span(prt(), probe::Phase::kFeedDma, ppe, "feed_dma");
  std::vector<FeedLane> lanes = feed_lanes();
  if (feed_msgs_.size() < lanes.size()) {
    feed_msgs_ =
        std::vector<port::WrappedMessage<kernels::FeedMsg>>(lanes.size());
  }
  const std::vector<shard::Range> rows =
      shard::split_rows(hdr.height, static_cast<int>(lanes.size()));
  const auto src_ea = reinterpret_cast<std::uint64_t>(image.bytes.data() +
                                                      hdr.pixel_offset);
  const auto feed_op = static_cast<int>(kernels::SPU_Run_Feed);
  const sim::SimTime sent = ppe.now_ns();
  for (std::size_t j = 0; j < lanes.size(); ++j) {
    if (rows[j].empty()) continue;
    ppe.charge(sim::OpClass::kStore, 10);
    kernels::FeedMsg& m = *feed_msgs_[j];
    m.src_ea = src_ea;
    m.dst_ea = reinterpret_cast<std::uint64_t>(dst.data());
    m.width = hdr.width;
    m.height = hdr.height;
    m.dst_stride = dst.stride();
    m.buffering = kernels::kTripleBuffer;
    m.row_begin = rows[j].begin;
    m.row_end = rows[j].end;
    m.rows_per_tile = 0;
    if (lanes[j].gi != nullptr) {
      lanes[j].gi->Send(feed_op, feed_msgs_[j].ea());
    } else {
      lanes[j].iface->Send(feed_op, feed_msgs_[j].ea());
    }
  }
  for (std::size_t j = 0; j < lanes.size(); ++j) {
    if (rows[j].empty()) continue;
    bool ok = true;
    if (lanes[j].gi != nullptr) {
      const sim::SimTime finish_t0 = ppe.now_ns();
      guard::GuardedInterface::Result r = lanes[j].gi->Finish();
      if (r.attempts > 1) {
        rt_.add_closed(probe::Phase::kGuardRetry,
                       "feed[" + std::to_string(j) + "]", finish_t0,
                       ppe.now_ns());
      }
      ok = r.ok;
    } else {
      try {
        lanes[j].iface->Wait();
      } catch (const cellport::Error&) {
        ok = false;  // kernel fault: this lane's rows fall to the PPE
      }
    }
    rt_.add_spe_span(probe::Phase::kFeedDma,
                     "feed[" + std::to_string(j) + "]", sent, ppe.now_ns());
    if (ok) {
      feed_rows_counter_->add(static_cast<std::uint64_t>(rows[j].count()));
    } else {
      feed_fallback_rows(image, hdr, rows[j], dst);
    }
  }
  feed_images_counter_->add(1);
}

void CellEngine::feed_fallback_rows(const img::SicEncoded& image,
                                    const img::PpmHeader& hdr,
                                    const shard::Range& rows,
                                    img::RgbImage& dst) {
  sim::ScalarContext& ppe = machine_.ppe();
  probe::ProbeSpan span(prt(), probe::Phase::kFallback, ppe, "feed:ingest");
  const std::size_t row_bytes = static_cast<std::size_t>(hdr.width) * 3;
  const std::uint8_t* src = image.bytes.data() + hdr.pixel_offset;
  for (int y = rows.begin; y < rows.end; ++y) {
    std::memcpy(dst.row(y), src + static_cast<std::size_t>(y) * row_bytes,
                row_bytes);
  }
  // The same per-chunk touch cost the PPE decode path charges for these
  // rows (the destination pads are already zero: AlignedBuffer
  // value-initializes, matching the kernel's explicit pad memset).
  const auto chunks = static_cast<std::uint64_t>(
      (row_bytes * static_cast<std::size_t>(rows.count()) + 15) / 16);
  ppe.charge(sim::OpClass::kLoad, chunks);
  ppe.charge(sim::OpClass::kStore, chunks);
  ppe.charge(sim::OpClass::kIntAlu,
             static_cast<std::uint64_t>(rows.count()) * 2);
  feed_fallback_counter_->add(1);
  if (guard_.enabled) {
    feed_pending_degraded_.push_back("feed:ingest");
    fallback_counter_->add(1);
    if (ppe.trace_on()) {
      ppe.trace_track()->instant(trace::Category::kRuntime,
                                 "ppe_fallback:feed:ingest", ppe.now_ns(),
                                 "count", fallback_counter_->value());
    }
  }
}

AnalysisResult CellEngine::analyze(const img::SicEncoded& image) {
  sim::ScalarContext& ppe = machine_.ppe();
  if (probe_ != nullptr) rt_.start("analyze", ppe.now_ns());
  // cellbalance: content-cache front end. A hit skips decode, extraction
  // and detection entirely — digest + copy-out, bit-identical values.
  std::uint64_t cache_key = 0;
  bool cache_fill = false;
  if (cache_on()) {
    AnalysisResult hit;
    if (cache_try_serve(image, &hit, &cache_key)) {
      note_image_done();
      finish_request();
      return hit;
    }
    cache_fill = true;
  }
  img::RgbImage pixels = [&] {
    port::Profiler::Scope probe(profiler_, kPhasePreprocess);
    return ingest(image);
  }();

  {
    probe::ProbeSpan span(prt(), probe::Phase::kPrepare, ppe,
                          "fill_msgs");
    for (auto& slot : slots_) fill_image_msg(slot, pixels);
    if (balanced_) {
      prepare_balanced(pixels);
    } else if (fused_) {
      prepare_fused(pixels);
    } else if (scenario_ == Scenario::kSharded) {
      prepare_shards(pixels);
    }
  }

  if (guard_.enabled) {
    // Feed fallbacks for this image were staged during ingest().
    degraded_current_ = std::move(feed_pending_degraded_);
    feed_pending_degraded_.clear();
  }
  if (balanced_) {
    analyze_balanced(pixels);
  } else if (fused_) {
    analyze_fused(pixels);
  } else if (guard_.enabled) {
    analyze_guarded_schedule(pixels);
  } else {
    switch (scenario_) {
      case Scenario::kSingleSPE: {
        for (auto& slot : slots_) {
          port::Profiler::Scope probe(profiler_, slot.phase);
          probe::ProbeSpan span(prt(), probe::Phase::kExtract, ppe,
                                slot.name);
          const sim::SimTime sent = ppe.now_ns();
          slot.extract_if->SendAndWait(guarded_opcode(slot),
                                       slot.msg.ea());
          rt_.add_spe_span(probe::Phase::kExtract, slot.name, sent,
                           ppe.now_ns());
        }
        port::Profiler::Scope probe(profiler_, kPhaseCd);
        probe::ProbeSpan span(prt(), probe::Phase::kDetect, ppe);
        for (auto& slot : slots_) {
          const sim::SimTime sent = ppe.now_ns();
          run_detection(slot, *cd_if_);
          rt_.add_spe_span(probe::Phase::kDetect,
                           std::string("cd:") + slot.name, sent,
                           ppe.now_ns());
        }
        break;
      }
      case Scenario::kMultiSPE: {
        {
          port::Profiler::Scope probe(profiler_, kPhaseExtractPar);
          sim::SimTime sent[4] = {0, 0, 0, 0};
          {
            probe::ProbeSpan d(prt(), probe::Phase::kDispatch, ppe,
                               "send_extract");
            for (int i = 0; i < 4; ++i) {
              sent[i] = ppe.now_ns();
              slots_[i].extract_if->Send(guarded_opcode(slots_[i]),
                                         slots_[i].msg.ea());
            }
          }
          probe::ProbeSpan w(prt(), probe::Phase::kExtract, ppe);
          for (int i = 0; i < 4; ++i) {
            slots_[i].extract_if->Wait();
            rt_.add_spe_span(probe::Phase::kExtract, slots_[i].name,
                             sent[i], ppe.now_ns());
          }
        }
        port::Profiler::Scope probe(profiler_, kPhaseDetect);
        probe::ProbeSpan span(prt(), probe::Phase::kDetect, ppe);
        for (auto& slot : slots_) {
          const sim::SimTime sent = ppe.now_ns();
          run_detection(slot, *cd_if_);
          rt_.add_spe_span(probe::Phase::kDetect,
                           std::string("cd:") + slot.name, sent,
                           ppe.now_ns());
        }
        break;
      }
      case Scenario::kMultiSPE2: {
        port::Profiler::Scope probe(profiler_, kPhaseExtractPar);
        sim::SimTime sent[4] = {0, 0, 0, 0};
        sim::SimTime detect_sent[4] = {0, 0, 0, 0};
        {
          probe::ProbeSpan d(prt(), probe::Phase::kDispatch, ppe,
                             "send_extract");
          for (int i = 0; i < 4; ++i) {
            sent[i] = ppe.now_ns();
            slots_[i].extract_if->Send(guarded_opcode(slots_[i]),
                                       slots_[i].msg.ea());
          }
        }
        // Each extraction is immediately followed by its own detection on
        // a dedicated detection SPE.
        {
          probe::ProbeSpan w(prt(), probe::Phase::kExtract, ppe);
          for (int i = 0; i < 4; ++i) {
            slots_[i].extract_if->Wait();
            rt_.add_spe_span(probe::Phase::kExtract, slots_[i].name,
                             sent[i], ppe.now_ns());
            detect_sent[i] = ppe.now_ns();
            slots_[i].detect_if->Send(static_cast<int>(kernels::SPU_Run),
                                      slots_[i].detect_msg.ea());
          }
        }
        probe::ProbeSpan w(prt(), probe::Phase::kDetect, ppe);
        for (int i = 0; i < 4; ++i) {
          slots_[i].detect_if->Wait();
          rt_.add_spe_span(probe::Phase::kDetect,
                           std::string("cd:") + slots_[i].name,
                           detect_sent[i], ppe.now_ns());
        }
        break;
      }
      case Scenario::kSharded: {
        analyze_sharded(pixels);
        break;
      }
    }
  }

  AnalysisResult result;
  {
    probe::ProbeSpan span(prt(), probe::Phase::kOutput, ppe, "collect");
    collect(slots_[0], result.color_histogram, result.ch_detect,
            "color_histogram");
    collect(slots_[1], result.color_correlogram, result.cc_detect,
            "color_correlogram");
    collect(slots_[2], result.texture, result.tx_detect, "texture");
    collect(slots_[3], result.edge_histogram, result.eh_detect,
            "edge_histogram");
  }
  if (guard_.enabled) result.degraded = std::move(degraded_current_);
  if (cache_fill && result.degraded.empty()) {
    cache_store(cache_key, result);
  }
  note_image_done();
  finish_request();
  return result;
}

void CellEngine::finish_request() {
  if (probe_ == nullptr || !rt_.active()) return;
  rt_.finish(machine_.ppe().now_ns());
  probe_->on_request(rt_);
}

int CellEngine::guarded_opcode(const FeatureSlot& slot) const {
  bool has_naive = slot.phase != kPhaseTx;
  return static_cast<int>(use_naive_ && has_naive ? kernels::SPU_Run_Naive
                                                  : kernels::SPU_Run);
}

void CellEngine::analyze_guarded_schedule(const img::RgbImage& pixels) {
  // Mirrors the unguarded scenario switch call-for-call so a fault-free
  // guarded run charges identical simulated time; only the completion
  // side differs (Finish() runs the retry loop, and exhausted retries
  // drop to the PPE reference path instead of throwing).
  sim::ScalarContext& ppe = machine_.ppe();
  switch (scenario_) {
    case Scenario::kSingleSPE: {
      for (auto& slot : slots_) {
        port::Profiler::Scope probe(profiler_, slot.phase);
        probe::ProbeSpan span(prt(), probe::Phase::kExtract, ppe,
                              slot.name);
        const sim::SimTime sent = ppe.now_ns();
        slot.g_extract->Send(guarded_opcode(slot), slot.msg.ea());
        finish_extract(slot, pixels);
        rt_.add_spe_span(probe::Phase::kExtract, slot.name, sent,
                         ppe.now_ns());
      }
      port::Profiler::Scope probe(profiler_, kPhaseCd);
      probe::ProbeSpan span(prt(), probe::Phase::kDetect, ppe);
      for (auto& slot : slots_) guarded_detect(slot, *g_cd_);
      break;
    }
    case Scenario::kMultiSPE: {
      {
        port::Profiler::Scope probe(profiler_, kPhaseExtractPar);
        sim::SimTime sent[4] = {0, 0, 0, 0};
        {
          probe::ProbeSpan d(prt(), probe::Phase::kDispatch, ppe,
                             "send_extract");
          for (int i = 0; i < 4; ++i) {
            sent[i] = ppe.now_ns();
            slots_[i].g_extract->Send(guarded_opcode(slots_[i]),
                                      slots_[i].msg.ea());
          }
        }
        probe::ProbeSpan w(prt(), probe::Phase::kExtract, ppe);
        for (int i = 0; i < 4; ++i) {
          finish_extract(slots_[i], pixels);
          rt_.add_spe_span(probe::Phase::kExtract, slots_[i].name,
                           sent[i], ppe.now_ns());
        }
      }
      port::Profiler::Scope probe(profiler_, kPhaseDetect);
      probe::ProbeSpan span(prt(), probe::Phase::kDetect, ppe);
      for (auto& slot : slots_) guarded_detect(slot, *g_cd_);
      break;
    }
    case Scenario::kMultiSPE2: {
      port::Profiler::Scope probe(profiler_, kPhaseExtractPar);
      sim::SimTime sent[4] = {0, 0, 0, 0};
      sim::SimTime detect_sent[4] = {0, 0, 0, 0};
      {
        probe::ProbeSpan d(prt(), probe::Phase::kDispatch, ppe,
                           "send_extract");
        for (int i = 0; i < 4; ++i) {
          sent[i] = ppe.now_ns();
          slots_[i].g_extract->Send(guarded_opcode(slots_[i]),
                                    slots_[i].msg.ea());
        }
      }
      {
        probe::ProbeSpan w(prt(), probe::Phase::kExtract, ppe);
        for (int i = 0; i < 4; ++i) {
          finish_extract(slots_[i], pixels);
          rt_.add_spe_span(probe::Phase::kExtract, slots_[i].name,
                           sent[i], ppe.now_ns());
          detect_sent[i] = ppe.now_ns();
          slots_[i].g_detect->Send(static_cast<int>(kernels::SPU_Run),
                                   slots_[i].detect_msg.ea());
        }
      }
      probe::ProbeSpan w(prt(), probe::Phase::kDetect, ppe);
      for (int i = 0; i < 4; ++i) {
        finish_detect(slots_[i], *slots_[i].g_detect);
        rt_.add_spe_span(probe::Phase::kDetect,
                         std::string("cd:") + slots_[i].name,
                         detect_sent[i], ppe.now_ns());
      }
      break;
    }
    case Scenario::kSharded: {
      analyze_sharded(pixels);
      break;
    }
  }
}

// ---- cellshard: the kSharded per-image schedule ----
//
// All shards of all four kernels launch in parallel (the plan sizes the
// counts so they finish together); the PPE then merges raw partials into
// the exact unsharded outputs and fans each slot's detection out over
// the detection interfaces as contiguous model blocks. The guarded
// variant mirrors the unguarded one call-for-call; a shard whose retries
// are exhausted is recomputed on the PPE via the shard mirrors — the
// surviving shards' SPE work is kept.
void CellEngine::analyze_sharded(const img::RgbImage& pixels) {
  sim::ScalarContext& ppe = machine_.ppe();
  {
    port::Profiler::Scope probe(profiler_, kPhaseExtractPar);
    {
      probe::ProbeSpan d(prt(), probe::Phase::kDispatch, ppe,
                         "send_shards");
      send_shards();
    }
    probe::ProbeSpan w(prt(), probe::Phase::kExtract, ppe, "shards");
    wait_shards(pixels);
  }
  {
    port::Profiler::Scope probe(profiler_, kPhaseShardReduce);
    probe::ProbeSpan span(prt(), probe::Phase::kReduce, ppe,
                          "shard_reduce");
    for (int i = 0; i < 4; ++i) reduce_slot(i);
    shard_reduce_counter_->add(1);
  }
  port::Profiler::Scope probe(profiler_, kPhaseDetect);
  probe::ProbeSpan span(prt(), probe::Phase::kDetect, ppe, "blocks");
  for (auto& slot : slots_) sharded_detect(slot);
}

void CellEngine::send_shards() {
  shard_send_ns_ = machine_.ppe().now_ns();
  for (auto& slot : slots_) {
    for (std::size_t j = 0; j < slot.shard_msgs.size(); ++j) {
      if (slot.shard_rows[j].empty()) continue;
      if (guard_.enabled) {
        slot.g_shards[j]->Send(static_cast<int>(kernels::SPU_Run),
                               slot.shard_msgs[j].ea());
      } else {
        slot.shard_ifs[j]->Send(static_cast<int>(kernels::SPU_Run),
                                slot.shard_msgs[j].ea());
      }
    }
  }
}

void CellEngine::wait_shards(const img::RgbImage& pixels) {
  sim::ScalarContext& ppe = machine_.ppe();
  for (int i = 0; i < 4; ++i) {
    FeatureSlot& slot = slots_[i];
    for (std::size_t j = 0; j < slot.shard_msgs.size(); ++j) {
      if (slot.shard_rows[j].empty()) continue;
      if (guard_.enabled) {
        finish_shard(i, static_cast<int>(j), pixels);
      } else {
        slot.shard_ifs[j]->Wait();
      }
      rt_.add_spe_span(probe::Phase::kExtract,
                       std::string(slot.name) + "[" + std::to_string(j) +
                           "]",
                       shard_send_ns_, ppe.now_ns());
    }
  }
}

void CellEngine::finish_shard(int i, int j, const img::RgbImage& pixels) {
  FeatureSlot& slot = slots_[i];
  const sim::SimTime finish_t0 = machine_.ppe().now_ns();
  guard::GuardedInterface::Result r =
      slot.g_shards[static_cast<std::size_t>(j)]->Finish();
  if (r.attempts > 1) {
    rt_.add_closed(probe::Phase::kGuardRetry,
                   std::string(slot.name) + "[" + std::to_string(j) + "]",
                   finish_t0, machine_.ppe().now_ns());
  }
  if (r.ok) return;
  probe::ProbeSpan span(prt(), probe::Phase::kFallback, machine_.ppe(),
                        std::string("shard:") + slot.name);
  // Recompute just this shard's raw partial on the PPE; the reduction
  // then proceeds as if the SPE had delivered it.
  const shard::Range& range = slot.shard_rows[static_cast<std::size_t>(j)];
  void* part = slot.shard_parts[static_cast<std::size_t>(j)].data();
  switch (i) {
    case shard::kSlotCh:
      shard::ppe_partial_ch(pixels, range,
                            static_cast<std::uint32_t*>(part),
                            &machine_.ppe());
      break;
    case shard::kSlotCc:
      shard::ppe_partial_cc(pixels, range,
                            static_cast<std::uint32_t*>(part),
                            &machine_.ppe());
      break;
    case shard::kSlotTx:
      shard::ppe_partial_tx(pixels, range, static_cast<double*>(part),
                            &machine_.ppe());
      break;
    default:
      shard::ppe_partial_eh(pixels, range,
                            static_cast<std::uint32_t*>(part),
                            &machine_.ppe());
      break;
  }
  note_degraded("shard", slot);
}

void CellEngine::reduce_slot(int i) {
  FeatureSlot& slot = slots_[i];
  const int w = slot.msg->width;
  const int h = slot.msg->height;
  // Empty shards (image smaller than the shard count) contribute nothing
  // and were never dispatched; reduce over the rest.
  std::vector<const std::uint32_t*> counts;
  std::vector<const double*> tiles;
  std::vector<int> tile_doubles;
  for (std::size_t j = 0; j < slot.shard_parts.size(); ++j) {
    if (slot.shard_rows[j].empty()) continue;
    if (i == shard::kSlotTx) {
      tiles.push_back(
          reinterpret_cast<const double*>(slot.shard_parts[j].data()));
      tile_doubles.push_back(shard::tx_partial_doubles(slot.shard_rows[j]));
    } else {
      counts.push_back(reinterpret_cast<const std::uint32_t*>(
          slot.shard_parts[j].data()));
    }
  }
  sim::ScalarContext* ppe = &machine_.ppe();
  switch (i) {
    case shard::kSlotCh:
      shard::reduce_ch(counts.data(), static_cast<int>(counts.size()), w,
                       h, slot.out.data(), ppe);
      break;
    case shard::kSlotCc:
      shard::reduce_cc(counts.data(), static_cast<int>(counts.size()),
                       slot.out.data(), ppe);
      break;
    case shard::kSlotTx:
      shard::reduce_tx(tiles.data(), tile_doubles.data(),
                       static_cast<int>(tiles.size()), w, h,
                       slot.out.data(), ppe);
      break;
    default:
      shard::reduce_eh(counts.data(), static_cast<int>(counts.size()), w,
                       h, slot.out.data(), ppe);
      break;
  }
}

void CellEngine::sharded_detect(FeatureSlot& slot) {
  const auto num_models = static_cast<int>(slot.set->models.size());
  const int d = plan_.detect_spes;
  std::vector<shard::Range> blocks = shard::split_rows(num_models, d);
  machine_.ppe().charge(sim::OpClass::kStore,
                        6 * static_cast<std::uint64_t>(d));
  const sim::SimTime blocks_sent = machine_.ppe().now_ns();
  for (int b = 0; b < d; ++b) {
    if (blocks[static_cast<std::size_t>(b)].empty()) continue;
    kernels::DetectMsg& m = *cd_block_msgs_[static_cast<std::size_t>(b)];
    m = *slot.detect_msg;
    m.model_begin = blocks[static_cast<std::size_t>(b)].begin;
    m.num_models = blocks[static_cast<std::size_t>(b)].count();
    m.scores_ea = reinterpret_cast<std::uint64_t>(
        cd_block_scores_[static_cast<std::size_t>(b)].data());
    if (guard_.enabled) {
      g_cd_shards_[static_cast<std::size_t>(b)]->Send(
          static_cast<int>(kernels::SPU_Run),
          cd_block_msgs_[static_cast<std::size_t>(b)].ea());
    } else {
      cd_shard_ifs_[static_cast<std::size_t>(b)]->Send(
          static_cast<int>(kernels::SPU_Run),
          cd_block_msgs_[static_cast<std::size_t>(b)].ea());
    }
  }
  std::vector<const double*> parts;
  std::vector<int> counts;
  for (int b = 0; b < d; ++b) {
    const shard::Range& block = blocks[static_cast<std::size_t>(b)];
    if (block.empty()) continue;
    if (guard_.enabled) {
      const sim::SimTime finish_t0 = machine_.ppe().now_ns();
      guard::GuardedInterface::Result r =
          g_cd_shards_[static_cast<std::size_t>(b)]->Finish();
      if (r.attempts > 1) {
        rt_.add_closed(probe::Phase::kGuardRetry,
                       std::string("cd[") + std::to_string(b) + "]:" +
                           slot.name,
                       finish_t0, machine_.ppe().now_ns());
      }
      if (!r.ok) {
        probe::ProbeSpan span(prt(), probe::Phase::kFallback,
                              machine_.ppe(),
                              std::string("detect:") + slot.name);
        shard::ppe_detect_block(
            slot.out.data(), slot.dim, *slot.set, block,
            cd_block_scores_[static_cast<std::size_t>(b)].data(),
            &machine_.ppe());
        note_degraded("detect", slot);
      }
    } else {
      cd_shard_ifs_[static_cast<std::size_t>(b)]->Wait();
    }
    rt_.add_spe_span(probe::Phase::kDetect,
                     std::string("cd[") + std::to_string(b) + "]:" +
                         slot.name,
                     blocks_sent, machine_.ppe().now_ns());
    parts.push_back(cd_block_scores_[static_cast<std::size_t>(b)].data());
    counts.push_back(block.count());
  }
  shard::concat_scores(parts.data(), counts.data(),
                       static_cast<int>(parts.size()), slot.scores.data(),
                       &machine_.ppe());
}

// ---- cellfuse: the fused per-image schedule ----
//
// One single-pass kernel invocation per lane replaces the four
// per-feature invocations: each lane streams its tile-aligned row range
// once — one HSV quantization, one gray conversion — and emits all four
// raw-partial layouts in one blob (kernels/messages.h). The PPE merges
// the blobs' sections with the same cellshard reducers the sharded
// scenario uses, so fused results are bit-exact with the per-feature
// kernels; detection then runs the scenario's normal schedule.

std::vector<CellEngine::FusedLane> CellEngine::fused_lanes() {
  std::vector<FusedLane> lanes;
  if (scenario_ == Scenario::kSharded) {
    // Slot-major over the extract-shard SPEs (every extract module
    // carries the fused body), capped at the planned lane count — past
    // that, the marginal lane costs more in per-lane overhead than it
    // saves in span (shard::plan_fused).
    for (auto& slot : slots_) {
      if (guard_.enabled) {
        for (auto& g : slot.g_shards) lanes.push_back({nullptr, g.get()});
      } else {
        for (auto& f : slot.shard_ifs) lanes.push_back({f.get(), nullptr});
      }
    }
    const auto cap = static_cast<std::size_t>(fused_plan_.lanes);
    if (lanes.size() > cap) lanes.resize(cap);
  } else if (scenario_ == Scenario::kSingleSPE) {
    if (guard_.enabled) {
      lanes.push_back({nullptr, slots_[0].g_extract.get()});
    } else {
      lanes.push_back({slots_[0].extract_if, nullptr});
    }
  } else {
    for (auto& slot : slots_) {
      if (guard_.enabled) {
        lanes.push_back({nullptr, slot.g_extract.get()});
      } else {
        lanes.push_back({slot.extract_if, nullptr});
      }
    }
  }
  return lanes;
}

void CellEngine::prepare_fused(const img::RgbImage& pixels) {
  const int h = pixels.height();
  // Same precondition as the TX kernel: every wavelet level must split
  // (a fused lane always computes the texture alongside the row-granular
  // features).
  if (pixels.width() < (1 << features::kTextureLevels) ||
      h < (1 << features::kTextureLevels)) {
    throw cellport::ConfigError(
        "image too small for the 4-level wavelet texture");
  }
  const auto n = fused_lanes().size();
  if (fused_msgs_.size() < n) {
    fused_msgs_ =
        std::vector<port::WrappedMessage<kernels::ImageMsg>>(n);
  }
  if (fused_parts_.size() < n) fused_parts_.resize(n);
  fused_rows_ = shard::split_fused(h, static_cast<int>(n));
  std::uint64_t stores = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const shard::Range& r = fused_rows_[j];
    if (r.empty()) continue;
    const std::size_t bytes =
        kernels::fused_partial_bytes(pixels.width(), h, r.begin, r.end);
    if (fused_parts_[j].bytes() < bytes) {
      fused_parts_[j] = cellport::AlignedBuffer<std::uint8_t>(bytes);
    }
    kernels::ImageMsg& m = *fused_msgs_[j];
    m = *slots_[0].msg;
    m.row_begin = r.begin;
    m.row_end = r.end;
    m.out_ea = reinterpret_cast<std::uint64_t>(fused_parts_[j].data());
    stores += 4;
  }
  machine_.ppe().charge(sim::OpClass::kStore, stores);
}

void CellEngine::analyze_fused(const img::RgbImage& pixels) {
  sim::ScalarContext& ppe = machine_.ppe();
  {
    port::Profiler::Scope probe(profiler_, kPhaseExtractPar);
    {
      probe::ProbeSpan d(prt(), probe::Phase::kDispatch, ppe,
                         "send_fused");
      send_fused();
    }
    probe::ProbeSpan w(prt(), probe::Phase::kExtract, ppe, "fused_lanes");
    wait_fused(pixels);
  }
  {
    port::Profiler::Scope probe(profiler_, kPhaseShardReduce);
    probe::ProbeSpan span(prt(), probe::Phase::kReduce, ppe,
                          "fuse_reduce");
    for (int i = 0; i < 4; ++i) reduce_fused_slot(i);
    fuse_images_counter_->add(1);
  }
  port::Profiler::Scope probe(profiler_, kPhaseDetect);
  fused_detect();
}

void CellEngine::send_fused() {
  fused_send_ns_ = machine_.ppe().now_ns();
  std::vector<FusedLane> lanes = fused_lanes();
  const auto op = static_cast<int>(kernels::SPU_Run_Fused);
  for (std::size_t j = 0; j < lanes.size(); ++j) {
    if (fused_rows_[j].empty()) continue;
    if (lanes[j].gi != nullptr) {
      lanes[j].gi->Send(op, fused_msgs_[j].ea());
    } else {
      lanes[j].iface->Send(op, fused_msgs_[j].ea());
    }
  }
}

void CellEngine::wait_fused(const img::RgbImage& pixels) {
  sim::ScalarContext& ppe = machine_.ppe();
  std::vector<FusedLane> lanes = fused_lanes();
  for (std::size_t j = 0; j < lanes.size(); ++j) {
    if (fused_rows_[j].empty()) continue;
    if (lanes[j].gi != nullptr) {
      const sim::SimTime finish_t0 = ppe.now_ns();
      guard::GuardedInterface::Result r = lanes[j].gi->Finish();
      if (r.attempts > 1) {
        rt_.add_closed(probe::Phase::kGuardRetry,
                       "fused[" + std::to_string(j) + "]", finish_t0,
                       ppe.now_ns());
      }
      if (!r.ok) fused_fallback_lane(j, pixels);
    } else {
      lanes[j].iface->Wait();
    }
    rt_.add_spe_span(probe::Phase::kExtract,
                     "fused[" + std::to_string(j) + "]", fused_send_ns_,
                     ppe.now_ns());
  }
}

void CellEngine::fused_fallback_lane(std::size_t j,
                                     const img::RgbImage& pixels) {
  probe::ProbeSpan span(prt(), probe::Phase::kFallback, machine_.ppe(),
                        "fuse[" + std::to_string(j) + "]");
  // Per-feature PPE partials for just this lane's range, written into
  // the lane blob's four sections — the reduction can't tell them from
  // SPE-delivered bytes (the mirrors are bit-exact and zero their
  // sections first).
  const shard::Range& range = fused_rows_[j];
  auto* words = reinterpret_cast<std::uint32_t*>(fused_parts_[j].data());
  sim::ScalarContext* ppe = &machine_.ppe();
  shard::ppe_partial_ch(pixels, range, words, ppe);
  shard::ppe_partial_cc(pixels, range, words + kernels::kFusedCcOffset,
                        ppe);
  shard::ppe_partial_eh(pixels, range, words + kernels::kFusedEhOffset,
                        ppe);
  const int heff = 2 * (pixels.height() / 2);
  const shard::Range tx_rows{range.begin, std::min(range.end, heff)};
  if (!tx_rows.empty()) {
    shard::ppe_partial_tx(
        pixels, tx_rows,
        reinterpret_cast<double*>(fused_parts_[j].data() +
                                  kernels::kFusedCountBytes),
        ppe);
  }
  for (auto& slot : slots_) note_degraded("fuse", slot);
}

void CellEngine::reduce_fused_slot(int i) {
  FeatureSlot& slot = slots_[i];
  const int w = slots_[0].msg->width;
  const int h = slots_[0].msg->height;
  std::vector<const std::uint32_t*> counts;
  std::vector<const double*> tiles;
  std::vector<int> tile_doubles;
  for (std::size_t j = 0; j < fused_rows_.size(); ++j) {
    const shard::Range& r = fused_rows_[j];
    if (r.empty()) continue;
    const auto* words =
        reinterpret_cast<const std::uint32_t*>(fused_parts_[j].data());
    switch (i) {
      case shard::kSlotCh:
        counts.push_back(words);
        break;
      case shard::kSlotCc:
        counts.push_back(words + kernels::kFusedCcOffset);
        break;
      case shard::kSlotTx:
        tiles.push_back(reinterpret_cast<const double*>(
            fused_parts_[j].data() + kernels::kFusedCountBytes));
        tile_doubles.push_back(
            kernels::fused_tx_doubles(w, h, r.begin, r.end));
        break;
      default:
        counts.push_back(words + kernels::kFusedEhOffset);
        break;
    }
  }
  sim::ScalarContext* ppe = &machine_.ppe();
  switch (i) {
    case shard::kSlotCh:
      shard::reduce_ch(counts.data(), static_cast<int>(counts.size()), w,
                       h, slot.out.data(), ppe);
      break;
    case shard::kSlotCc:
      shard::reduce_cc(counts.data(), static_cast<int>(counts.size()),
                       slot.out.data(), ppe);
      break;
    case shard::kSlotTx:
      shard::reduce_tx(tiles.data(), tile_doubles.data(),
                       static_cast<int>(tiles.size()), w, h,
                       slot.out.data(), ppe);
      break;
    default:
      shard::reduce_eh(counts.data(), static_cast<int>(counts.size()), w,
                       h, slot.out.data(), ppe);
      break;
  }
}

void CellEngine::fused_detect() {
  sim::ScalarContext& ppe = machine_.ppe();
  if (scenario_ == Scenario::kSharded) {
    probe::ProbeSpan span(prt(), probe::Phase::kDetect, ppe, "blocks");
    for (auto& slot : slots_) sharded_detect(slot);
    return;
  }
  probe::ProbeSpan span(prt(), probe::Phase::kDetect, ppe);
  if (scenario_ == Scenario::kMultiSPE2) {
    sim::SimTime detect_sent[4] = {0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
      detect_sent[i] = ppe.now_ns();
      if (guard_.enabled) {
        slots_[i].g_detect->Send(static_cast<int>(kernels::SPU_Run),
                                 slots_[i].detect_msg.ea());
      } else {
        slots_[i].detect_if->Send(static_cast<int>(kernels::SPU_Run),
                                  slots_[i].detect_msg.ea());
      }
    }
    for (int i = 0; i < 4; ++i) {
      if (guard_.enabled) {
        finish_detect(slots_[i], *slots_[i].g_detect);
      } else {
        slots_[i].detect_if->Wait();
      }
      rt_.add_spe_span(probe::Phase::kDetect,
                       std::string("cd:") + slots_[i].name,
                       detect_sent[i], ppe.now_ns());
    }
    return;
  }
  for (auto& slot : slots_) {
    if (guard_.enabled) {
      guarded_detect(slot, *g_cd_);
    } else {
      const sim::SimTime sent = ppe.now_ns();
      run_detection(slot, *cd_if_);
      rt_.add_spe_span(probe::Phase::kDetect,
                       std::string("cd:") + slot.name, sent,
                       ppe.now_ns());
    }
  }
}

// ---- cellbalance: steal-driven fused dispatch + the content cache ----
//
// The balanced schedule is the fused schedule with MORE, smaller tasks
// than lanes: the fused_* members hold one entry per TASK instead of one
// per lane, so the reducers and the PPE mirror work verbatim — reduction
// still walks fused_rows_ in ascending row order, which is exactly the
// order a static plan reduces, keeping stolen-work results bit-identical.

void CellEngine::set_balanced(bool on) {
  balanced_ = on;
  if (on && steal_tasks_counter_ == nullptr) {
    auto& m = machine_.metrics();
    steal_tasks_counter_ = &m.counter("steal.tasks");
    steal_arms_counter_ = &m.counter("steal.arms");
    steal_steals_counter_ = &m.counter("steal.steals");
  }
}

void CellEngine::prepare_balanced(const img::RgbImage& pixels) {
  const int h = pixels.height();
  // Same precondition as prepare_fused: every wavelet level must split.
  if (pixels.width() < (1 << features::kTextureLevels) ||
      h < (1 << features::kTextureLevels)) {
    throw cellport::ConfigError(
        "image too small for the 4-level wavelet texture");
  }
  const auto lanes = static_cast<int>(fused_lanes().size());
  fused_rows_ = balance::split_tasks(h, lanes);
  const std::size_t n = fused_rows_.size();
  if (fused_msgs_.size() < n) {
    fused_msgs_ = std::vector<port::WrappedMessage<kernels::ImageMsg>>(n);
  }
  if (fused_parts_.size() < n) fused_parts_.resize(n);
  sim::ScalarContext& ppe = machine_.ppe();
  std::uint64_t stores = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const shard::Range& r = fused_rows_[t];
    const std::size_t bytes =
        kernels::fused_partial_bytes(pixels.width(), h, r.begin, r.end);
    if (fused_parts_[t].bytes() < bytes) {
      fused_parts_[t] = cellport::AlignedBuffer<std::uint8_t>(bytes);
    }
    kernels::ImageMsg& m = *fused_msgs_[t];
    m = *slots_[0].msg;
    m.row_begin = r.begin;
    m.row_end = r.end;
    m.out_ea = reinterpret_cast<std::uint64_t>(fused_parts_[t].data());
    stores += 4;
  }
  ppe.charge(sim::OpClass::kStore, stores);
}

void CellEngine::analyze_balanced(const img::RgbImage& pixels) {
  sim::ScalarContext& ppe = machine_.ppe();
  {
    port::Profiler::Scope probe(profiler_, kPhaseExtractPar);
    {
      probe::ProbeSpan d(prt(), probe::Phase::kDispatch, ppe,
                         "arm_lanes");
      arm_balanced();
    }
    drain_balanced(pixels);
  }
  {
    port::Profiler::Scope probe(profiler_, kPhaseShardReduce);
    probe::ProbeSpan span(prt(), probe::Phase::kReduce, ppe,
                          "fuse_reduce");
    for (int i = 0; i < 4; ++i) reduce_fused_slot(i);
    fuse_images_counter_->add(1);
  }
  port::Profiler::Scope probe(profiler_, kPhaseDetect);
  fused_detect();
}

void CellEngine::balanced_issue(const std::vector<FusedLane>& lanes,
                                std::size_t k) {
  const std::size_t t = bal_q_->issue(k);
  if (t == balance::TaskQueue::kNone) return;
  bal_sent_[t] = machine_.ppe().now_ns();
  const auto op = static_cast<int>(kernels::SPU_Run_Fused);
  if (lanes[k].gi != nullptr) {
    lanes[k].gi->Send(op, fused_msgs_[t].ea());
  } else {
    lanes[k].iface->Send(op, fused_msgs_[t].ea());
  }
}

void CellEngine::arm_balanced() {
  std::vector<FusedLane> lanes = fused_lanes();
  bal_q_ = std::make_unique<balance::TaskQueue>(fused_rows_.size(),
                                                lanes.size());
  bal_sent_.assign(fused_rows_.size(), 0);
  fused_send_ns_ = machine_.ppe().now_ns();
  for (std::size_t k = 0; k < lanes.size(); ++k) balanced_issue(lanes, k);
}

void CellEngine::drain_balanced(const img::RgbImage& pixels) {
  sim::ScalarContext& ppe = machine_.ppe();
  std::vector<FusedLane> lanes = fused_lanes();
  balance::TaskQueue& q = *bal_q_;
  probe::ProbeSpan w(prt(), probe::Phase::kExtract, ppe, "steal_lanes");
  std::vector<sim::SimTime> peeks(lanes.size(), sim::kNeverNs);
  while (!q.done()) {
    {
      // Peek every in-flight completion timestamp without consuming it
      // (one MMIO charge per busy lane, in lane order — deterministic)
      // and pick the earliest finisher. A hung or quarantined lane peeks
      // sim::kNeverNs and never wins while live lanes are in flight, so
      // the remaining descriptors flow around it.
      probe::ProbeSpan p(prt(), probe::Phase::kSteal, ppe, "pick");
      for (std::size_t k = 0; k < lanes.size(); ++k) {
        peeks[k] = q.busy(k)
                       ? (lanes[k].gi != nullptr
                              ? lanes[k].gi->peek_ns()
                              : lanes[k].iface->peek_completion_ns())
                       : sim::kNeverNs;
      }
    }
    const std::size_t k = balance::pick_earliest(peeks, q);
    const std::size_t t = q.task_of(k);
    if (lanes[k].gi != nullptr) {
      const sim::SimTime finish_t0 = ppe.now_ns();
      guard::GuardedInterface::Result r = lanes[k].gi->Finish();
      if (r.attempts > 1) {
        rt_.add_closed(probe::Phase::kGuardRetry,
                       "task[" + std::to_string(t) + "]", finish_t0,
                       ppe.now_ns());
      }
      if (!r.ok) fused_fallback_lane(t, pixels);
    } else {
      lanes[k].iface->Wait();
    }
    rt_.add_spe_span(probe::Phase::kExtract,
                     "task[" + std::to_string(t) + "]", bal_sent_[t],
                     ppe.now_ns());
    q.complete(k);
    balanced_issue(lanes, k);
  }
  steal_tasks_counter_->add(q.tasks());
  steal_arms_counter_->add(q.arms());
  steal_steals_counter_->add(q.steals());
  bal_q_.reset();
}

namespace {

/// Bytes an AnalysisResult occupies in the cache arena (the payload
/// vectors; the fixed struct overhead is noise next to them).
std::size_t result_bytes(const AnalysisResult& r) {
  std::size_t n = 0;
  for (const features::FeatureVector* fv :
       {&r.color_histogram, &r.color_correlogram, &r.texture,
        &r.edge_histogram}) {
    n += fv->values.size() * sizeof(float) + fv->name.size();
  }
  for (const DetectionScores* ds :
       {&r.ch_detect, &r.cc_detect, &r.tx_detect, &r.eh_detect}) {
    n += ds->values.size() * sizeof(double);
  }
  return n;
}

/// Result elements a cache hit copies out (charged like collect()).
std::uint64_t result_elems(const AnalysisResult& r) {
  return static_cast<std::uint64_t>(
      r.color_histogram.values.size() + r.color_correlogram.values.size() +
      r.texture.values.size() + r.edge_histogram.values.size() +
      r.ch_detect.values.size() + r.cc_detect.values.size() +
      r.tx_detect.values.size() + r.eh_detect.values.size());
}

}  // namespace

void CellEngine::set_cache(std::size_t byte_budget) {
  if (byte_budget == 0) {
    cache_.reset();
    return;
  }
  cache_ = std::make_unique<balance::ContentCache<AnalysisResult>>(
      byte_budget);
  cache_evictions_seen_ = 0;
  auto& m = machine_.metrics();
  if (cache_hits_counter_ == nullptr) {
    cache_hits_counter_ = &m.counter("cache.hits");
    cache_miss_counter_ = &m.counter("cache.misses");
    cache_evict_counter_ = &m.counter("cache.evictions");
  }
  m.gauge("cache.bytes").set(0);
  m.gauge("cache.entries").set(0);
}

std::uint64_t CellEngine::cache_digest(const img::SicEncoded& image) {
  // The FNV-1a pass is byte-serial on the PPE, over the ENCODED carrier
  // (no decode needed to recognize a duplicate).
  machine_.ppe().charge(sim::OpClass::kIntAlu, image.bytes.size());
  return balance::fnv1a64(image.bytes.data(), image.bytes.size());
}

bool CellEngine::cache_try_serve(const img::SicEncoded& image,
                                 AnalysisResult* out, std::uint64_t* key) {
  sim::ScalarContext& ppe = machine_.ppe();
  probe::ProbeSpan span(prt(), probe::Phase::kCache, ppe, "cache_lookup");
  *key = cache_digest(image);
  const AnalysisResult* hit = cache_->find(*key);
  if (hit == nullptr) {
    cache_miss_counter_->add(1);
    return false;
  }
  cache_hits_counter_->add(1);
  // Copy-out mirrors collect(): one load + one store per result element.
  const std::uint64_t elems = result_elems(*hit);
  ppe.charge(sim::OpClass::kLoad, elems);
  ppe.charge(sim::OpClass::kStore, elems);
  *out = *hit;
  return true;
}

void CellEngine::cache_store(std::uint64_t key,
                             const AnalysisResult& result) {
  const std::size_t cost = result_bytes(result);
  // Write-back into the cache arena: one store per 16-byte chunk.
  machine_.ppe().charge(sim::OpClass::kStore,
                        static_cast<std::uint64_t>((cost + 15) / 16));
  cache_->insert(key, result, cost);
  const std::uint64_t ev = cache_->stats().evictions;
  if (ev > cache_evictions_seen_) {
    cache_evict_counter_->add(ev - cache_evictions_seen_);
    cache_evictions_seen_ = ev;
  }
  auto& m = machine_.metrics();
  m.gauge("cache.bytes").set(static_cast<double>(cache_->bytes()));
  m.gauge("cache.entries").set(static_cast<double>(cache_->entries()));
}

void CellEngine::finish_extract(FeatureSlot& slot,
                                const img::RgbImage& pixels) {
  const sim::SimTime finish_t0 = machine_.ppe().now_ns();
  guard::GuardedInterface::Result r = slot.g_extract->Finish();
  if (r.attempts > 1) {
    rt_.add_closed(probe::Phase::kGuardRetry, slot.name, finish_t0,
                   machine_.ppe().now_ns());
  }
  if (!r.ok) fallback_extract(slot, pixels);
}

void CellEngine::fallback_extract(FeatureSlot& slot,
                                  const img::RgbImage& pixels) {
  // Recompute on the PPE scalar path and land the values in the slot's
  // output buffer, where the (possibly still SPE-hosted) detection and
  // collect() expect them.
  probe::ProbeSpan span(prt(), probe::Phase::kFallback, machine_.ppe(),
                        std::string("extract:") + slot.name);
  features::FeatureVector fv = slot.ref_extract(pixels, &machine_.ppe());
  machine_.ppe().charge(sim::OpClass::kStore,
                        static_cast<std::uint64_t>(slot.dim));
  std::memcpy(slot.out.data(), fv.values.data(),
              static_cast<std::size_t>(slot.dim) * sizeof(float));
  note_degraded("extract", slot);
}

void CellEngine::guarded_detect(FeatureSlot& slot,
                                guard::GuardedInterface& gi) {
  const sim::SimTime sent = machine_.ppe().now_ns();
  gi.Send(static_cast<int>(kernels::SPU_Run), slot.detect_msg.ea());
  finish_detect(slot, gi);
  rt_.add_spe_span(probe::Phase::kDetect,
                   std::string("cd:") + slot.name, sent,
                   machine_.ppe().now_ns());
}

void CellEngine::finish_detect(FeatureSlot& slot,
                               guard::GuardedInterface& gi) {
  const sim::SimTime finish_t0 = machine_.ppe().now_ns();
  guard::GuardedInterface::Result r = gi.Finish();
  if (r.attempts > 1) {
    rt_.add_closed(probe::Phase::kGuardRetry,
                   std::string("cd:") + slot.name, finish_t0,
                   machine_.ppe().now_ns());
  }
  if (!r.ok) fallback_detect(slot);
}

void CellEngine::fallback_detect(FeatureSlot& slot) {
  // Score against the models on the PPE, reading whatever feature values
  // are in the slot buffer (SPE-extracted or themselves a fallback).
  probe::ProbeSpan span(prt(), probe::Phase::kFallback, machine_.ppe(),
                        std::string("detect:") + slot.name);
  features::FeatureVector fv;
  fv.name = slot.name;
  fv.values.assign(slot.out.data(), slot.out.data() + slot.dim);
  DetectionScores scores =
      reference_detect(fv, *slot.set, &machine_.ppe());
  machine_.ppe().charge(sim::OpClass::kStore,
                        static_cast<std::uint64_t>(scores.values.size()));
  std::memcpy(slot.scores.data(), scores.values.data(),
              scores.values.size() * sizeof(double));
  note_degraded("detect", slot);
}

void CellEngine::note_degraded(const char* stage, const FeatureSlot& slot) {
  degraded_current_.push_back(std::string(stage) + ":" + slot.name);
  fallback_counter_->add(1);
  sim::ScalarContext& ppe = machine_.ppe();
  if (ppe.trace_on()) {
    ppe.trace_track()->instant(trace::Category::kRuntime,
                               "ppe_fallback:" + degraded_current_.back(),
                               ppe.now_ns(), "count",
                               fallback_counter_->value());
  }
}

void CellEngine::note_image_done() {
  images_counter_->add(1);
  sim::ScalarContext& ppe = machine_.ppe();
  if (ppe.trace_on()) {
    ppe.trace_track()->instant(trace::Category::kRuntime, "image_done",
                               ppe.now_ns(), "count",
                               images_counter_->value());
  }
}

std::vector<AnalysisResult> CellEngine::analyze_batch_pipelined(
    const std::vector<img::SicEncoded>& images) {
  if (scenario_ == Scenario::kSingleSPE) {
    throw cellport::ConfigError(
        "pipelined batches need a parallel scenario (kMultiSPE, "
        "kMultiSPE2, or kSharded)");
  }
  if (!cache_on()) {
    std::vector<const img::SicEncoded*> ptrs;
    ptrs.reserve(images.size());
    for (const auto& image : images) ptrs.push_back(&image);
    return pipelined_cold(ptrs);
  }
  // cellbalance: serve cache hits up front (each one its own request),
  // run the pipelined loop over the misses only, then reassemble the
  // results in input order — values bit-identical to an uncached batch.
  sim::ScalarContext& ppe = machine_.ppe();
  std::vector<AnalysisResult> merged(images.size());
  std::vector<const img::SicEncoded*> cold;
  std::vector<std::size_t> cold_idx;
  std::vector<std::uint64_t> cold_keys;
  for (std::size_t i = 0; i < images.size(); ++i) {
    if (probe_ != nullptr) rt_.start("pipelined", ppe.now_ns());
    std::uint64_t key = 0;
    if (cache_try_serve(images[i], &merged[i], &key)) {
      note_image_done();
      finish_request();
      continue;
    }
    // The miss's lookup time belongs to its request, which the cold
    // loop below serves; roll this trace into that one.
    if (probe_ != nullptr && rt_.active()) rt_.finish(ppe.now_ns());
    cold.push_back(&images[i]);
    cold_idx.push_back(i);
    cold_keys.push_back(key);
  }
  std::vector<AnalysisResult> cold_results = pipelined_cold(cold);
  for (std::size_t c = 0; c < cold_results.size(); ++c) {
    if (cold_results[c].degraded.empty()) {
      cache_store(cold_keys[c], cold_results[c]);
    }
    merged[cold_idx[c]] = std::move(cold_results[c]);
  }
  return merged;
}

std::vector<AnalysisResult> CellEngine::pipelined_cold(
    const std::vector<const img::SicEncoded*>& images) {
  std::vector<AnalysisResult> results;
  if (images.empty()) return results;
  results.reserve(images.size());

  port::Profiler::Scope probe(profiler_, kPhasePipelined);
  sim::ScalarContext& ppe = machine_.ppe();
  auto decode = [&](const img::SicEncoded& image) { return ingest(image); };

  // Two pixel buffers alternate: the SPEs read `current` while the PPE
  // decodes into the other slot. Probing treats each loop iteration as
  // one request; the overlapped decode of image i+1 lands in request
  // i's kDecode phase — that is where the PPE's time really went.
  if (probe_ != nullptr) rt_.start("pipelined", ppe.now_ns());
  img::RgbImage current = decode(*images[0]);
  for (std::size_t i = 0; i < images.size(); ++i) {
    if (probe_ != nullptr && !rt_.active()) {
      rt_.start("pipelined", ppe.now_ns());
    }
    {
      probe::ProbeSpan span(prt(), probe::Phase::kPrepare, ppe,
                            "fill_msgs");
      for (auto& slot : slots_) fill_image_msg(slot, current);
      if (balanced_) {
        prepare_balanced(current);
      } else if (fused_) {
        prepare_fused(current);
      } else if (scenario_ == Scenario::kSharded) {
        prepare_shards(current);
      }
    }
    if (guard_.enabled) {
      // Feed fallbacks for `current` were staged when it was decoded
      // (one iteration ago, overlapping the previous image's kernels).
      degraded_current_ = std::move(feed_pending_degraded_);
      feed_pending_degraded_.clear();
    }
    sim::SimTime sent[4] = {0, 0, 0, 0};
    {
      probe::ProbeSpan span(prt(), probe::Phase::kDispatch, ppe,
                            "send_extract");
      if (balanced_) {
        arm_balanced();
      } else if (fused_) {
        send_fused();
      } else if (scenario_ == Scenario::kSharded) {
        send_shards();
      } else {
        for (int s = 0; s < 4; ++s) {
          FeatureSlot& slot = slots_[s];
          sent[s] = ppe.now_ns();
          if (guard_.enabled) {
            slot.g_extract->Send(static_cast<int>(kernels::SPU_Run),
                                 slot.msg.ea());
          } else {
            slot.extract_if->Send(static_cast<int>(kernels::SPU_Run),
                                  slot.msg.ea());
          }
        }
      }
    }
    // PPE work overlaps the SPE kernels: decode the next image now.
    img::RgbImage next;
    if (i + 1 < images.size()) next = decode(*images[i + 1]);

    if (balanced_) {
      drain_balanced(current);
      {
        probe::ProbeSpan span(prt(), probe::Phase::kReduce, ppe,
                              "fuse_reduce");
        for (int si = 0; si < 4; ++si) reduce_fused_slot(si);
        fuse_images_counter_->add(1);
      }
      fused_detect();
    } else if (fused_) {
      {
        probe::ProbeSpan span(prt(), probe::Phase::kExtract, ppe,
                              "fused_lanes");
        wait_fused(current);
      }
      {
        probe::ProbeSpan span(prt(), probe::Phase::kReduce, ppe,
                              "fuse_reduce");
        for (int si = 0; si < 4; ++si) reduce_fused_slot(si);
        fuse_images_counter_->add(1);
      }
      fused_detect();
    } else if (scenario_ == Scenario::kSharded) {
      {
        probe::ProbeSpan span(prt(), probe::Phase::kExtract, ppe,
                              "shards");
        wait_shards(current);
      }
      {
        probe::ProbeSpan span(prt(), probe::Phase::kReduce, ppe,
                              "shard_reduce");
        for (int si = 0; si < 4; ++si) reduce_slot(si);
        shard_reduce_counter_->add(1);
      }
      probe::ProbeSpan span(prt(), probe::Phase::kDetect, ppe, "blocks");
      for (auto& slot : slots_) sharded_detect(slot);
    } else if (guard_.enabled) {
      if (scenario_ == Scenario::kMultiSPE2) {
        sim::SimTime detect_sent[4] = {0, 0, 0, 0};
        {
          probe::ProbeSpan span(prt(), probe::Phase::kExtract, ppe);
          for (int s = 0; s < 4; ++s) {
            FeatureSlot& slot = slots_[s];
            finish_extract(slot, current);
            detect_sent[s] = ppe.now_ns();
            slot.g_detect->Send(static_cast<int>(kernels::SPU_Run),
                                slot.detect_msg.ea());
          }
        }
        probe::ProbeSpan span(prt(), probe::Phase::kDetect, ppe);
        for (int s = 0; s < 4; ++s) {
          FeatureSlot& slot = slots_[s];
          finish_detect(slot, *slot.g_detect);
          rt_.add_spe_span(probe::Phase::kDetect,
                           std::string("cd:") + slot.name,
                           detect_sent[s], ppe.now_ns());
        }
      } else {
        {
          probe::ProbeSpan span(prt(), probe::Phase::kExtract, ppe);
          for (auto& slot : slots_) finish_extract(slot, current);
        }
        probe::ProbeSpan span(prt(), probe::Phase::kDetect, ppe);
        for (auto& slot : slots_) guarded_detect(slot, *g_cd_);
      }
    } else if (scenario_ == Scenario::kMultiSPE2) {
      sim::SimTime detect_sent[4] = {0, 0, 0, 0};
      {
        probe::ProbeSpan span(prt(), probe::Phase::kExtract, ppe);
        for (int s = 0; s < 4; ++s) {
          FeatureSlot& slot = slots_[s];
          slot.extract_if->Wait();
          rt_.add_spe_span(probe::Phase::kExtract, slot.name, sent[s],
                           ppe.now_ns());
          detect_sent[s] = ppe.now_ns();
          slot.detect_if->Send(static_cast<int>(kernels::SPU_Run),
                               slot.detect_msg.ea());
        }
      }
      probe::ProbeSpan span(prt(), probe::Phase::kDetect, ppe);
      for (int s = 0; s < 4; ++s) {
        slots_[s].detect_if->Wait();
        rt_.add_spe_span(probe::Phase::kDetect,
                         std::string("cd:") + slots_[s].name,
                         detect_sent[s], ppe.now_ns());
      }
    } else {
      {
        probe::ProbeSpan span(prt(), probe::Phase::kExtract, ppe);
        for (int s = 0; s < 4; ++s) {
          slots_[s].extract_if->Wait();
          rt_.add_spe_span(probe::Phase::kExtract, slots_[s].name,
                           sent[s], ppe.now_ns());
        }
      }
      probe::ProbeSpan span(prt(), probe::Phase::kDetect, ppe);
      for (auto& slot : slots_) {
        const sim::SimTime d_sent = ppe.now_ns();
        run_detection(slot, *cd_if_);
        rt_.add_spe_span(probe::Phase::kDetect,
                         std::string("cd:") + slot.name, d_sent,
                         ppe.now_ns());
      }
    }

    AnalysisResult result;
    {
      probe::ProbeSpan span(prt(), probe::Phase::kOutput, ppe, "collect");
      collect(slots_[0], result.color_histogram, result.ch_detect,
              "color_histogram");
      collect(slots_[1], result.color_correlogram, result.cc_detect,
              "color_correlogram");
      collect(slots_[2], result.texture, result.tx_detect, "texture");
      collect(slots_[3], result.edge_histogram, result.eh_detect,
              "edge_histogram");
    }
    if (guard_.enabled) result.degraded = std::move(degraded_current_);
    note_image_done();
    finish_request();
    results.push_back(std::move(result));
    if (i + 1 < images.size()) current = std::move(next);
  }
  return results;
}

}  // namespace cellport::marvel
