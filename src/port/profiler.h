// Instrumentation profiler over simulated time.
//
// The porting strategy's first step (Section 3.2) is kernel identification
// by profiling the PPE build with gprof/Xprofiler. In the simulator the
// same role is played by this profiler: scoped probes accumulate inclusive
// and exclusive *simulated* time on a ScalarContext, and the report ranks
// methods by execution coverage — the numbers that drive the choice of
// candidate kernels.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/scalar_context.h"

namespace cellport::port {

class Profiler {
 public:
  explicit Profiler(sim::ScalarContext& ctx) : ctx_(ctx) {}

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// RAII probe: time between construction and destruction is attributed
  /// to `name` (exclusive time stops while a nested probe is active).
  class Scope {
   public:
    Scope(Profiler& p, const std::string& name);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler& p_;
    std::size_t idx_;
    sim::SimTime start_;
    sim::SimTime child_ns_at_start_;
    // Whether this scope recorded a trace begin (the session could be
    // toggled mid-scope; the end must match the begin, not the toggle).
    bool traced_ = false;
  };

  struct Record {
    std::string name;
    std::uint64_t calls = 0;
    sim::SimTime inclusive_ns = 0;
    sim::SimTime exclusive_ns = 0;
    /// Exclusive time as a fraction of total profiled time.
    double coverage = 0.0;
  };

  /// Records sorted by exclusive time, descending; coverage is relative
  /// to the total time spanned by top-level probes.
  std::vector<Record> report() const;

  /// Exclusive-time coverage of one probe name (0 when absent).
  double coverage(const std::string& name) const;

  /// Total simulated time across top-level probes.
  sim::SimTime total_ns() const { return total_ns_; }

  /// The `n` highest-coverage records: the candidate kernels of
  /// Section 3.2.
  std::vector<Record> top_hotspots(std::size_t n) const;

  /// A caller->callee edge of the dynamic call graph (the paper enriches
  /// kernels "based on the application call graph", Section 3.2).
  struct Edge {
    std::string parent;
    std::string child;
    std::uint64_t calls = 0;
    sim::SimTime ns = 0;  // inclusive time spent in child under parent
  };
  std::vector<Edge> edges() const;

  /// Graphviz rendering of the call graph; node labels carry coverage,
  /// edge labels call counts — the Xprofiler-style view.
  std::string dot() const;

  void reset();

 private:
  struct Node {
    std::string name;
    std::uint64_t calls = 0;
    sim::SimTime inclusive_ns = 0;
    sim::SimTime exclusive_ns = 0;
  };

  std::size_t node_index(const std::string& name);

  sim::ScalarContext& ctx_;
  std::vector<Node> nodes_;
  // Stack of active probes; tracks child time for exclusive accounting.
  struct Active {
    std::size_t idx;
    sim::SimTime child_ns = 0;
  };
  std::vector<Active> stack_;
  sim::SimTime total_ns_ = 0;
  // Dynamic call-graph edges keyed by (parent node, child node); the
  // root pseudo-node is SIZE_MAX.
  struct EdgeData {
    std::uint64_t calls = 0;
    sim::SimTime ns = 0;
  };
  std::map<std::pair<std::size_t, std::size_t>, EdgeData> edges_;
};

}  // namespace cellport::port
