// The SPE kernel dispatcher: a reusable implementation of the paper's
// Listing 1.
//
// Every ported kernel becomes a KernelModule: a set of functions registered
// under opcodes, wrapped by a generated main() that idles on the inbound
// mailbox, dispatches commands, and reports completion through the polled
// or interrupting outbound mailbox. This is the "function dispatcher
// (kernel idle mode)" step of the kernel-migration algorithm in
// Section 3.4: threads are created once and kept alive, avoiding the high
// penalty of per-invocation thread creation.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "sim/machine.h"

namespace cellport::port {

/// Reserved opcode: terminate the SPE thread (Listing 1's SPU_EXIT).
inline constexpr std::uint32_t SPU_EXIT = 0;
/// First opcode available to user kernel functions.
inline constexpr std::uint32_t SPU_RUN_BASE = 1;
/// Result word signalling that the kernel function threw (the error text
/// is retrievable via KernelModule::last_error()).
inline constexpr std::uint64_t kKernelFault = 0xFFFFFFFFull;

/// How the SPE signals completion back to the PPE (Listing 1 supports
/// both; Section 3.5 step 6).
enum class CompletionMode { kPolling, kInterrupt };

class KernelModule {
 public:
  /// A kernel component function: receives the effective address of the
  /// wrapper structure (Section 3.3) and returns a status word.
  using Fn = int (*)(std::uint64_t ea);

  /// `code_bytes` is the kernel's text+bss footprint, reserved in the
  /// local store when the program is loaded (the paper's "small enough to
  /// fit in the local store" constraint).
  KernelModule(std::string name, std::size_t code_bytes,
               CompletionMode mode = CompletionMode::kPolling);

  /// Registers `fn` under `opcode` (must be >= SPU_RUN_BASE and unused).
  KernelModule& add_function(std::uint32_t opcode, Fn fn);

  /// The loadable program image (pass to SPEInterface / spe_create_thread).
  const sim::SpeProgram& program() const { return program_; }

  /// Runs the function registered under `opcode` directly (used by the
  /// dynamic TaskPool workers, whose generic dispatcher resolves modules
  /// at run time). Throws ConfigError for unknown opcodes; kernel errors
  /// propagate to the caller.
  int invoke(std::uint32_t opcode, std::uint64_t ea) const;

  const std::string& name() const { return name_; }
  CompletionMode mode() const { return mode_; }

  /// Message of the most recent kernel fault ("" when none).
  std::string last_error() const;

 private:
  static int dispatch_main(std::uint64_t spe_id, std::uint64_t argv);
  void note_error(const std::string& msg);

  std::string name_;
  CompletionMode mode_;
  std::map<std::uint32_t, Fn> functions_;
  sim::SpeProgram program_;
  mutable std::mutex err_mu_;
  std::string last_error_;
};

}  // namespace cellport::port
