// Porting-efficiency evaluation (Section 4.2, last paragraph).
//
// The paper weighs the estimated application speed-up of a porting step
// against the effort the step requires, concluding for example that
// pushing a 10%-coverage kernel from 10x to 100x "is not worth" the work.
// PortingEvaluator ranks candidate steps by marginal application speed-up
// per unit of effort so that the roadmap can be ordered rationally.
#pragma once

#include <string>
#include <vector>

#include "port/amdahl.h"

namespace cellport::port {

/// One contemplated porting/optimization step.
struct PortingStep {
  std::string description;
  /// Index of the kernel the step improves (into the evaluator's set).
  std::size_t kernel_index = 0;
  /// Kernel speed-up after the step.
  double new_speedup = 1.0;
  /// Estimated effort in arbitrary consistent units (person-days).
  double effort = 1.0;
};

struct RankedStep {
  PortingStep step;
  double app_speedup_after = 1.0;
  double marginal_gain = 0.0;     // Sapp(after) - Sapp(before)
  double gain_per_effort = 0.0;
};

class PortingEvaluator {
 public:
  explicit PortingEvaluator(std::vector<KernelPoint> kernels);

  /// Evaluates each step independently against the current kernel set and
  /// returns them ranked by gain per effort, descending.
  std::vector<RankedStep> rank(std::vector<PortingStep> steps) const;

  /// Current estimated application speed-up (Equation 2).
  double current_speedup() const;

  /// Applies a step to the kernel set (after the work is done).
  void apply(const PortingStep& step);

  const std::vector<KernelPoint>& kernels() const { return kernels_; }

 private:
  std::vector<KernelPoint> kernels_;
};

}  // namespace cellport::port
