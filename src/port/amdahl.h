// The paper's performance model: Equations (1)-(3) of Section 4.2.
//
// Given per-kernel coverage (Kfr: the fraction of application execution
// time a kernel represents on the PPE) and per-kernel speed-up over the
// PPE, these first-order Amdahl estimates predict whole-application
// speed-up for a single kernel, for n kernels invoked sequentially
// (Figure 4b), and for kernels scheduled in parallel groups (Figure 4c).
// Section 5.5 shows the estimates match measurement within 2%.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace cellport::port {

/// One kernel's operating point.
struct KernelPoint {
  std::string name;
  double coverage = 0.0;  // Kfr, in [0, 1]
  double speedup = 1.0;   // Kspeedup > 0, relative to the PPE
};

/// Equation (1): application speed-up from one accelerated kernel.
///   Sapp = 1 / ((1 - Kfr) + Kfr / Kspeedup)
double estimate_single(const KernelPoint& k);

/// Equation (2): n kernels executed sequentially (Figure 4b).
///   Sapp = 1 / ((1 - sum Kfr_i) + sum (Kfr_i / Kspeedup_i))
double estimate_sequential(std::span<const KernelPoint> kernels);

/// Equation (3): kernels partitioned into groups; kernels within a group
/// run in parallel on distinct SPEs, groups run sequentially (Figure 4c).
///   Sapp = 1 / ((1 - sum Kfr_i) + sum_j max_{k in group j}(Kfr_k / Kspeedup_k))
double estimate_grouped(
    std::span<const std::vector<KernelPoint>> groups);

/// cellshard extension of Equation (3): a kernel inside a parallel group
/// may itself be data-parallel over `shards` SPEs, dividing its term by
/// the shard count at the price of a per-extra-shard overhead fraction
/// (halo refetch + dispatch + the PPE reduction):
///   term_k = (Kfr_k / Kspeedup_k) * (1 + ovh_k*(n_k-1)) / n_k
///   Sapp   = 1 / ((1 - sum Kfr_i) + sum_j max_{k in group j} term_k)
/// With every shards == 1 this reduces exactly to estimate_grouped.
struct ShardedKernelPoint {
  KernelPoint point;
  int shards = 1;
  double shard_overhead = 0.0;  // fraction of the 1-SPE time per extra shard
};
double estimate_sharded(
    std::span<const std::vector<ShardedKernelPoint>> groups);

/// Validates a kernel set: coverages in [0,1], total <= 1 (plus epsilon),
/// speedups > 0. Throws ConfigError on violation.
void validate(std::span<const KernelPoint> kernels);

/// Marginal-value analysis of Section 4.2's worked example: the
/// application speed-up gained by improving kernel `k` from its current
/// speed-up to `new_speedup`, all other kernels unchanged.
double optimization_gain(std::span<const KernelPoint> kernels,
                         std::size_t k, double new_speedup);

}  // namespace cellport::port
