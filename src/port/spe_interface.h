// SPEInterface: the stub class of the paper's Section 3.3 / Listing 2.
//
// One SPEInterface object manages the communication between the main PPE
// application and one SPE kernel: it loads the kernel once (static
// scheduling, no per-call thread creation), sends {opcode, wrapper-address}
// command pairs through the inbound mailbox, and collects results from the
// outbound (polled) or interrupting mailbox — the exact protocol of
// Listing 3.
#pragma once

#include <cstdint>

#include "port/dispatcher.h"
#include "sim/libspe.h"

namespace cellport::port {

class SPEInterface {
 public:
  /// Loads `module` onto an SPE of the current machine and leaves it
  /// idling in its dispatcher loop. `spe_index` of -1 picks a free SPE.
  explicit SPEInterface(const KernelModule& module, int spe_index = -1);

  /// Sends SPU_EXIT and joins the SPE thread.
  ~SPEInterface();

  SPEInterface(const SPEInterface&) = delete;
  SPEInterface& operator=(const SPEInterface&) = delete;

  /// (Re)opens the SPE thread; returns 0 on success. Normally done by the
  /// constructor — exposed to match the paper's Listing 2.
  int thread_open(const KernelModule& module, int spe_index = -1);

  /// Sends `cmnd` (normally SPU_EXIT) and joins; returns the SPE program's
  /// exit code.
  int thread_close(int cmnd = static_cast<int>(SPU_EXIT));

  /// Synchronous call: send the command and the wrapper address, then
  /// wait for (and return) the kernel's result word. Listing 3.
  int SendAndWait(int functionCall, std::uint64_t value);

  /// Asynchronous call: send and return immediately; pair with Wait().
  /// Only one call may be in flight per interface (the outbound mailbox
  /// is one entry deep).
  int Send(int functionCall, std::uint64_t value);

  /// Collects the result of a previous Send. `timeout < 0` blocks until
  /// completion (Listing 3's busy loop). `timeout >= 0` is a deadline in
  /// simulated milliseconds: when the kernel's completion is not
  /// delivered in time, the PPE clock advances exactly to the deadline
  /// and a cellport::TimeoutError is thrown, leaving the interface
  /// stale() until the abandoned completion is reclaim()ed. The decision
  /// is made purely in simulated time, so timeouts are deterministic.
  int Wait(int timeout = -1);

  /// Deadline wait in simulated nanoseconds (the primitive Wait() and the
  /// guard layer build on). Returns true and stores the kernel's result
  /// word in `*result` on completion; returns false on timeout (interface
  /// becomes stale()). Throws cellport::Error when the kernel faulted.
  /// `timeout_ns < 0` blocks forever and always returns true.
  bool WaitFor(sim::SimTime timeout_ns, int* result);

  /// True after a timed-out Wait: the kernel's completion word is still
  /// owed and occupies the 1-deep outbound mailbox. Send() and
  /// thread_close() reclaim automatically; explicit reclaim() is for
  /// callers that want the drain at a specific point.
  bool stale() const { return stale_; }

  /// Drains the abandoned completion of a timed-out call (blocking
  /// host-side only: kernels always finish functionally). No simulated
  /// clock effects — the PPE already accounted for its wait when the
  /// deadline expired.
  void reclaim();

  /// True while a Send() has not been Wait()ed for.
  bool busy() const { return pending_; }

  /// The underlying SPE (for statistics: pipeline counters, DMA traffic).
  sim::SpeContext& spe() { return spuid_->ctx(); }
  const KernelModule& module() const { return *module_; }

 private:
  const KernelModule* module_ = nullptr;
  sim::speid_t spuid_ = nullptr;
  bool pending_ = false;
  bool stale_ = false;
};

}  // namespace cellport::port
