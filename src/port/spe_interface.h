// SPEInterface: the stub class of the paper's Section 3.3 / Listing 2.
//
// One SPEInterface object manages the communication between the main PPE
// application and one SPE kernel: it loads the kernel once (static
// scheduling, no per-call thread creation), sends {opcode, wrapper-address}
// command pairs through the inbound mailbox, and collects results from the
// outbound (polled) or interrupting mailbox — the exact protocol of
// Listing 3.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "port/dispatcher.h"
#include "port/message.h"
#include "port/ring.h"
#include "sim/libspe.h"
#include "support/aligned.h"

namespace cellport::port {

class SPEInterface {
 public:
  /// Loads `module` onto an SPE of the current machine and leaves it
  /// idling in its dispatcher loop. `spe_index` of -1 picks a free SPE.
  explicit SPEInterface(const KernelModule& module, int spe_index = -1);

  /// Sends SPU_EXIT and joins the SPE thread.
  ~SPEInterface();

  SPEInterface(const SPEInterface&) = delete;
  SPEInterface& operator=(const SPEInterface&) = delete;

  /// (Re)opens the SPE thread; returns 0 on success. Normally done by the
  /// constructor — exposed to match the paper's Listing 2.
  int thread_open(const KernelModule& module, int spe_index = -1);

  /// Sends `cmnd` (normally SPU_EXIT) and joins; returns the SPE program's
  /// exit code.
  int thread_close(int cmnd = static_cast<int>(SPU_EXIT));

  /// Synchronous call: send the command and the wrapper address, then
  /// wait for (and return) the kernel's result word. Listing 3.
  int SendAndWait(int functionCall, std::uint64_t value);

  /// Asynchronous call: send and return immediately; pair with Wait().
  /// Only one call may be in flight per interface (the outbound mailbox
  /// is one entry deep).
  int Send(int functionCall, std::uint64_t value);

  /// Collects the result of a previous Send. `timeout < 0` blocks until
  /// completion (Listing 3's busy loop). `timeout >= 0` is a deadline in
  /// simulated milliseconds: when the kernel's completion is not
  /// delivered in time, the PPE clock advances exactly to the deadline
  /// and a cellport::TimeoutError is thrown, leaving the interface
  /// stale() until the abandoned completion is reclaim()ed. The decision
  /// is made purely in simulated time, so timeouts are deterministic.
  int Wait(int timeout = -1);

  /// Deadline wait in simulated nanoseconds (the primitive Wait() and the
  /// guard layer build on). Returns true and stores the kernel's result
  /// word in `*result` on completion; returns false on timeout (interface
  /// becomes stale()). Throws cellport::Error when the kernel faulted.
  /// `timeout_ns < 0` blocks forever and always returns true.
  bool WaitFor(sim::SimTime timeout_ns, int* result);

  /// True after a timed-out Wait: the kernel's completion word is still
  /// owed and occupies the 1-deep outbound mailbox. Send() and
  /// thread_close() reclaim automatically; explicit reclaim() is for
  /// callers that want the drain at a specific point.
  bool stale() const { return stale_; }

  /// Drains the abandoned completion of a timed-out call (blocking
  /// host-side only: kernels always finish functionally). No simulated
  /// clock effects — the PPE already accounted for its wait when the
  /// deadline expired.
  void reclaim();

  /// True while a Send() has not been Wait()ed for.
  bool busy() const { return pending_; }

  /// cellbalance: the delivery timestamp of the pending call's completion
  /// word, WITHOUT consuming it (one MMIO charge, no clock sync — a hung
  /// kernel's kNeverNs completion is safe to observe). The steal
  /// scheduler argmins this across lanes; the eventual Wait()/WaitFor()
  /// consumes the exact entry that was peeked. Throws without a pending
  /// Send.
  sim::SimTime peek_completion_ns();

  // ---- cellstream: batched command-ring dispatch ----

  /// Result entry WaitBatch stores for a request whose kernel faulted.
  /// Per-request faults do NOT throw (a batch is many independent calls;
  /// callers retry just the affected request).
  static constexpr int kRingFault = -1;

  /// Allocates a main-memory command/result ring of `capacity` slots
  /// (2..ring::kMaxRingCapacity) and arms the SPE dispatcher (two mailbox
  /// words, paid once). Throws ConfigError if already configured.
  void set_ring_capacity(std::uint32_t capacity);
  bool ring_configured() const { return ring_cap_ != 0; }
  std::uint32_t ring_capacity() const { return ring_cap_; }

  /// Queues one call into the ring — no mailbox traffic, just two stores
  /// into the command slot. Throws ConfigError when the ring is full
  /// (enqueued + in-flight == capacity) or a legacy Send is pending.
  void Enqueue(int functionCall, std::uint64_t value);

  /// Rings one doorbell mailbox word covering everything enqueued since
  /// the last flush; returns the batch size (0 when nothing was queued).
  int FlushBatch();

  /// Waits for the oldest in-flight batch's aggregated completion and
  /// appends one result word per request to *results (kRingFault for a
  /// faulted request; results may be null to discard). `timeout_ns < 0`
  /// blocks. Returns false on a missed deadline — the interface becomes
  /// stale() and reclaim() drains the abandoned batch.
  bool WaitBatch(std::vector<int>* results,
                 sim::SimTime timeout_ns = -1);

  /// Commands enqueued but not yet doorbelled.
  std::uint32_t ring_pending() const { return ring_pending_; }
  /// Commands doorbelled but not yet collected by WaitBatch.
  std::uint32_t ring_in_flight() const { return ring_in_flight_; }
  /// In-flight batches awaiting WaitBatch.
  std::size_t ring_batches_in_flight() const { return ring_batches_.size(); }

  /// The underlying SPE (for statistics: pipeline counters, DMA traffic).
  sim::SpeContext& spe() { return spuid_->ctx(); }
  const KernelModule& module() const { return *module_; }

 private:
  void drain_ring();

  const KernelModule* module_ = nullptr;
  sim::speid_t spuid_ = nullptr;
  bool pending_ = false;
  bool stale_ = false;

  // Command-ring state (all zero/empty until set_ring_capacity).
  cellport::AlignedBuffer<ring::RingCommand> ring_slots_;
  cellport::AlignedBuffer<ring::RingSlotResult> ring_results_;
  std::unique_ptr<WrappedMessage<ring::RingDescriptor>> ring_desc_;
  std::uint32_t ring_cap_ = 0;
  std::uint32_t ring_head_ = 0;     // next slot Enqueue fills
  std::uint32_t ring_read_ = 0;     // next slot WaitBatch consumes
  std::uint32_t ring_pending_ = 0;  // enqueued since the last doorbell
  std::uint32_t ring_in_flight_ = 0;
  // Sequence numbers start at 1: result slots the SPE never published
  // keep their initial seq of 0, which must never match a live command.
  std::uint32_t ring_seq_ = 1;       // next command sequence number
  std::uint32_t ring_read_seq_ = 1;  // seq of the next consumed result
  std::deque<std::uint32_t> ring_batches_;  // in-flight batch sizes
  bool stale_is_ring_ = false;  // the owed completion is a batch word
};

}  // namespace cellport::port
