#include "port/schedule.h"

#include <set>

#include "support/error.h"

namespace cellport::port {

StaticSchedule::StaticSchedule(int num_spes) : num_spes_(num_spes) {
  if (num_spes < 1 || num_spes > 8) {
    throw cellport::ConfigError("a Cell schedule targets 1..8 SPEs");
  }
}

StaticSchedule& StaticSchedule::add_group(std::vector<KernelPoint> kernels) {
  if (kernels.empty()) {
    throw cellport::ConfigError("empty schedule group");
  }
  if (static_cast<int>(kernels.size()) > num_spes_) {
    throw cellport::ConfigError(
        "group of " + std::to_string(kernels.size()) +
        " parallel kernels exceeds the " + std::to_string(num_spes_) +
        " available SPEs");
  }
  std::set<std::string> names;
  for (const auto& g : groups_)
    for (const auto& k : g) names.insert(k.name);
  int resident = static_cast<int>(names.size());
  for (const auto& k : kernels) {
    if (!names.insert(k.name).second) {
      throw cellport::ConfigError("kernel '" + k.name +
                                  "' appears twice in the schedule");
    }
    ++resident;
  }
  if (resident > num_spes_) {
    throw cellport::ConfigError(
        "schedule needs " + std::to_string(resident) +
        " resident kernels but the machine has only " +
        std::to_string(num_spes_) + " SPEs (one kernel per SPE)");
  }
  groups_.push_back(std::move(kernels));
  return *this;
}

StaticSchedule StaticSchedule::sequential(std::vector<KernelPoint> kernels,
                                          int num_spes) {
  StaticSchedule s(num_spes);
  for (auto& k : kernels) s.add_group({std::move(k)});
  return s;
}

int StaticSchedule::spes_used() const {
  std::set<std::string> names;
  for (const auto& g : groups_)
    for (const auto& k : g) names.insert(k.name);
  return static_cast<int>(names.size());
}

double StaticSchedule::estimated_speedup() const {
  return estimate_grouped(groups_);
}

std::size_t StaticSchedule::kernel_count() const {
  std::size_t n = 0;
  for (const auto& g : groups_) n += g.size();
  return n;
}

}  // namespace cellport::port
