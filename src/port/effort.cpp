#include "port/effort.h"

#include <algorithm>

#include "support/error.h"

namespace cellport::port {

PortingEvaluator::PortingEvaluator(std::vector<KernelPoint> kernels)
    : kernels_(std::move(kernels)) {
  validate(kernels_);
}

double PortingEvaluator::current_speedup() const {
  return estimate_sequential(kernels_);
}

std::vector<RankedStep> PortingEvaluator::rank(
    std::vector<PortingStep> steps) const {
  double before = current_speedup();
  std::vector<RankedStep> out;
  out.reserve(steps.size());
  for (auto& s : steps) {
    if (s.kernel_index >= kernels_.size()) {
      throw cellport::ConfigError("porting step '" + s.description +
                                  "' targets an unknown kernel");
    }
    if (s.effort <= 0.0) {
      throw cellport::ConfigError("porting step '" + s.description +
                                  "' must have positive effort");
    }
    std::vector<KernelPoint> modified = kernels_;
    modified[s.kernel_index].speedup = s.new_speedup;
    RankedStep r;
    r.app_speedup_after = estimate_sequential(modified);
    r.marginal_gain = r.app_speedup_after - before;
    r.gain_per_effort = r.marginal_gain / s.effort;
    r.step = std::move(s);
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(), [](const RankedStep& a,
                                       const RankedStep& b) {
    return a.gain_per_effort > b.gain_per_effort;
  });
  return out;
}

void PortingEvaluator::apply(const PortingStep& step) {
  if (step.kernel_index >= kernels_.size()) {
    throw cellport::ConfigError("porting step targets an unknown kernel");
  }
  kernels_[step.kernel_index].speedup = step.new_speedup;
}

}  // namespace cellport::port
