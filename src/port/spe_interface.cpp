#include "port/spe_interface.h"

#include "sim/machine.h"
#include "support/error.h"
#include "trace/trace.h"

namespace cellport::port {

SPEInterface::SPEInterface(const KernelModule& module, int spe_index) {
  thread_open(module, spe_index);
}

SPEInterface::~SPEInterface() {
  if (spuid_ != nullptr) {
    try {
      if (pending_) Wait();
      thread_close();
    } catch (...) {
      // Destructors must not throw; a shutdown failure here means the
      // machine is already being torn down.
    }
  }
}

int SPEInterface::thread_open(const KernelModule& module, int spe_index) {
  if (spuid_ != nullptr) {
    throw cellport::ConfigError("SPEInterface already owns an SPE thread");
  }
  module_ = &module;
  spuid_ = sim::spe_create_thread(
      module.program(), reinterpret_cast<std::uint64_t>(&module), spe_index);
  return 0;
}

int SPEInterface::thread_close(int cmnd) {
  if (spuid_ == nullptr) return 0;
  sim::spe_write_in_mbox(spuid_, static_cast<std::uint64_t>(cmnd));
  int rc = sim::spe_wait(spuid_);
  spuid_ = nullptr;
  module_ = nullptr;
  return rc;
}

int SPEInterface::SendAndWait(int functionCall, std::uint64_t value) {
  Send(functionCall, value);
  return Wait();
}

int SPEInterface::Send(int functionCall, std::uint64_t value) {
  if (spuid_ == nullptr) {
    throw cellport::ConfigError("SPEInterface has no SPE thread");
  }
  if (pending_) {
    throw cellport::ConfigError(
        "SPEInterface::Send while a call is in flight (the outbound "
        "mailbox is one entry deep); Wait() first");
  }
  sim::ScalarContext& ppe = spuid_->machine().ppe();
  if (ppe.trace_on()) {
    ppe.trace_track()->instant(
        trace::Category::kRuntime, "send:" + module_->name(), ppe.now_ns(),
        "opcode", static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(functionCall)));
  }
  // Listing 3: send command, then the wrapper-structure address.
  sim::spe_write_in_mbox(spuid_, static_cast<std::uint64_t>(
                                     static_cast<std::uint32_t>(functionCall)));
  sim::spe_write_in_mbox(spuid_, value);
  pending_ = true;
  return 0;
}

int SPEInterface::Wait(int /*timeout*/) {
  if (!pending_) {
    throw cellport::ConfigError("SPEInterface::Wait without a pending Send");
  }
  sim::ScalarContext& ppe = spuid_->machine().ppe();
  sim::SimTime wait_t0 = ppe.now_ns();
  std::uint64_t retVal =
      module_->mode() == CompletionMode::kPolling
          ? sim::spe_read_out_mbox(spuid_)
          : sim::spe_read_out_intr_mbox(spuid_);
  if (ppe.trace_on()) {
    ppe.trace_track()->complete(trace::Category::kRuntime,
                                "wait:" + module_->name(), wait_t0,
                                ppe.now_ns());
  }
  pending_ = false;
  if (retVal == kKernelFault) {
    throw cellport::Error("SPE kernel '" + module_->name() +
                          "' faulted: " + module_->last_error());
  }
  return static_cast<int>(retVal);
}

}  // namespace cellport::port
