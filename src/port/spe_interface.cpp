#include "port/spe_interface.h"

#include "sim/machine.h"
#include "support/error.h"
#include "trace/trace.h"

namespace cellport::port {

SPEInterface::SPEInterface(const KernelModule& module, int spe_index) {
  thread_open(module, spe_index);
}

SPEInterface::~SPEInterface() {
  if (spuid_ != nullptr) {
    try {
      if (pending_) Wait();
      thread_close();
    } catch (...) {
      // Destructors must not throw; a shutdown failure here means the
      // machine is already being torn down.
    }
  }
}

int SPEInterface::thread_open(const KernelModule& module, int spe_index) {
  if (spuid_ != nullptr) {
    throw cellport::ConfigError("SPEInterface already owns an SPE thread");
  }
  module_ = &module;
  spuid_ = sim::spe_create_thread(
      module.program(), reinterpret_cast<std::uint64_t>(&module), spe_index);
  return 0;
}

int SPEInterface::thread_close(int cmnd) {
  if (spuid_ == nullptr) return 0;
  reclaim();
  drain_ring();
  sim::spe_write_in_mbox(spuid_, static_cast<std::uint64_t>(cmnd));
  int rc = sim::spe_wait(spuid_);
  spuid_ = nullptr;
  module_ = nullptr;
  return rc;
}

int SPEInterface::SendAndWait(int functionCall, std::uint64_t value) {
  Send(functionCall, value);
  return Wait();
}

int SPEInterface::Send(int functionCall, std::uint64_t value) {
  if (spuid_ == nullptr) {
    throw cellport::ConfigError("SPEInterface has no SPE thread");
  }
  if (stale_) reclaim();
  if (pending_) {
    throw cellport::ConfigError(
        "SPEInterface::Send while a call is in flight (the outbound "
        "mailbox is one entry deep); Wait() first");
  }
  if (ring_pending_ != 0 || ring_in_flight_ != 0) {
    throw cellport::ConfigError(
        "SPEInterface::Send while ring commands are outstanding; "
        "FlushBatch()+WaitBatch() first");
  }
  sim::ScalarContext& ppe = spuid_->machine().ppe();
  if (ppe.trace_on()) {
    ppe.trace_track()->instant(
        trace::Category::kRuntime, "send:" + module_->name(), ppe.now_ns(),
        "opcode", static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(functionCall)));
  }
  // Listing 3: send command, then the wrapper-structure address.
  sim::spe_write_in_mbox(spuid_, static_cast<std::uint64_t>(
                                     static_cast<std::uint32_t>(functionCall)));
  sim::spe_write_in_mbox(spuid_, value);
  pending_ = true;
  return 0;
}

int SPEInterface::Wait(int timeout) {
  if (timeout >= 0) {
    // The timeout the paper's signature always promised: interpreted as
    // simulated milliseconds, enforced deterministically by WaitFor.
    int result = 0;
    if (!WaitFor(static_cast<sim::SimTime>(timeout) * 1e6, &result)) {
      throw cellport::TimeoutError(
          "SPE kernel '" + module_->name() + "' missed its deadline of " +
          std::to_string(timeout) + " ms (simulated)");
    }
    return result;
  }
  int result = 0;
  WaitFor(-1, &result);
  return result;
}

bool SPEInterface::WaitFor(sim::SimTime timeout_ns, int* result) {
  if (!pending_) {
    throw cellport::ConfigError("SPEInterface::Wait without a pending Send");
  }
  sim::ScalarContext& ppe = spuid_->machine().ppe();
  sim::SimTime wait_t0 = ppe.now_ns();
  const bool polling = module_->mode() == CompletionMode::kPolling;
  std::uint64_t retVal = 0;
  bool completed = true;
  if (timeout_ns < 0) {
    retVal = polling ? sim::spe_read_out_mbox(spuid_)
                     : sim::spe_read_out_intr_mbox(spuid_);
  } else {
    sim::SimTime deadline = wait_t0 + timeout_ns;
    completed = polling
                    ? sim::spe_out_mbox_read_before(spuid_, deadline, &retVal)
                    : sim::spe_out_intr_mbox_read_before(spuid_, deadline,
                                                         &retVal);
  }
  if (ppe.trace_on()) {
    ppe.trace_track()->complete(
        trace::Category::kRuntime,
        (completed ? "wait:" : "wait_timeout:") + module_->name(), wait_t0,
        ppe.now_ns());
  }
  pending_ = false;
  if (!completed) {
    stale_ = true;
    return false;
  }
  if (retVal == kKernelFault) {
    throw cellport::Error("SPE kernel '" + module_->name() +
                          "' faulted: " + module_->last_error());
  }
  *result = static_cast<int>(retVal);
  return true;
}

sim::SimTime SPEInterface::peek_completion_ns() {
  if (!pending_) {
    throw cellport::ConfigError(
        "SPEInterface::peek_completion_ns without a pending Send");
  }
  return sim::spe_peek_out_mbox_ns(
      spuid_, module_->mode() == CompletionMode::kInterrupt);
}

void SPEInterface::reclaim() {
  if (!stale_ || spuid_ == nullptr) return;
  sim::spe_discard_out_mbox(spuid_,
                            module_->mode() == CompletionMode::kInterrupt);
  if (stale_is_ring_ && !ring_batches_.empty()) {
    // The discarded word was a batch completion: retire the whole batch.
    // Its results were published functionally; the caller abandoned them.
    std::uint32_t count = ring_batches_.front();
    ring_batches_.pop_front();
    ring_in_flight_ -= count;
    ring_read_ = (ring_read_ + count) % ring_cap_;
    ring_read_seq_ += count;
  }
  stale_is_ring_ = false;
  stale_ = false;
}

// ---- cellstream: batched command-ring dispatch ----

void SPEInterface::set_ring_capacity(std::uint32_t capacity) {
  if (spuid_ == nullptr) {
    throw cellport::ConfigError("SPEInterface has no SPE thread");
  }
  if (ring_cap_ != 0) {
    throw cellport::ConfigError(
        "SPEInterface ring is already configured (re-arming would leak "
        "the dispatcher's retained local store)");
  }
  if (capacity < 2 || capacity > ring::kMaxRingCapacity) {
    throw cellport::ConfigError(
        "ring capacity must be in [2, " +
        std::to_string(ring::kMaxRingCapacity) + "], requested " +
        std::to_string(capacity));
  }
  ring_slots_ = cellport::AlignedBuffer<ring::RingCommand>(capacity);
  ring_results_ = cellport::AlignedBuffer<ring::RingSlotResult>(capacity);
  ring_desc_ = std::make_unique<WrappedMessage<ring::RingDescriptor>>();
  sim::ScalarContext& ppe = spuid_->machine().ppe();
  ppe.charge(sim::OpClass::kStore, 4);
  (*ring_desc_)->slots_ea =
      reinterpret_cast<std::uint64_t>(ring_slots_.data());
  (*ring_desc_)->results_ea =
      reinterpret_cast<std::uint64_t>(ring_results_.data());
  (*ring_desc_)->capacity = capacity;
  ring_cap_ = capacity;
  // Arm the dispatcher: control word, then the descriptor address (the
  // one place the ring costs two mailbox writes, paid once).
  sim::spe_write_in_mbox(
      spuid_, static_cast<std::uint64_t>(ring::kRingArmWord) << 32);
  sim::spe_write_in_mbox(spuid_, ring_desc_->ea());
}

void SPEInterface::Enqueue(int functionCall, std::uint64_t value) {
  if (ring_cap_ == 0) {
    throw cellport::ConfigError(
        "SPEInterface::Enqueue without set_ring_capacity");
  }
  if (pending_) {
    throw cellport::ConfigError(
        "SPEInterface::Enqueue while a legacy Send is in flight");
  }
  if (stale_) reclaim();
  if (ring_pending_ + ring_in_flight_ >= ring_cap_) {
    throw cellport::ConfigError(
        "SPEInterface ring is full (" + std::to_string(ring_cap_) +
        " slots enqueued or in flight); WaitBatch() first");
  }
  spuid_->machine().ppe().charge(sim::OpClass::kStore, 2);
  ring::RingCommand& c = ring_slots_.data()[ring_head_];
  c.opcode = static_cast<std::uint32_t>(functionCall);
  c.seq = ring_seq_++;
  c.ea = value;
  ring_head_ = (ring_head_ + 1) % ring_cap_;
  ++ring_pending_;
}

int SPEInterface::FlushBatch() {
  if (ring_cap_ == 0) {
    throw cellport::ConfigError(
        "SPEInterface::FlushBatch without set_ring_capacity");
  }
  if (ring_pending_ == 0) return 0;
  std::uint32_t count = ring_pending_;
  sim::ScalarContext& ppe = spuid_->machine().ppe();
  if (ppe.trace_on()) {
    ppe.trace_track()->instant(
        trace::Category::kRuntime, "doorbell:" + module_->name(),
        ppe.now_ns(), "count", static_cast<std::uint64_t>(count));
  }
  sim::spe_write_in_mbox(
      spuid_, (static_cast<std::uint64_t>(ring::kRingDoorbellWord) << 32) |
                  count);
  ring_pending_ = 0;
  ring_batches_.push_back(count);
  ring_in_flight_ += count;

  trace::MetricsRegistry& m = spuid_->machine().metrics();
  const std::string prefix = "spe" + std::to_string(spe().id()) + ".ring.";
  m.counter(prefix + "doorbells").add(1);
  m.counter(prefix + "commands").add(count);
  m.histogram(prefix + "batch_size").record(count);
  m.histogram(prefix + "occupancy")
      .record(static_cast<double>(ring_in_flight_) / ring_cap_);
  return static_cast<int>(count);
}

bool SPEInterface::WaitBatch(std::vector<int>* results,
                             sim::SimTime timeout_ns) {
  if (ring_batches_.empty()) {
    throw cellport::ConfigError(
        "SPEInterface::WaitBatch without an in-flight batch");
  }
  sim::ScalarContext& ppe = spuid_->machine().ppe();
  sim::SimTime wait_t0 = ppe.now_ns();
  const bool polling = module_->mode() == CompletionMode::kPolling;
  std::uint64_t word = 0;
  bool completed = true;
  if (timeout_ns < 0) {
    word = polling ? sim::spe_read_out_mbox(spuid_)
                   : sim::spe_read_out_intr_mbox(spuid_);
  } else {
    sim::SimTime deadline = wait_t0 + timeout_ns;
    completed = polling
                    ? sim::spe_out_mbox_read_before(spuid_, deadline, &word)
                    : sim::spe_out_intr_mbox_read_before(spuid_, deadline,
                                                         &word);
  }
  if (ppe.trace_on()) {
    ppe.trace_track()->complete(
        trace::Category::kRuntime,
        (completed ? "wait_batch:" : "wait_batch_timeout:") +
            module_->name(),
        wait_t0, ppe.now_ns());
  }
  if (!completed) {
    stale_ = true;
    stale_is_ring_ = true;
    return false;
  }
  std::uint32_t count = ring_batches_.front();
  ring_batches_.pop_front();
  ring_in_flight_ -= count;
  if (static_cast<std::uint32_t>(word >> 32) != count) {
    throw cellport::Error(
        "SPE kernel '" + module_->name() +
        "' ring protocol violation: completion covers " +
        std::to_string(word >> 32) + " commands, batch had " +
        std::to_string(count));
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    ppe.charge(sim::OpClass::kLoad, 1);
    const ring::RingSlotResult& r = ring_results_.data()[ring_read_];
    int value;
    if (r.seq != ring_read_seq_ ||
        r.value == static_cast<std::uint32_t>(kKernelFault)) {
      // A stale seq means the SPE could not publish this slot (its
      // result-put DMA faulted); either way the request failed.
      value = kRingFault;
    } else {
      value = static_cast<int>(r.value);
    }
    if (results != nullptr) results->push_back(value);
    ring_read_ = (ring_read_ + 1) % ring_cap_;
    ++ring_read_seq_;
  }
  return true;
}

void SPEInterface::drain_ring() {
  // Forget anything enqueued but never doorbelled (the SPE has not seen
  // it), then collect every in-flight batch so the dispatcher is idle.
  if (ring_pending_ != 0) {
    ring_head_ = (ring_head_ + ring_cap_ - ring_pending_) % ring_cap_;
    ring_seq_ -= ring_pending_;
    ring_pending_ = 0;
  }
  while (!ring_batches_.empty()) WaitBatch(nullptr);
}

}  // namespace cellport::port
