#include "port/spe_interface.h"

#include "sim/machine.h"
#include "support/error.h"
#include "trace/trace.h"

namespace cellport::port {

SPEInterface::SPEInterface(const KernelModule& module, int spe_index) {
  thread_open(module, spe_index);
}

SPEInterface::~SPEInterface() {
  if (spuid_ != nullptr) {
    try {
      if (pending_) Wait();
      thread_close();
    } catch (...) {
      // Destructors must not throw; a shutdown failure here means the
      // machine is already being torn down.
    }
  }
}

int SPEInterface::thread_open(const KernelModule& module, int spe_index) {
  if (spuid_ != nullptr) {
    throw cellport::ConfigError("SPEInterface already owns an SPE thread");
  }
  module_ = &module;
  spuid_ = sim::spe_create_thread(
      module.program(), reinterpret_cast<std::uint64_t>(&module), spe_index);
  return 0;
}

int SPEInterface::thread_close(int cmnd) {
  if (spuid_ == nullptr) return 0;
  reclaim();
  sim::spe_write_in_mbox(spuid_, static_cast<std::uint64_t>(cmnd));
  int rc = sim::spe_wait(spuid_);
  spuid_ = nullptr;
  module_ = nullptr;
  return rc;
}

int SPEInterface::SendAndWait(int functionCall, std::uint64_t value) {
  Send(functionCall, value);
  return Wait();
}

int SPEInterface::Send(int functionCall, std::uint64_t value) {
  if (spuid_ == nullptr) {
    throw cellport::ConfigError("SPEInterface has no SPE thread");
  }
  if (stale_) reclaim();
  if (pending_) {
    throw cellport::ConfigError(
        "SPEInterface::Send while a call is in flight (the outbound "
        "mailbox is one entry deep); Wait() first");
  }
  sim::ScalarContext& ppe = spuid_->machine().ppe();
  if (ppe.trace_on()) {
    ppe.trace_track()->instant(
        trace::Category::kRuntime, "send:" + module_->name(), ppe.now_ns(),
        "opcode", static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(functionCall)));
  }
  // Listing 3: send command, then the wrapper-structure address.
  sim::spe_write_in_mbox(spuid_, static_cast<std::uint64_t>(
                                     static_cast<std::uint32_t>(functionCall)));
  sim::spe_write_in_mbox(spuid_, value);
  pending_ = true;
  return 0;
}

int SPEInterface::Wait(int timeout) {
  if (timeout >= 0) {
    // The timeout the paper's signature always promised: interpreted as
    // simulated milliseconds, enforced deterministically by WaitFor.
    int result = 0;
    if (!WaitFor(static_cast<sim::SimTime>(timeout) * 1e6, &result)) {
      throw cellport::TimeoutError(
          "SPE kernel '" + module_->name() + "' missed its deadline of " +
          std::to_string(timeout) + " ms (simulated)");
    }
    return result;
  }
  int result = 0;
  WaitFor(-1, &result);
  return result;
}

bool SPEInterface::WaitFor(sim::SimTime timeout_ns, int* result) {
  if (!pending_) {
    throw cellport::ConfigError("SPEInterface::Wait without a pending Send");
  }
  sim::ScalarContext& ppe = spuid_->machine().ppe();
  sim::SimTime wait_t0 = ppe.now_ns();
  const bool polling = module_->mode() == CompletionMode::kPolling;
  std::uint64_t retVal = 0;
  bool completed = true;
  if (timeout_ns < 0) {
    retVal = polling ? sim::spe_read_out_mbox(spuid_)
                     : sim::spe_read_out_intr_mbox(spuid_);
  } else {
    sim::SimTime deadline = wait_t0 + timeout_ns;
    completed = polling
                    ? sim::spe_out_mbox_read_before(spuid_, deadline, &retVal)
                    : sim::spe_out_intr_mbox_read_before(spuid_, deadline,
                                                         &retVal);
  }
  if (ppe.trace_on()) {
    ppe.trace_track()->complete(
        trace::Category::kRuntime,
        (completed ? "wait:" : "wait_timeout:") + module_->name(), wait_t0,
        ppe.now_ns());
  }
  pending_ = false;
  if (!completed) {
    stale_ = true;
    return false;
  }
  if (retVal == kKernelFault) {
    throw cellport::Error("SPE kernel '" + module_->name() +
                          "' faulted: " + module_->last_error());
  }
  *result = static_cast<int>(retVal);
  return true;
}

void SPEInterface::reclaim() {
  if (!stale_ || spuid_ == nullptr) return;
  sim::spe_discard_out_mbox(spuid_,
                            module_->mode() == CompletionMode::kInterrupt);
  stale_ = false;
}

}  // namespace cellport::port
