#include "port/amdahl.h"

#include <algorithm>

#include "support/error.h"

namespace cellport::port {

namespace {
constexpr double kCoverageEps = 1e-9;
}

void validate(std::span<const KernelPoint> kernels) {
  double total = 0.0;
  for (const auto& k : kernels) {
    if (k.coverage < 0.0 || k.coverage > 1.0) {
      throw cellport::ConfigError("kernel '" + k.name +
                                  "' coverage outside [0,1]");
    }
    if (k.speedup <= 0.0) {
      throw cellport::ConfigError("kernel '" + k.name +
                                  "' speed-up must be positive");
    }
    total += k.coverage;
  }
  if (total > 1.0 + kCoverageEps) {
    throw cellport::ConfigError(
        "kernel coverages sum to more than the whole application");
  }
}

double estimate_single(const KernelPoint& k) {
  validate({&k, 1});
  return 1.0 / ((1.0 - k.coverage) + k.coverage / k.speedup);
}

double estimate_sequential(std::span<const KernelPoint> kernels) {
  validate(kernels);
  double covered = 0.0;
  double accelerated = 0.0;
  for (const auto& k : kernels) {
    covered += k.coverage;
    accelerated += k.coverage / k.speedup;
  }
  return 1.0 / ((1.0 - covered) + accelerated);
}

double estimate_grouped(std::span<const std::vector<KernelPoint>> groups) {
  double covered = 0.0;
  double accelerated = 0.0;
  std::vector<KernelPoint> all;
  for (const auto& g : groups)
    all.insert(all.end(), g.begin(), g.end());
  validate(all);
  for (const auto& g : groups) {
    double group_max = 0.0;
    for (const auto& k : g) {
      covered += k.coverage;
      group_max = std::max(group_max, k.coverage / k.speedup);
    }
    accelerated += group_max;
  }
  return 1.0 / ((1.0 - covered) + accelerated);
}

double estimate_sharded(
    std::span<const std::vector<ShardedKernelPoint>> groups) {
  std::vector<KernelPoint> all;
  for (const auto& g : groups) {
    for (const auto& k : g) {
      if (k.shards < 1) {
        throw cellport::ConfigError("kernel '" + k.point.name +
                                    "' needs >= 1 shard");
      }
      if (k.shard_overhead < 0.0) {
        throw cellport::ConfigError("kernel '" + k.point.name +
                                    "' shard overhead must be >= 0");
      }
      all.push_back(k.point);
    }
  }
  validate(all);
  double covered = 0.0;
  double accelerated = 0.0;
  for (const auto& g : groups) {
    double group_max = 0.0;
    for (const auto& k : g) {
      covered += k.point.coverage;
      const double n = static_cast<double>(k.shards);
      const double term = (k.point.coverage / k.point.speedup) *
                          (1.0 + k.shard_overhead * (n - 1.0)) / n;
      group_max = std::max(group_max, term);
    }
    accelerated += group_max;
  }
  return 1.0 / ((1.0 - covered) + accelerated);
}

double optimization_gain(std::span<const KernelPoint> kernels,
                         std::size_t k, double new_speedup) {
  if (k >= kernels.size()) {
    throw cellport::ConfigError("kernel index out of range");
  }
  double before = estimate_sequential(kernels);
  std::vector<KernelPoint> modified(kernels.begin(), kernels.end());
  modified[k].speedup = new_speedup;
  double after = estimate_sequential(modified);
  return after - before;
}

}  // namespace cellport::port
