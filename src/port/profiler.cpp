#include "port/profiler.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace cellport::port {

std::size_t Profiler::node_index(const std::string& name) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  nodes_.push_back(Node{name, 0, 0, 0});
  return nodes_.size() - 1;
}

Profiler::Scope::Scope(Profiler& p, const std::string& name)
    : p_(p), idx_(p.node_index(name)), start_(p.ctx_.now_ns()) {
  p_.stack_.push_back(Active{idx_, 0});
  child_ns_at_start_ = 0;
  if (p_.ctx_.trace_on()) {
    p_.ctx_.trace_track()->begin(trace::Category::kProfiler, name, start_);
    traced_ = true;
  }
}

Profiler::Scope::~Scope() {
  sim::SimTime elapsed = p_.ctx_.now_ns() - start_;
  if (traced_) {
    p_.ctx_.trace_track()->end(start_ + elapsed);
  }
  sim::SimTime child_ns = p_.stack_.back().child_ns;
  p_.stack_.pop_back();

  Node& node = p_.nodes_[idx_];
  node.calls += 1;
  node.inclusive_ns += elapsed;
  node.exclusive_ns += elapsed - child_ns;

  std::size_t parent =
      p_.stack_.empty() ? static_cast<std::size_t>(-1)
                        : p_.stack_.back().idx;
  EdgeData& edge = p_.edges_[{parent, idx_}];
  edge.calls += 1;
  edge.ns += elapsed;

  if (p_.stack_.empty()) {
    p_.total_ns_ += elapsed;
  } else {
    p_.stack_.back().child_ns += elapsed;
  }
}

std::vector<Profiler::Record> Profiler::report() const {
  std::vector<Record> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    Record r;
    r.name = n.name;
    r.calls = n.calls;
    r.inclusive_ns = n.inclusive_ns;
    r.exclusive_ns = n.exclusive_ns;
    r.coverage = total_ns_ > 0 ? n.exclusive_ns / total_ns_ : 0.0;
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
    return a.exclusive_ns > b.exclusive_ns;
  });
  return out;
}

double Profiler::coverage(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (n.name == name) {
      return total_ns_ > 0 ? n.exclusive_ns / total_ns_ : 0.0;
    }
  }
  return 0.0;
}

std::vector<Profiler::Record> Profiler::top_hotspots(std::size_t n) const {
  auto all = report();
  if (all.size() > n) all.resize(n);
  return all;
}

std::vector<Profiler::Edge> Profiler::edges() const {
  std::vector<Edge> out;
  out.reserve(edges_.size());
  for (const auto& [key, data] : edges_) {
    Edge e;
    e.parent = key.first == static_cast<std::size_t>(-1)
                   ? "<root>"
                   : nodes_[key.first].name;
    e.child = nodes_[key.second].name;
    e.calls = data.calls;
    e.ns = data.ns;
    out.push_back(std::move(e));
  }
  return out;
}

std::string Profiler::dot() const {
  std::ostringstream os;
  os << "digraph callgraph {\n  rankdir=LR;\n  node [shape=box];\n";
  for (const auto& n : nodes_) {
    double cov = total_ns_ > 0 ? 100.0 * n.exclusive_ns / total_ns_ : 0.0;
    os << "  \"" << n.name << "\" [label=\"" << n.name << "\\n"
       << n.calls << " calls, " << std::fixed << std::setprecision(1)
       << cov << "%\"];\n";
  }
  for (const auto& [key, data] : edges_) {
    if (key.first == static_cast<std::size_t>(-1)) continue;
    os << "  \"" << nodes_[key.first].name << "\" -> \""
       << nodes_[key.second].name << "\" [label=\"" << data.calls
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

void Profiler::reset() {
  nodes_.clear();
  stack_.clear();
  edges_.clear();
  total_ns_ = 0;
}

}  // namespace cellport::port
