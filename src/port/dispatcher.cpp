#include "port/dispatcher.h"

#include <cstdio>

#include "sim/spe_context.h"
#include "sim/spu_mfcio.h"
#include "support/error.h"
#include "trace/trace.h"

namespace cellport::port {

KernelModule::KernelModule(std::string name, std::size_t code_bytes,
                           CompletionMode mode)
    : name_(std::move(name)), mode_(mode) {
  program_.name = name_;
  program_.code_bytes = code_bytes;
  program_.entry = &KernelModule::dispatch_main;
}

KernelModule& KernelModule::add_function(std::uint32_t opcode, Fn fn) {
  if (opcode < SPU_RUN_BASE) {
    throw cellport::ConfigError("opcode " + std::to_string(opcode) +
                                " is reserved");
  }
  if (fn == nullptr) throw cellport::ConfigError("null kernel function");
  if (!functions_.emplace(opcode, fn).second) {
    throw cellport::ConfigError("duplicate opcode " +
                                std::to_string(opcode) + " in module '" +
                                name_ + "'");
  }
  return *this;
}

int KernelModule::invoke(std::uint32_t opcode, std::uint64_t ea) const {
  auto it = functions_.find(opcode);
  if (it == functions_.end()) {
    throw cellport::ConfigError("unknown opcode " + std::to_string(opcode) +
                                " in module '" + name_ + "'");
  }
  return it->second(ea);
}

std::string KernelModule::last_error() const {
  std::lock_guard lock(err_mu_);
  return last_error_;
}

void KernelModule::note_error(const std::string& msg) {
  std::lock_guard lock(err_mu_);
  last_error_ = msg;
}

// The generated SPE main(): the paper's Listing 1. `argv` carries the
// owning KernelModule (on hardware the function table is baked into the
// SPE ELF image; the simulator passes it through the program argument).
int KernelModule::dispatch_main(std::uint64_t /*spe_id*/,
                                std::uint64_t argv) {
  auto* self = reinterpret_cast<KernelModule*>(argv);
  sim::SpeContext* ctx = sim::current_spe();
  for (;;) {
    auto opcode = static_cast<std::uint32_t>(sim::spu_read_in_mbox());
    if (opcode == SPU_EXIT) return 0;

    std::uint64_t addr_in = sim::spu_read_in_mbox();
    // Kernel span boundaries reuse flush points the untraced dispatch
    // loop already has (no pipeline charges accumulate between the
    // mailbox read above and here, nor between the kernel's last charge
    // and the completion write below), so recording cannot regroup
    // dual-issue accounting.
    const bool traced = ctx != nullptr && ctx->trace_on();
    sim::SimTime kernel_t0 = traced ? ctx->now_ns() : 0;
    std::uint64_t result;
    auto it = self->functions_.find(opcode);
    if (it == self->functions_.end()) {
      self->note_error("unknown opcode " + std::to_string(opcode));
      result = kKernelFault;
    } else {
      // Fresh LS working area per invocation.
      sim::spu_ls_reset();
      try {
        result = static_cast<std::uint32_t>(it->second(addr_in));
      } catch (const cellport::Error& e) {
        self->note_error(e.what());
        std::fprintf(stderr, "[%s] kernel fault: %s\n",
                     self->name_.c_str(), e.what());
        result = kKernelFault;
      }
    }

    if (traced) {
      const sim::SpeContext::TraceHooks& hooks = ctx->trace_hooks();
      hooks.track->complete(trace::Category::kKernel, self->name_, kernel_t0,
                            ctx->now_ns(), "opcode", opcode);
      if (hooks.kernel_invocations != nullptr) {
        hooks.kernel_invocations->add(1);
      }
    }

    if (self->mode_ == CompletionMode::kPolling) {
      sim::spu_write_out_mbox(result);
    } else {
      sim::spu_write_out_intr_mbox(result);
    }
  }
}

}  // namespace cellport::port
