#include "port/dispatcher.h"

#include <algorithm>
#include <cstdio>

#include "port/ring.h"
#include "sim/spe_context.h"
#include "sim/spu_mfcio.h"
#include "support/error.h"
#include "trace/trace.h"

namespace cellport::port {

KernelModule::KernelModule(std::string name, std::size_t code_bytes,
                           CompletionMode mode)
    : name_(std::move(name)), mode_(mode) {
  program_.name = name_;
  program_.code_bytes = code_bytes;
  program_.entry = &KernelModule::dispatch_main;
}

KernelModule& KernelModule::add_function(std::uint32_t opcode, Fn fn) {
  if (opcode < SPU_RUN_BASE) {
    throw cellport::ConfigError("opcode " + std::to_string(opcode) +
                                " is reserved");
  }
  if (fn == nullptr) throw cellport::ConfigError("null kernel function");
  if (!functions_.emplace(opcode, fn).second) {
    throw cellport::ConfigError("duplicate opcode " +
                                std::to_string(opcode) + " in module '" +
                                name_ + "'");
  }
  return *this;
}

int KernelModule::invoke(std::uint32_t opcode, std::uint64_t ea) const {
  auto it = functions_.find(opcode);
  if (it == functions_.end()) {
    throw cellport::ConfigError("unknown opcode " + std::to_string(opcode) +
                                " in module '" + name_ + "'");
  }
  return it->second(ea);
}

std::string KernelModule::last_error() const {
  std::lock_guard lock(err_mu_);
  return last_error_;
}

void KernelModule::note_error(const std::string& msg) {
  std::lock_guard lock(err_mu_);
  last_error_ = msg;
}

namespace {

/// Dispatcher-resident command-ring state (cellstream). The LS staging
/// buffers are allocated once at arm time and retained, so the per-call
/// spu_ls_reset() keeps them across kernel invocations.
struct RingState {
  ring::RingDescriptor desc;
  ring::RingCommand* cmds = nullptr;        // LS staging of the commands
  ring::RingSlotResult* results = nullptr;  // LS staging of the results
  std::uint32_t tail = 0;                   // next slot to drain
  bool armed = false;
};

}  // namespace

// The generated SPE main(): the paper's Listing 1 plus the cellstream
// command-ring drain. `argv` carries the owning KernelModule (on hardware
// the function table is baked into the SPE ELF image; the simulator
// passes it through the program argument).
int KernelModule::dispatch_main(std::uint64_t /*spe_id*/,
                                std::uint64_t argv) {
  auto* self = reinterpret_cast<KernelModule*>(argv);
  sim::SpeContext* ctx = sim::current_spe();

  // One kernel invocation, shared by the legacy per-call path and the
  // ring drain: fresh LS working area, fault-to-result-word conversion,
  // and the traced kernel span. Span boundaries reuse flush points the
  // untraced loop already has (no pipeline charges accumulate between the
  // preceding channel read and here, nor between the kernel's last charge
  // and the following channel write), so recording cannot regroup
  // dual-issue accounting.
  auto run_one = [self, ctx](std::uint32_t opcode,
                             std::uint64_t addr_in) -> std::uint64_t {
    const bool traced = ctx != nullptr && ctx->trace_on();
    sim::SimTime kernel_t0 = traced ? ctx->now_ns() : 0;
    std::uint64_t result;
    auto it = self->functions_.find(opcode);
    if (it == self->functions_.end()) {
      self->note_error("unknown opcode " + std::to_string(opcode));
      result = kKernelFault;
    } else {
      // Fresh LS working area per invocation (ring staging survives via
      // the retained floor).
      sim::spu_ls_reset();
      try {
        result = static_cast<std::uint32_t>(it->second(addr_in));
      } catch (const cellport::Error& e) {
        self->note_error(e.what());
        std::fprintf(stderr, "[%s] kernel fault: %s\n",
                     self->name_.c_str(), e.what());
        result = kKernelFault;
      }
    }
    if (traced) {
      const sim::SpeContext::TraceHooks& hooks = ctx->trace_hooks();
      hooks.track->complete(trace::Category::kKernel, self->name_, kernel_t0,
                            ctx->now_ns(), "opcode", opcode);
      if (hooks.kernel_invocations != nullptr) {
        hooks.kernel_invocations->add(1);
      }
    }
    return result;
  };

  RingState ring;
  for (;;) {
    std::uint64_t word = sim::spu_read_in_mbox();
    auto control = static_cast<std::uint32_t>(word >> 32);

    if (control == ring::kRingArmWord) {
      // One-time ring setup: fetch the descriptor, then reserve
      // dispatcher-resident staging for a full batch of commands and
      // results. Retained so per-invocation LS resets keep it.
      std::uint64_t desc_ea = sim::spu_read_in_mbox();
      try {
        // The last legacy invocation's scratch is still above the floor
        // (nothing resets after a kernel returns); drop it before the
        // staging allocations so retain() does not pin dead scratch for
        // the rest of the SPE's life. Reachable when a guarded engine
        // retries over the legacy path and then re-arms a ring on the
        // recovered SPE.
        sim::spu_ls_reset();
        auto* d = static_cast<ring::RingDescriptor*>(
            sim::spu_ls_alloc(sizeof(ring::RingDescriptor)));
        sim::mfc_get(d, desc_ea, sizeof(ring::RingDescriptor),
                     ring::kStageTag);
        sim::mfc_write_tag_mask(1u << ring::kStageTag);
        sim::mfc_read_tag_status_all();
        ring.desc = *d;
        ring.cmds =
            sim::spu_ls_alloc_array<ring::RingCommand>(ring.desc.capacity);
        ring.results = sim::spu_ls_alloc_array<ring::RingSlotResult>(
            ring.desc.capacity);
        for (std::uint32_t i = 0; i < ring.desc.capacity; ++i) {
          ring.results[i] = ring::RingSlotResult{};
        }
        sim::spu_ls_retain();
        ring.tail = 0;
        ring.armed = true;
      } catch (const cellport::Error& e) {
        // A faulted arm (e.g. an injected DMA error on the descriptor
        // fetch) leaves the ring unarmed; later doorbells answer with
        // everything-faulted completions, which the PPE resolves per
        // request.
        self->note_error(e.what());
        std::fprintf(stderr, "[%s] ring arm fault: %s\n",
                     self->name_.c_str(), e.what());
        ring.armed = false;
      }
      continue;
    }

    if (control == ring::kRingDoorbellWord) {
      auto count = static_cast<std::uint32_t>(word);
      if (!ring.armed || count == 0 || count > ring.desc.capacity) {
        self->note_error("ring doorbell without a valid armed ring");
        std::uint64_t done = (static_cast<std::uint64_t>(count) << 32) |
                             count;  // everything faulted
        if (self->mode_ == CompletionMode::kPolling) {
          sim::spu_write_out_mbox(done);
        } else {
          sim::spu_write_out_intr_mbox(done);
        }
        continue;
      }
      const std::uint32_t cap = ring.desc.capacity;
      const std::uint32_t first = std::min(count, cap - ring.tail);

      // Fetch the command batch: at most two gets when the batch wraps.
      bool fetched = false;
      try {
        sim::mfc_get(ring.cmds + ring.tail,
                     ring.desc.slots_ea +
                         ring.tail * sizeof(ring::RingCommand),
                     first * sizeof(ring::RingCommand), ring::kStageTag);
        if (count > first) {
          sim::mfc_get(ring.cmds, ring.desc.slots_ea,
                       (count - first) * sizeof(ring::RingCommand),
                       ring::kStageTag);
        }
        sim::mfc_write_tag_mask(1u << ring::kStageTag);
        sim::mfc_read_tag_status_all();
        fetched = true;
      } catch (const cellport::Error& e) {
        self->note_error(e.what());
        std::fprintf(stderr, "[%s] ring fetch fault: %s\n",
                     self->name_.c_str(), e.what());
      }

      if (ctx != nullptr && ctx->trace_on() &&
          ctx->trace_hooks().ring_depth != nullptr) {
        ctx->trace_hooks().ring_depth->record(count);
      }

      std::uint32_t faults = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t idx = (ring.tail + i) % cap;
        std::uint64_t r;
        std::uint32_t seq;
        if (fetched) {
          const ring::RingCommand& c = ring.cmds[idx];
          seq = c.seq;
          // Defer this request's output DMA onto the fence tag so it
          // overlaps the next request's input DMA; the tag is fenced
          // once below, after the whole batch ran.
          if (ctx != nullptr) {
            ctx->set_defer_out_tag(static_cast<int>(ring::kDeferTag));
          }
          r = run_one(c.opcode, c.ea);
          if (ctx != nullptr) ctx->set_defer_out_tag(-1);
        } else {
          seq = 0;  // unknown: a stale seq reads as a fault on the PPE
          r = kKernelFault;
        }
        if (r == kKernelFault) ++faults;
        ring.results[idx].value = static_cast<std::uint32_t>(r);
        ring.results[idx].seq = seq;
      }

      // One fence for every deferred output DMA of the batch.
      sim::mfc_write_tag_mask(1u << ring::kDeferTag);
      sim::mfc_read_tag_status_all();

      // Publish the result slots (again at most two puts on wrap). A DMA
      // fault here leaves stale seqs behind, which the PPE counts as
      // per-request faults.
      try {
        sim::mfc_put(ring.results + ring.tail,
                     ring.desc.results_ea +
                         ring.tail * sizeof(ring::RingSlotResult),
                     first * sizeof(ring::RingSlotResult), ring::kStageTag);
        if (count > first) {
          sim::mfc_put(ring.results, ring.desc.results_ea,
                       (count - first) * sizeof(ring::RingSlotResult),
                       ring::kStageTag);
        }
        sim::mfc_write_tag_mask(1u << ring::kStageTag);
        sim::mfc_read_tag_status_all();
      } catch (const cellport::Error& e) {
        self->note_error(e.what());
        std::fprintf(stderr, "[%s] ring publish fault: %s\n",
                     self->name_.c_str(), e.what());
        faults = count;
      }

      std::uint64_t done =
          (static_cast<std::uint64_t>(count) << 32) | faults;
      if (self->mode_ == CompletionMode::kPolling) {
        sim::spu_write_out_mbox(done);
      } else {
        sim::spu_write_out_intr_mbox(done);
      }
      ring.tail = (ring.tail + count) % cap;
      continue;
    }

    auto opcode = static_cast<std::uint32_t>(word);
    if (opcode == SPU_EXIT) return 0;

    std::uint64_t addr_in = sim::spu_read_in_mbox();
    std::uint64_t result = run_one(opcode, addr_in);

    if (self->mode_ == CompletionMode::kPolling) {
      sim::spu_write_out_mbox(result);
    } else {
      sim::spu_write_out_intr_mbox(result);
    }
  }
}

}  // namespace cellport::port
