// A dynamic task-scheduling runtime on top of the porting framework.
//
// The paper's strategy schedules kernels statically (one resident kernel
// per SPE) and names dynamic approaches — CellSs, MPI microtasks — as the
// "more sophisticated techniques" it is a starting point for (Sections 1
// and 6). TaskPool is that next step: the PPE submits tasks (kernel
// function + wrapper address + dependences), worker SPEs pull whatever is
// ready, and any worker can run any kernel at the cost of a *code
// switch* — re-loading the kernel image into the local store — which is
// exactly the overhead the paper's scenario 1 avoids by pinning kernels
// ("it avoids the dynamic code switching"). bench_dynamic quantifies that
// trade-off.
//
// Completion events reach the PPE through the libspe event-queue
// facility (the interrupting-mailbox path of Listing 1, aggregated
// across workers), carrying SPE timestamps so simulated time stays
// deterministic.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "guard/policy.h"
#include "port/dispatcher.h"
#include "sim/machine.h"

namespace cellport::port {

class TaskPool {
 public:
  using TaskId = std::size_t;

  /// Spawns `num_workers` generic worker SPEs on `machine`.
  TaskPool(sim::Machine& machine, int num_workers);
  /// Shuts the workers down (drains outstanding tasks first).
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Submits a task: run `module`'s function `opcode` on the wrapper at
  /// `ea` once every task in `deps` has completed. Returns its id.
  TaskId submit(const KernelModule& module, std::uint32_t opcode,
                std::uint64_t ea, std::vector<TaskId> deps = {});

  /// cellstream: dispatch up to `n` ready tasks per worker with ONE
  /// doorbell mailbox word instead of four mailbox writes per task — the
  /// PPE stores task descriptors into a per-worker command block that the
  /// worker DMA-fetches. With `n > 1` dispatch is deferred to wait_all()
  /// so the accumulated ready-set goes out in full batches. `n == 1`
  /// (the default) keeps the legacy per-task mailbox protocol
  /// bit-identical. `n` is capped at 512 (one maximal MFC transfer of
  /// descriptors); must be called while no task is outstanding.
  void set_dispatch_batch(int n);
  int dispatch_batch() const { return dispatch_batch_; }

  /// Blocks until every submitted task has completed. The PPE clock
  /// advances to the time the last completion event was delivered.
  void wait_all();

  /// Enables cellguard supervision: a faulted or deadline-missing task is
  /// re-dispatched (with exponential backoff) to a different worker; a
  /// worker with `quarantine_after` consecutive faults is restarted once,
  /// then quarantined. With every worker quarantined, remaining tasks are
  /// marked failed instead of deadlocking. Without a policy the legacy
  /// fault-surfacing behavior is unchanged.
  void set_retry_policy(const guard::RetryPolicy& policy);

  /// Exception-free drain + worker teardown (the destructor's path,
  /// callable early). Safe with hung or quarantined workers: timeouts
  /// fail the affected tasks rather than blocking forever.
  void shutdown();

  struct Stats {
    std::size_t tasks_run = 0;
    /// Worker invocations whose kernel image differed from the one
    /// resident in its local store (each pays a code-reload DMA).
    std::size_t code_switches = 0;
    /// Tasks whose kernel threw; their dependents still ran (a failed
    /// task satisfies its dependences, mirroring a hardware SPE that
    /// signals completion with an error status word).
    std::size_t faults = 0;
    /// Simulated time from construction to the last completion.
    sim::SimTime makespan_ns = 0;
    /// Per-worker simulated busy time.
    std::vector<sim::SimTime> worker_busy_ns;
    // ---- cellguard (all zero without a retry policy) ----
    /// Re-dispatches after a fault or missed deadline.
    std::size_t retries = 0;
    /// Completions that missed the policy deadline (includes hangs).
    std::size_t timeouts = 0;
    /// Workers restarted after hitting the quarantine threshold once.
    std::size_t restarts = 0;
    /// Workers permanently quarantined.
    std::size_t quarantined_workers = 0;
  };
  Stats stats();

  /// True once `id` completed with a kernel fault. Valid after wait_all()
  /// (or any point after the completion event was consumed).
  bool task_failed(TaskId id) const;
  /// The fault message for a failed task; empty for a clean one.
  const std::string& task_error(TaskId id) const;

  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  struct TaskRecord {
    const KernelModule* module = nullptr;
    std::uint32_t opcode = 0;
    std::uint64_t ea = 0;
    std::vector<TaskId> dependents;
    int unmet_deps = 0;
    bool done = false;
    bool failed = false;
    std::string error;
    // cellguard bookkeeping
    int attempts = 0;
    int exclude_worker = -1;       // last worker that faulted on this task
    sim::SimTime dispatch_ns = 0;  // PPE time of the latest dispatch
  };

  struct CompletionEvent {
    int worker = 0;
    TaskId task = 0;
    sim::SimTime ts = 0;
    bool code_switched = false;
    bool failed = false;
    std::string error;
  };

  // SPE-side worker program.
  static int worker_main(std::uint64_t spe_id, std::uint64_t argv);
  // Called from worker threads (the event-queue write).
  void post_completion(const CompletionEvent& ev);
  CompletionEvent wait_event();

  // PPE-side dispatch (machine().ppe() charges apply).
  void dispatch(int worker, TaskId task);
  /// Batched dispatch: stores the tasks into `worker`'s command block and
  /// rings one doorbell.
  void dispatch_block(int worker, const std::vector<TaskId>& batch);
  void pump_ready_tasks();
  /// Idle, non-quarantined worker for a task excluding `exclude` (used
  /// only when no other healthy worker exists at all); -1 when none.
  int pick_worker(int exclude) const;
  bool has_eligible_worker() const;
  void note_worker_fault(int worker);
  void restart_worker(int worker);
  /// Marks every not-yet-done task failed (all workers quarantined).
  void fail_remaining(const std::string& reason);

  sim::Machine& machine_;
  std::vector<sim::SpeThread*> workers_;
  std::vector<bool> worker_idle_;
  std::vector<std::size_t> worker_outstanding_;  // dispatched, not completed
  std::vector<void*> envs_;  // WorkerEnv*, freed after the workers join
  int dispatch_batch_ = 1;

  guard::RetryPolicy policy_;
  bool policy_set_ = false;
  bool shut_down_ = false;
  std::vector<int> consecutive_faults_;
  std::vector<bool> worker_restarted_;
  std::vector<bool> worker_quarantined_;

  std::vector<TaskRecord> tasks_;
  std::deque<TaskId> ready_;
  std::size_t outstanding_ = 0;  // dispatched but not completed
  std::size_t incomplete_ = 0;   // submitted but not completed

  std::mutex ev_mu_;
  std::condition_variable ev_cv_;
  std::deque<CompletionEvent> events_;

  Stats stats_;
  sim::SimTime start_ns_ = 0;
};

}  // namespace cellport::port
