// cellstream: the batched command-ring protocol shared by the PPE stub
// (SPEInterface) and the SPE-side dispatcher (KernelModule).
//
// The paper's Listing 3 pays one mailbox round trip per kernel call. The
// ring amortizes that: the PPE writes N RingCommand slots into a
// main-memory ring and rings a single doorbell mailbox word; the SPE
// DMA-fetches the batch of commands into its local store, runs them
// back-to-back (each request's output DMA deferred onto a fence tag so it
// overlaps the next request's input DMA), DMA-puts one RingSlotResult per
// command, and posts ONE aggregated completion word. Per-call cost drops
// from two PPE MMIO mailbox writes + one completion read to
// (2 stores + 1/N doorbell writes + 1/N completion reads).
//
// Wire format (the high 32 bits of the first mailbox word distinguish
// ring control words from legacy opcodes — legacy opcodes are 32-bit
// values sent zero-extended, so their high word is always zero):
//
//   arm:       [kRingArmWord<<32]          [descriptor effective address]
//   doorbell:  [kRingDoorbellWord<<32 | count of new commands]
//   completion (SPE -> PPE): [count<<32 | faulted-request count]
//
// Per-request success/failure is carried by the RingSlotResult array (a
// kKernelFault value, or a stale seq when the SPE could not publish
// results at all); the aggregated fault count is advisory.
#pragma once

#include <cstdint>

namespace cellport::port::ring {

/// High-32-bit control tags of the first mailbox word ("RING" / "BELL").
inline constexpr std::uint32_t kRingArmWord = 0x52494E47u;
inline constexpr std::uint32_t kRingDoorbellWord = 0x42454C4Cu;

/// Most commands a ring may hold (keeps the command batch a single
/// <=16 KiB DMA-legal transfer per wrap segment).
inline constexpr std::uint32_t kMaxRingCapacity = 1024;

/// MFC tag the dispatcher stages ring commands/results on.
inline constexpr unsigned kStageTag = 13;
/// MFC tag deferred kernel-output DMAs ride on; fenced once per batch.
inline constexpr unsigned kDeferTag = 14;

/// One queued kernel call (a slot of the main-memory command ring).
struct alignas(16) RingCommand {
  std::uint32_t opcode = 0;
  std::uint32_t seq = 0;   // monotone per interface; echoed in the result
  std::uint64_t ea = 0;    // wrapper-structure effective address
};
static_assert(sizeof(RingCommand) == 16, "ring slots are one quadword");

/// One completed kernel call (a slot of the main-memory result ring).
struct alignas(16) RingSlotResult {
  std::uint32_t value = 0;  // kernel status word (kKernelFault on throw)
  std::uint32_t seq = 0;    // echo of RingCommand::seq
  std::uint64_t pad_ = 0;
};
static_assert(sizeof(RingSlotResult) == 16,
              "ring result slots are one quadword");

/// The one-time arm payload: where the rings live and how big they are.
/// DMA-fetched by the SPE when it receives kRingArmWord.
struct alignas(16) RingDescriptor {
  std::uint64_t slots_ea = 0;    // RingCommand[capacity]
  std::uint64_t results_ea = 0;  // RingSlotResult[capacity]
  std::uint32_t capacity = 0;
  std::uint32_t pad_[3] = {};
};
static_assert(sizeof(RingDescriptor) == 32,
              "descriptor must stay DMA-legal (16-byte multiple)");

}  // namespace cellport::port::ring
