// Data-wrapper helpers for the PPE-SPE interface (Section 3.3).
//
// The strategy requires all member data a kernel needs to be wrapped into
// one aligned POD structure whose address travels through the mailbox; the
// kernel DMAs the wrapper first and then the "real" data it points to.
// WrappedMessage<T> owns such a structure with DMA-legal alignment, and
// OutputBuffer<T> allocates the kernel's result area (the paper includes
// output buffers in the wrapper for simplicity).
#pragma once

#include <cstdint>
#include <type_traits>

#include "support/aligned.h"

namespace cellport::port {

/// Owns a 128-byte-aligned instance of the wrapper struct T.
/// T must be trivially copyable (it crosses the DMA boundary) and its
/// size is padded to a multiple of 16 bytes so the whole struct is a
/// legal DMA transfer.
template <typename T>
class WrappedMessage {
  static_assert(std::is_trivially_copyable_v<T>,
                "DMA wrapper structs must be trivially copyable");

 public:
  WrappedMessage() : storage_(padded_size(), 7) {
    new (storage_.data()) T{};
  }

  T* operator->() { return ptr(); }
  const T* operator->() const { return ptr(); }
  T& operator*() { return *ptr(); }
  const T& operator*() const { return *ptr(); }

  /// Effective address to send through the mailbox.
  std::uint64_t ea() const {
    return reinterpret_cast<std::uint64_t>(storage_.data());
  }

  /// DMA-legal transfer size of the wrapper (sizeof(T) rounded up to 16).
  static constexpr std::uint32_t dma_size() {
    return static_cast<std::uint32_t>(cellport::round_up(sizeof(T), 16));
  }

 private:
  static constexpr std::size_t padded_size() {
    return cellport::round_up(sizeof(T), 16);
  }
  T* ptr() { return reinterpret_cast<T*>(storage_.data()); }
  const T* ptr() const { return reinterpret_cast<const T*>(storage_.data()); }

  cellport::AlignedBuffer<std::uint8_t> storage_;
};

/// An aligned output area the kernel DMA-puts results into; the PPE copies
/// them back into class members after Wait() (Section 3.3's last step).
template <typename T>
using OutputBuffer = cellport::AlignedBuffer<T>;

/// Rounds an element count up so the byte size is a multiple of 16
/// (needed when sizing DMA-able arrays of small elements).
template <typename T>
constexpr std::size_t dma_count(std::size_t count) {
  return cellport::round_up(count * sizeof(T), 16) / sizeof(T);
}

}  // namespace cellport::port
