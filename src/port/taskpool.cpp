#include "port/taskpool.h"

#include <utility>

#include "port/ring.h"
#include "sim/calibration.h"
#include "sim/libspe.h"
#include "sim/spu_mfcio.h"
#include "support/aligned.h"
#include "support/error.h"

namespace cellport::port {

namespace {

/// Worker mailbox protocol: a zero word exits; a word whose high half is
/// ring::kRingDoorbellWord carries a batched-dispatch count in its low
/// half (the descriptors sit in the worker's command block); otherwise
/// the word is task_id + 1 followed by {module pointer, opcode, wrapper
/// ea}.
constexpr std::uint64_t kExitWord = 0;

/// One batched-dispatch descriptor: what the four legacy mailbox words
/// carried, DMA-legal (32 bytes, 16-byte aligned).
struct alignas(16) TaskCmd {
  std::uint64_t task_plus1 = 0;
  std::uint64_t module = 0;
  std::uint64_t ea = 0;
  std::uint32_t opcode = 0;
  std::uint32_t pad_ = 0;
};
static_assert(sizeof(TaskCmd) == 32, "TaskCmd must stay DMA-legal");

/// Arguments handed to each worker thread through argv.
struct WorkerEnv {
  TaskPool* pool = nullptr;
  int worker_index = 0;
  /// Batched-dispatch command block (empty with the legacy protocol).
  cellport::AlignedBuffer<TaskCmd> block;
};

}  // namespace

int TaskPool::worker_main(std::uint64_t /*spe_id*/, std::uint64_t argv) {
  auto* env = reinterpret_cast<WorkerEnv*>(argv);
  sim::SpeContext* ctx = sim::current_spe();
  const KernelModule* resident = nullptr;
  TaskCmd* staging = nullptr;  // LS copy of the command block, retained

  auto run_task = [&](TaskId task, const KernelModule* module,
                      std::uint32_t opcode, std::uint64_t ea) {
    bool switched = module != resident;
    if (switched) {
      // Code switch: stream the kernel image into the local store and
      // re-enter it. (Functionally our kernels are host functions; the
      // cost is what hardware would pay.)
      double bytes = static_cast<double>(module->program().code_bytes);
      ctx->advance_ns(bytes / sim::calib::kDmaBandwidthBytesPerNs +
                      sim::calib::kDmaLatencyNs +
                      sim::calib::kCodeSwitchOverheadNs);
      resident = module;
    }

    sim::spu_ls_reset();
    CompletionEvent ev;
    try {
      module->invoke(opcode, ea);
    } catch (const cellport::Error& e) {
      // Surface the fault to the PPE in the completion event rather than
      // swallowing it: the scheduler records it, stats count it, and the
      // submitter can query task_failed()/task_error() after wait_all().
      ev.failed = true;
      ev.error = e.what();
    }
    ev.worker = env->worker_index;
    ev.task = task;
    ev.code_switched = switched;
    ctx->advance_ns(sim::calib::kSpuChannelCostNs);
    // completion_ts applies any injected hang schedule: the event still
    // arrives functionally (so the host never blocks on a hung worker)
    // but its delivery timestamp becomes kNeverNs.
    ev.ts = ctx->completion_ts(ctx->now_ns() + sim::calib::kMailboxLatencyNs);
    env->pool->post_completion(ev);
  };

  for (;;) {
    std::uint64_t tag = sim::spu_read_in_mbox();
    if (tag == kExitWord) return 0;

    if ((tag >> 32) == ring::kRingDoorbellWord) {
      // Batched dispatch: one doorbell covers `count` descriptors in the
      // worker's command block. Fetch them in one DMA, then run each task
      // exactly as the legacy path would — each still posts its own
      // completion event, so retry/quarantine bookkeeping is unchanged.
      auto count = static_cast<std::uint32_t>(tag);
      if (staging == nullptr) {
        // Drop any leftover scratch from tasks run over the legacy path
        // before retaining the staging block, or the retain would pin
        // that dead scratch below the floor permanently.
        sim::spu_ls_reset();
        staging = sim::spu_ls_alloc_array<TaskCmd>(env->block.size());
        sim::spu_ls_retain();
      }
      bool fetched = false;
      std::string fetch_error;
      try {
        sim::mfc_get(staging,
                     reinterpret_cast<std::uint64_t>(env->block.data()),
                     count * static_cast<std::uint32_t>(sizeof(TaskCmd)),
                     ring::kStageTag);
        sim::mfc_write_tag_mask(1u << ring::kStageTag);
        sim::mfc_read_tag_status_all();
        fetched = true;
      } catch (const cellport::Error& e) {
        fetch_error = e.what();
        std::fprintf(stderr, "[taskpool] staging fetch fault: %s\n",
                     e.what());
      }
      for (std::uint32_t i = 0; i < count; ++i) {
        // On a faulted staging fetch the task IDs are recovered from the
        // host-visible command block (byte-identical to what the DMA
        // would have staged) so each task can post a *failed* completion
        // and flow through the scheduler's normal retry machinery.
        const TaskCmd& cmd = fetched ? staging[i] : env->block[i];
        if (fetched) {
          run_task(static_cast<TaskId>(cmd.task_plus1 - 1),
                   reinterpret_cast<const KernelModule*>(cmd.module),
                   cmd.opcode, cmd.ea);
        } else {
          CompletionEvent ev;
          ev.failed = true;
          ev.error = "batch staging fetch failed: " + fetch_error;
          ev.worker = env->worker_index;
          ev.task = static_cast<TaskId>(cmd.task_plus1 - 1);
          ctx->advance_ns(sim::calib::kSpuChannelCostNs);
          ev.ts = ctx->completion_ts(ctx->now_ns() +
                                     sim::calib::kMailboxLatencyNs);
          env->pool->post_completion(ev);
        }
      }
      continue;
    }

    TaskId task = static_cast<TaskId>(tag - 1);
    auto* module =
        reinterpret_cast<const KernelModule*>(sim::spu_read_in_mbox());
    auto opcode = static_cast<std::uint32_t>(sim::spu_read_in_mbox());
    std::uint64_t ea = sim::spu_read_in_mbox();
    run_task(task, module, opcode, ea);
  }
}

TaskPool::TaskPool(sim::Machine& machine, int num_workers)
    : machine_(machine) {
  if (num_workers < 1 || num_workers > machine.num_spes()) {
    throw cellport::ConfigError("TaskPool needs 1.." +
                                std::to_string(machine.num_spes()) +
                                " workers");
  }
  start_ns_ = machine_.ppe().now_ns();
  // Worker envs must outlive the threads; keep them on the heap keyed by
  // worker index (freed in the destructor after join).
  for (int w = 0; w < num_workers; ++w) {
    auto* env = new WorkerEnv;
    env->pool = this;
    env->worker_index = w;
    sim::SpeProgram prog{"taskpool_worker", 4 * 1024,
                         &TaskPool::worker_main};
    workers_.push_back(machine_.spawn(
        prog, reinterpret_cast<std::uint64_t>(env)));
    worker_idle_.push_back(true);
    worker_outstanding_.push_back(0);
    envs_.push_back(env);
  }
  stats_.worker_busy_ns.assign(static_cast<std::size_t>(num_workers), 0);
  consecutive_faults_.assign(static_cast<std::size_t>(num_workers), 0);
  worker_restarted_.assign(static_cast<std::size_t>(num_workers), false);
  worker_quarantined_.assign(static_cast<std::size_t>(num_workers), false);
}

TaskPool::~TaskPool() { shutdown(); }

void TaskPool::set_retry_policy(const guard::RetryPolicy& policy) {
  policy_ = policy;
  policy_set_ = true;
}

void TaskPool::set_dispatch_batch(int n) {
  // 512 descriptors fill one maximal (16 KiB) MFC transfer; a larger
  // batch would gain nothing and break the single-DMA fetch.
  if (n < 1 || n > 512) {
    throw cellport::ConfigError("dispatch batch must be 1..512");
  }
  if (outstanding_ != 0) {
    throw cellport::ConfigError(
        "set_dispatch_batch with tasks outstanding");
  }
  dispatch_batch_ = n;
  if (n > 1) {
    for (void* p : envs_) {
      auto* env = static_cast<WorkerEnv*>(p);
      if (env->block.size() < static_cast<std::size_t>(n)) {
        env->block =
            cellport::AlignedBuffer<TaskCmd>(static_cast<std::size_t>(n));
      }
    }
  }
}

void TaskPool::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  try {
    wait_all();
  } catch (...) {
    // Shutdown must complete even when the drain reports a deadlock; any
    // stranded tasks were already marked failed or are abandoned here.
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    sim::spe_write_in_mbox(workers_[w], kExitWord);
    machine_.join(workers_[w]);
    stats_.worker_busy_ns[w] = workers_[w]->ctx().busy_ns();
  }
  for (void* env : envs_) delete static_cast<WorkerEnv*>(env);
  envs_.clear();
  workers_.clear();
  worker_idle_.clear();
  worker_outstanding_.clear();
}

TaskPool::TaskId TaskPool::submit(const KernelModule& module,
                                  std::uint32_t opcode, std::uint64_t ea,
                                  std::vector<TaskId> deps) {
  TaskId id = tasks_.size();
  TaskRecord rec;
  rec.module = &module;
  rec.opcode = opcode;
  rec.ea = ea;
  for (TaskId d : deps) {
    if (d >= tasks_.size()) {
      throw cellport::ConfigError("task depends on unknown task " +
                                  std::to_string(d));
    }
    if (!tasks_[d].done) {
      tasks_[d].dependents.push_back(id);
      ++rec.unmet_deps;
    }
  }
  tasks_.push_back(std::move(rec));
  ++incomplete_;
  if (tasks_.back().unmet_deps == 0) ready_.push_back(id);
  // With batched dispatch, defer to wait_all() so the accumulated
  // ready-set goes out in full batches instead of singletons per submit.
  if (dispatch_batch_ <= 1) pump_ready_tasks();
  return id;
}

void TaskPool::dispatch(int worker, TaskId task) {
  TaskRecord& rec = tasks_[task];
  rec.dispatch_ns = machine_.ppe().now_ns();
  sim::SpeThread* w = workers_[static_cast<std::size_t>(worker)];
  sim::spe_write_in_mbox(w, static_cast<std::uint64_t>(task) + 1);
  sim::spe_write_in_mbox(w, reinterpret_cast<std::uint64_t>(rec.module));
  sim::spe_write_in_mbox(w, rec.opcode);
  sim::spe_write_in_mbox(w, rec.ea);
  worker_idle_[static_cast<std::size_t>(worker)] = false;
  ++worker_outstanding_[static_cast<std::size_t>(worker)];
  ++outstanding_;
}

void TaskPool::dispatch_block(int worker, const std::vector<TaskId>& batch) {
  auto wi = static_cast<std::size_t>(worker);
  auto* env = static_cast<WorkerEnv*>(envs_[wi]);
  const sim::SimTime now = machine_.ppe().now_ns();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    TaskRecord& rec = tasks_[batch[i]];
    rec.dispatch_ns = now;
    TaskCmd& cmd = env->block[i];
    cmd.task_plus1 = static_cast<std::uint64_t>(batch[i]) + 1;
    cmd.module = reinterpret_cast<std::uint64_t>(rec.module);
    cmd.ea = rec.ea;
    cmd.opcode = rec.opcode;
    // The four words the legacy protocol sent by mailbox become four
    // plain stores into the command block.
    machine_.ppe().charge(sim::OpClass::kStore, 4);
  }
  sim::spe_write_in_mbox(
      workers_[wi],
      (static_cast<std::uint64_t>(ring::kRingDoorbellWord) << 32) |
          static_cast<std::uint32_t>(batch.size()));
  worker_idle_[wi] = false;
  worker_outstanding_[wi] += batch.size();
  outstanding_ += batch.size();
  machine_.metrics().counter("taskpool.doorbells").add(1);
  machine_.metrics()
      .histogram("taskpool.batch_size")
      .record(static_cast<double>(batch.size()));
}

int TaskPool::pick_worker(int exclude) const {
  // A retried task goes to a *different* worker whenever one is healthy
  // anywhere in the pool — if the alternative is merely busy, we wait for
  // it rather than feed the task back to the worker that just failed it.
  bool other_healthy = false;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!worker_quarantined_[w] && static_cast<int>(w) != exclude) {
      other_healthy = true;
    }
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!worker_idle_[w] || worker_quarantined_[w]) continue;
    if (static_cast<int>(w) == exclude && other_healthy) continue;
    return static_cast<int>(w);
  }
  return -1;
}

bool TaskPool::has_eligible_worker() const {
  for (bool q : worker_quarantined_) {
    if (!q) return true;
  }
  return false;
}

void TaskPool::pump_ready_tasks() {
  if (dispatch_batch_ <= 1) {
    while (!ready_.empty()) {
      TaskId t = ready_.front();
      int w = pick_worker(tasks_[t].exclude_worker);
      if (w < 0) return;
      ready_.pop_front();
      dispatch(w, t);
    }
    return;
  }
  // Batched mode: fill each idle worker with up to dispatch_batch_ ready
  // tasks and ring one doorbell per worker. FIFO order is preserved —
  // when the front task may not run on the chosen worker (retry
  // exclusion), the batch stops there, just as the legacy loop stops when
  // the front task has no dispatchable worker.
  while (!ready_.empty()) {
    TaskId first = ready_.front();
    int w = pick_worker(tasks_[first].exclude_worker);
    if (w < 0) return;
    ready_.pop_front();
    std::vector<TaskId> batch{first};
    while (!ready_.empty() &&
           batch.size() < static_cast<std::size_t>(dispatch_batch_)) {
      TaskId t = ready_.front();
      if (tasks_[t].exclude_worker == w) {
        bool other_healthy = false;
        for (std::size_t k = 0; k < workers_.size(); ++k) {
          if (!worker_quarantined_[k] && static_cast<int>(k) != w) {
            other_healthy = true;
          }
        }
        if (other_healthy) break;
      }
      ready_.pop_front();
      batch.push_back(t);
    }
    dispatch_block(w, batch);
  }
}

void TaskPool::post_completion(const CompletionEvent& ev) {
  std::lock_guard lock(ev_mu_);
  events_.push_back(ev);
  ev_cv_.notify_one();
}

TaskPool::CompletionEvent TaskPool::wait_event() {
  std::unique_lock lock(ev_mu_);
  ev_cv_.wait(lock, [&] { return !events_.empty(); });
  CompletionEvent ev = events_.front();
  events_.pop_front();
  return ev;
}

void TaskPool::wait_all() {
  while (incomplete_ > 0) {
    if (outstanding_ == 0) {
      if (ready_.empty()) {
        throw cellport::ConfigError(
            "TaskPool deadlock: tasks remain but none are ready (circular "
            "or never-satisfied dependences)");
      }
      if (!has_eligible_worker()) {
        // Graceful degradation instead of a shutdown hang: with every
        // worker quarantined the remaining tasks can never run.
        fail_remaining("TaskPool: all workers quarantined");
        break;
      }
      pump_ready_tasks();
      if (outstanding_ == 0) {
        fail_remaining("TaskPool: no dispatchable worker for ready tasks");
        break;
      }
      continue;
    }
    CompletionEvent ev = wait_event();
    TaskRecord& rec = tasks_[ev.task];

    // Deadline classification is purely simulated-time: a hung worker's
    // event carries a kNeverNs timestamp, a slow one simply arrives past
    // the policy deadline.
    const bool hung = ev.ts >= sim::kNeverNs / 2;
    const sim::SimTime deadline_ns = policy_set_ ? policy_.deadline_ns : 0;
    const bool timed_out =
        hung || (deadline_ns > 0 && ev.ts - rec.dispatch_ns > deadline_ns);
    // The PPE observes a timed-out task at its deadline (or, for a hang
    // with no configured deadline, right now) — never at the kNeverNs
    // delivery timestamp, which would catapult the simulated clock.
    sim::SimTime observe_ts = ev.ts;
    if (timed_out) {
      observe_ts = deadline_ns > 0 ? rec.dispatch_ns + deadline_ns
                                   : machine_.ppe().now_ns();
    }
    // The PPE's event loop: interrupt delivery + MMIO acknowledgment.
    machine_.ppe().sync_to(observe_ts + sim::calib::kInterruptLatencyNs);
    machine_.ppe().advance_ns(sim::calib::kPpeMmioCostNs);

    --outstanding_;
    // A batched worker only becomes idle once every task of its block
    // completed. (The guard against underflow covers events drained from
    // a worker that was restarted mid-block.)
    auto wi = static_cast<std::size_t>(ev.worker);
    if (worker_outstanding_[wi] > 0) --worker_outstanding_[wi];
    if (worker_outstanding_[wi] == 0) worker_idle_[wi] = true;
    if (ev.code_switched) stats_.code_switches += 1;
    if (timed_out) {
      stats_.timeouts += 1;
      machine_.metrics().counter("guard.timeouts").add(1);
    }

    const bool failed = ev.failed || timed_out;
    ++rec.attempts;
    if (failed) {
      note_worker_fault(ev.worker);
    } else {
      consecutive_faults_[static_cast<std::size_t>(ev.worker)] = 0;
    }

    if (failed && policy_set_ && rec.attempts < policy_.max_attempts &&
        has_eligible_worker()) {
      // Re-dispatch after bounded exponential backoff, preferring any
      // worker other than the one that just failed the task.
      stats_.retries += 1;
      machine_.metrics().counter("guard.retries").add(1);
      rec.exclude_worker = ev.worker;
      machine_.ppe().advance_ns(
          policy_.backoff_base_ns *
          static_cast<double>(1u << (rec.attempts - 1)));
      ready_.push_front(ev.task);
      pump_ready_tasks();
      continue;
    }

    rec.done = true;
    rec.failed = failed;
    rec.error = timed_out ? "task missed its deadline of " +
                                std::to_string(deadline_ns) + " ns"
                          : std::move(ev.error);
    --incomplete_;
    stats_.tasks_run += 1;
    if (rec.failed) stats_.faults += 1;
    for (TaskId dep : rec.dependents) {
      if (--tasks_[dep].unmet_deps == 0) ready_.push_back(dep);
    }
    pump_ready_tasks();
  }
  stats_.makespan_ns = machine_.ppe().now_ns() - start_ns_;
}

void TaskPool::note_worker_fault(int worker) {
  if (!policy_set_) return;
  auto w = static_cast<std::size_t>(worker);
  if (worker_quarantined_[w]) return;
  if (++consecutive_faults_[w] < policy_.quarantine_after) return;
  if (!worker_restarted_[w]) {
    // One fresh start before giving up on the SPE: restart clears a
    // transient-injection fault schedule (and the resident kernel, so
    // the next task pays a code switch).
    restart_worker(worker);
    worker_restarted_[w] = true;
    consecutive_faults_[w] = 0;
    stats_.restarts += 1;
    return;
  }
  worker_quarantined_[w] = true;
  stats_.quarantined_workers += 1;
  machine_.metrics().counter("guard.quarantined_spes").add(1);
}

void TaskPool::restart_worker(int worker) {
  auto w = static_cast<std::size_t>(worker);
  sim::SpeThread* old = workers_[w];
  sim::spe_write_in_mbox(old, kExitWord);
  machine_.join(old);
  int spe_index = old->ctx().id();
  old->ctx().fault_restart();
  sim::SpeProgram prog{"taskpool_worker", 4 * 1024, &TaskPool::worker_main};
  workers_[w] = machine_.spawn(
      prog, reinterpret_cast<std::uint64_t>(envs_[w]), spe_index);
  worker_idle_[w] = true;
  // The old thread drained its queued commands before exiting (their
  // events are already posted); the fresh worker starts with a clean
  // slate.
  worker_outstanding_[w] = 0;
}

void TaskPool::fail_remaining(const std::string& reason) {
  for (TaskRecord& rec : tasks_) {
    if (rec.done) continue;
    rec.done = true;
    rec.failed = true;
    rec.error = reason;
    --incomplete_;
    stats_.faults += 1;
  }
  ready_.clear();
}

bool TaskPool::task_failed(TaskId id) const {
  if (id >= tasks_.size()) {
    throw cellport::ConfigError("task_failed: unknown task " +
                                std::to_string(id));
  }
  return tasks_[id].failed;
}

const std::string& TaskPool::task_error(TaskId id) const {
  if (id >= tasks_.size()) {
    throw cellport::ConfigError("task_error: unknown task " +
                                std::to_string(id));
  }
  return tasks_[id].error;
}

TaskPool::Stats TaskPool::stats() {
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    stats_.worker_busy_ns[w] = workers_[w]->ctx().busy_ns();
  }
  return stats_;
}

}  // namespace cellport::port
