#include "port/taskpool.h"

#include <utility>

#include "sim/calibration.h"
#include "sim/libspe.h"
#include "sim/spu_mfcio.h"
#include "support/error.h"

namespace cellport::port {

namespace {

/// Worker mailbox protocol: a zero word exits; otherwise the word is
/// task_id + 1 followed by {module pointer, opcode, wrapper ea}.
constexpr std::uint64_t kExitWord = 0;

/// Arguments handed to each worker thread through argv.
struct WorkerEnv {
  TaskPool* pool;
  int worker_index;
};

}  // namespace

int TaskPool::worker_main(std::uint64_t /*spe_id*/, std::uint64_t argv) {
  auto* env = reinterpret_cast<WorkerEnv*>(argv);
  sim::SpeContext* ctx = sim::current_spe();
  const KernelModule* resident = nullptr;

  for (;;) {
    std::uint64_t tag = sim::spu_read_in_mbox();
    if (tag == kExitWord) return 0;
    TaskId task = static_cast<TaskId>(tag - 1);
    auto* module =
        reinterpret_cast<const KernelModule*>(sim::spu_read_in_mbox());
    auto opcode = static_cast<std::uint32_t>(sim::spu_read_in_mbox());
    std::uint64_t ea = sim::spu_read_in_mbox();

    bool switched = module != resident;
    if (switched) {
      // Code switch: stream the kernel image into the local store and
      // re-enter it. (Functionally our kernels are host functions; the
      // cost is what hardware would pay.)
      double bytes = static_cast<double>(module->program().code_bytes);
      ctx->advance_ns(bytes / sim::calib::kDmaBandwidthBytesPerNs +
                      sim::calib::kDmaLatencyNs +
                      sim::calib::kCodeSwitchOverheadNs);
      resident = module;
    }

    sim::spu_ls_reset();
    CompletionEvent ev;
    try {
      module->invoke(opcode, ea);
    } catch (const cellport::Error& e) {
      // Surface the fault to the PPE in the completion event rather than
      // swallowing it: the scheduler records it, stats count it, and the
      // submitter can query task_failed()/task_error() after wait_all().
      ev.failed = true;
      ev.error = e.what();
    }
    ev.worker = env->worker_index;
    ev.task = task;
    ev.code_switched = switched;
    ctx->advance_ns(sim::calib::kSpuChannelCostNs);
    ev.ts = ctx->now_ns() + sim::calib::kMailboxLatencyNs;
    env->pool->post_completion(ev);
  }
}

TaskPool::TaskPool(sim::Machine& machine, int num_workers)
    : machine_(machine) {
  if (num_workers < 1 || num_workers > machine.num_spes()) {
    throw cellport::ConfigError("TaskPool needs 1.." +
                                std::to_string(machine.num_spes()) +
                                " workers");
  }
  start_ns_ = machine_.ppe().now_ns();
  // Worker envs must outlive the threads; keep them on the heap keyed by
  // worker index (freed in the destructor after join).
  for (int w = 0; w < num_workers; ++w) {
    auto* env = new WorkerEnv{this, w};
    sim::SpeProgram prog{"taskpool_worker", 4 * 1024,
                         &TaskPool::worker_main};
    workers_.push_back(machine_.spawn(
        prog, reinterpret_cast<std::uint64_t>(env)));
    worker_idle_.push_back(true);
    envs_.push_back(env);
  }
  stats_.worker_busy_ns.assign(static_cast<std::size_t>(num_workers), 0);
}

TaskPool::~TaskPool() {
  try {
    wait_all();
  } catch (...) {
  }
  for (sim::SpeThread* w : workers_) {
    sim::spe_write_in_mbox(w, kExitWord);
    machine_.join(w);
  }
  for (void* env : envs_) delete static_cast<WorkerEnv*>(env);
}

TaskPool::TaskId TaskPool::submit(const KernelModule& module,
                                  std::uint32_t opcode, std::uint64_t ea,
                                  std::vector<TaskId> deps) {
  TaskId id = tasks_.size();
  TaskRecord rec;
  rec.module = &module;
  rec.opcode = opcode;
  rec.ea = ea;
  for (TaskId d : deps) {
    if (d >= tasks_.size()) {
      throw cellport::ConfigError("task depends on unknown task " +
                                  std::to_string(d));
    }
    if (!tasks_[d].done) {
      tasks_[d].dependents.push_back(id);
      ++rec.unmet_deps;
    }
  }
  tasks_.push_back(std::move(rec));
  ++incomplete_;
  if (tasks_.back().unmet_deps == 0) ready_.push_back(id);
  pump_ready_tasks();
  return id;
}

void TaskPool::dispatch(int worker, TaskId task) {
  const TaskRecord& rec = tasks_[task];
  sim::SpeThread* w = workers_[static_cast<std::size_t>(worker)];
  sim::spe_write_in_mbox(w, static_cast<std::uint64_t>(task) + 1);
  sim::spe_write_in_mbox(w, reinterpret_cast<std::uint64_t>(rec.module));
  sim::spe_write_in_mbox(w, rec.opcode);
  sim::spe_write_in_mbox(w, rec.ea);
  worker_idle_[static_cast<std::size_t>(worker)] = false;
  ++outstanding_;
}

void TaskPool::pump_ready_tasks() {
  for (std::size_t w = 0; w < workers_.size() && !ready_.empty(); ++w) {
    if (worker_idle_[w]) {
      TaskId t = ready_.front();
      ready_.pop_front();
      dispatch(static_cast<int>(w), t);
    }
  }
}

void TaskPool::post_completion(const CompletionEvent& ev) {
  std::lock_guard lock(ev_mu_);
  events_.push_back(ev);
  ev_cv_.notify_one();
}

TaskPool::CompletionEvent TaskPool::wait_event() {
  std::unique_lock lock(ev_mu_);
  ev_cv_.wait(lock, [&] { return !events_.empty(); });
  CompletionEvent ev = events_.front();
  events_.pop_front();
  return ev;
}

void TaskPool::wait_all() {
  while (incomplete_ > 0) {
    if (outstanding_ == 0 && ready_.empty()) {
      throw cellport::ConfigError(
          "TaskPool deadlock: tasks remain but none are ready (circular "
          "or never-satisfied dependences)");
    }
    CompletionEvent ev = wait_event();
    // The PPE's event loop: interrupt delivery + MMIO acknowledgment.
    machine_.ppe().sync_to(ev.ts + sim::calib::kInterruptLatencyNs);
    machine_.ppe().advance_ns(sim::calib::kPpeMmioCostNs);

    TaskRecord& rec = tasks_[ev.task];
    rec.done = true;
    rec.failed = ev.failed;
    rec.error = std::move(ev.error);
    --incomplete_;
    --outstanding_;
    worker_idle_[static_cast<std::size_t>(ev.worker)] = true;
    stats_.tasks_run += 1;
    if (ev.code_switched) stats_.code_switches += 1;
    if (rec.failed) stats_.faults += 1;
    for (TaskId dep : rec.dependents) {
      if (--tasks_[dep].unmet_deps == 0) ready_.push_back(dep);
    }
    pump_ready_tasks();
  }
  stats_.makespan_ns = machine_.ppe().now_ns() - start_ns_;
}

bool TaskPool::task_failed(TaskId id) const {
  if (id >= tasks_.size()) {
    throw cellport::ConfigError("task_failed: unknown task " +
                                std::to_string(id));
  }
  return tasks_[id].failed;
}

const std::string& TaskPool::task_error(TaskId id) const {
  if (id >= tasks_.size()) {
    throw cellport::ConfigError("task_error: unknown task " +
                                std::to_string(id));
  }
  return tasks_[id].error;
}

TaskPool::Stats TaskPool::stats() {
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    stats_.worker_busy_ns[w] = workers_[w]->ctx().busy_ns();
  }
  return stats_;
}

}  // namespace cellport::port
