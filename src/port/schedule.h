// Static kernel-to-SPE scheduling (Section 3.3 / Section 4.2).
//
// The strategy schedules kernels to SPEs statically: interfaces are opened
// once, SPEs idle between commands, and the application chooses between
// sequential invocation (Figure 4b) and parallel groups (Figure 4c). A
// StaticSchedule captures that choice, validates it against the machine
// (at most one kernel per SPE, group width bounded by the SPE count), and
// feeds Equation (3) for the estimate the paper compares against
// measurement.
#pragma once

#include <string>
#include <vector>

#include "port/amdahl.h"

namespace cellport::port {

class StaticSchedule {
 public:
  /// `num_spes`: SPEs available on the target machine (8 on a Cell).
  explicit StaticSchedule(int num_spes = 8);

  /// Appends a group whose kernels run in parallel on distinct SPEs;
  /// groups execute sequentially (data dependences between groups).
  /// Throws ConfigError when the group is wider than the machine or a
  /// kernel name repeats (one kernel is resident on one SPE).
  StaticSchedule& add_group(std::vector<KernelPoint> kernels);

  /// All-sequential convenience: each kernel in its own group (Fig. 4b).
  static StaticSchedule sequential(std::vector<KernelPoint> kernels,
                                   int num_spes = 8);

  const std::vector<std::vector<KernelPoint>>& groups() const {
    return groups_;
  }

  /// Number of distinct SPEs the schedule occupies (its resident set).
  int spes_used() const;

  /// Equation (3) applied to this schedule (Equation (2) falls out when
  /// every group has one kernel).
  double estimated_speedup() const;

  /// Kernel count across all groups.
  std::size_t kernel_count() const;

 private:
  int num_spes_;
  std::vector<std::vector<KernelPoint>> groups_;
};

}  // namespace cellport::port
