// k-nearest-neighbor classifier.
//
// Section 5.1 lists kNN as the alternative statistical classification
// method MARVEL supports next to SVMs; we provide it both as a baseline
// classifier and as a comparison point in the ablation benches.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/scalar_context.h"

namespace cellport::learn {

class KnnClassifier {
 public:
  explicit KnnClassifier(int k = 3);

  /// Adds a labeled exemplar.
  void add(std::vector<float> features, int label);

  std::size_t size() const { return exemplars_.size(); }
  int k() const { return k_; }

  /// Majority label among the k nearest exemplars (squared Euclidean);
  /// ties break toward the smaller label. Charges the distance-scan op
  /// mix when ctx != null.
  int predict(std::span<const float> x,
              sim::ScalarContext* ctx = nullptr) const;

  /// Mean soft score in [-1, 1]: fraction of the k nearest exemplars with
  /// label `label` mapped to [-1, 1] (used as a decision analogue).
  double score(std::span<const float> x, int label,
               sim::ScalarContext* ctx = nullptr) const;

 private:
  std::vector<std::pair<std::size_t, double>> nearest(
      std::span<const float> x, sim::ScalarContext* ctx) const;

  int k_;
  struct Exemplar {
    std::vector<float> features;
    int label;
  };
  std::vector<Exemplar> exemplars_;
};

}  // namespace cellport::learn
