// Concept-model sets: generation, serialization, loading.
//
// The paper's detection phase uses "a number of models summing up 186
// vectors for color histogram, 225 for color correlogram, 210 for edge
// detection and 255 for texture" (Section 5.5). MARVEL's actual trained
// models are IBM-proprietary; we substitute a deterministic synthetic
// generator that produces SVM models with exactly those support-vector
// counts and plausible feature-space geometry (per-concept clusters in
// histogram space). The on-disk library additionally contains inactive
// concepts, mirroring MARVEL's large model library of which a run uses a
// subset — loading it is the application's one-time overhead (60% of
// single-image total time on the PPE in Section 5.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "learn/svm.h"
#include "sim/scalar_context.h"

namespace cellport::learn {

/// Active detectors for one feature type.
struct ConceptModelSet {
  std::string feature_name;
  std::vector<SvmModel> models;

  int total_svs() const {
    int n = 0;
    for (const auto& m : models) n += m.num_sv();
    return n;
  }
};

/// The four active detector sets of the paper's experiments.
struct MarvelModels {
  ConceptModelSet color_histogram;   // 186 SVs total
  ConceptModelSet color_correlogram; // 225 SVs total
  ConceptModelSet edge_histogram;    // 210 SVs total
  ConceptModelSet texture;           // 255 SVs total
};

/// Published per-feature support-vector totals.
inline constexpr int kChTotalSvs = 186;
inline constexpr int kCcTotalSvs = 225;
inline constexpr int kEhTotalSvs = 210;
inline constexpr int kTxTotalSvs = 255;

/// Generates one synthetic detector set: `concepts` RBF models over
/// `dim`-dimensional histogram-like vectors, support vectors split as
/// evenly as possible so they sum exactly to `total_svs`.
ConceptModelSet make_synthetic_set(const std::string& feature_name, int dim,
                                   int total_svs, int concepts,
                                   std::uint64_t seed);

/// The full active model configuration of Section 5.5.
MarvelModels make_marvel_models(std::uint64_t seed = 2007);

/// Serializes detector sets (active + `extra_concepts_per_feature`
/// inactive filler concepts, mirroring the full MARVEL library) to a
/// binary file; returns the file size in bytes.
std::size_t save_library(const std::string& path, const MarvelModels& active,
                         int extra_concepts_per_feature = 34,
                         std::uint64_t seed = 77);

/// Loads the active detector sets back from a library file. Charges the
/// one-time I/O (file streaming) and parse cost when ctx != null.
MarvelModels load_library(const std::string& path,
                          sim::ScalarContext* ctx = nullptr);

}  // namespace cellport::learn
