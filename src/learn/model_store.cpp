#include "learn/model_store.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "features/feature.h"
#include "support/error.h"
#include "support/rng.h"

namespace cellport::learn {

namespace {

// Feature-space geometry knobs for the synthetic generator. Histogram
// features are L1-normalized and live near the simplex; texture features
// are log-energies with a larger spread.
struct FeatureGeometry {
  float base_scale;   // magnitude of the cluster center entries
  float noise;        // per-SV jitter around the center
  float gamma;        // RBF width matched to typical distances
  bool normalize;     // L1-normalize vectors (histogram features)
};

FeatureGeometry geometry_for(int dim) {
  if (dim >= 64) return FeatureGeometry{1.0f, 0.05f, 20.0f, true};
  return FeatureGeometry{4.0f, 0.6f, 0.05f, false};
}

std::vector<float> random_center(int dim, const FeatureGeometry& geo,
                                 cellport::Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(dim));
  for (auto& x : v) {
    x = static_cast<float>(std::abs(rng.normal(0.0, 1.0)) * geo.base_scale);
  }
  if (geo.normalize) {
    float sum = 0;
    for (float x : v) sum += x;
    if (sum > 0) {
      for (auto& x : v) x /= sum;
    }
  }
  return v;
}

SvmModel synth_model(const std::string& name, int dim, int n_sv,
                     const FeatureGeometry& geo, cellport::Rng& rng) {
  std::vector<float> center = random_center(dim, geo, rng);
  std::vector<float> svs;
  std::vector<float> coef;
  svs.reserve(static_cast<std::size_t>(dim) * n_sv);
  for (int i = 0; i < n_sv; ++i) {
    float sum = 0;
    std::vector<float> sv(static_cast<std::size_t>(dim));
    for (int d = 0; d < dim; ++d) {
      float x = center[static_cast<std::size_t>(d)] +
                static_cast<float>(rng.normal(0.0, geo.noise)) *
                    (geo.normalize ? center[static_cast<std::size_t>(d)] +
                                         0.01f
                                   : 1.0f);
      x = std::max(0.0f, x);
      sv[static_cast<std::size_t>(d)] = x;
      sum += x;
    }
    if (geo.normalize && sum > 0) {
      for (auto& x : sv) x /= sum;
    }
    svs.insert(svs.end(), sv.begin(), sv.end());
    float mag = static_cast<float>(rng.uniform(0.1, 1.0));
    coef.push_back(i % 2 == 0 ? mag : -mag);
  }
  float rho = static_cast<float>(rng.uniform(-0.2, 0.2));
  return SvmModel(name, SvmKernelType::kRbf, geo.gamma, rho, dim, svs,
                  coef);
}

const char* const kConceptNames[] = {
    "outdoors", "indoors", "sky",     "water",  "building", "vegetation",
    "face",     "crowd",   "vehicle", "animal", "road",     "snow"};

// --- binary serialization helpers ---

template <typename T>
void put(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw cellport::IoError("truncated model library");
  return v;
}

void put_string(std::ofstream& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::ifstream& in) {
  auto len = get<std::uint32_t>(in);
  if (len > 4096) throw cellport::IoError("model name too long");
  std::string s(len, '\0');
  in.read(s.data(), len);
  if (!in) throw cellport::IoError("truncated model library");
  return s;
}

void write_model(std::ofstream& out, const SvmModel& m, bool active) {
  put_string(out, m.concept_name());
  put<std::uint8_t>(out, active ? 1 : 0);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(m.kernel()));
  put<float>(out, m.gamma());
  put<float>(out, m.rho());
  put<std::uint32_t>(out, static_cast<std::uint32_t>(m.dim()));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(m.num_sv()));
  for (float c : m.coef()) put<float>(out, c);
  for (int i = 0; i < m.num_sv(); ++i) {
    out.write(reinterpret_cast<const char*>(m.sv_row(i)),
              static_cast<std::streamsize>(sizeof(float)) * m.dim());
  }
}

}  // namespace

ConceptModelSet make_synthetic_set(const std::string& feature_name, int dim,
                                   int total_svs, int concepts,
                                   std::uint64_t seed) {
  if (concepts < 1 || total_svs < concepts) {
    throw cellport::ConfigError(
        "model set needs at least one SV per concept");
  }
  FeatureGeometry geo = geometry_for(dim);
  cellport::Rng rng(seed);
  ConceptModelSet set;
  set.feature_name = feature_name;
  int base = total_svs / concepts;
  int extra = total_svs % concepts;
  for (int c = 0; c < concepts; ++c) {
    int n_sv = base + (c < extra ? 1 : 0);
    std::string name =
        std::string(kConceptNames[c % 12]) +
        (c >= 12 ? "_" + std::to_string(c / 12) : "");
    set.models.push_back(synth_model(name, dim, n_sv, geo, rng));
  }
  return set;
}

MarvelModels make_marvel_models(std::uint64_t seed) {
  MarvelModels m;
  m.color_histogram = make_synthetic_set(
      "color_histogram", features::kColorHistogramDim, kChTotalSvs, 6,
      seed ^ 0x11);
  m.color_correlogram = make_synthetic_set(
      "color_correlogram", features::kColorCorrelogramDim, kCcTotalSvs, 5,
      seed ^ 0x22);
  m.edge_histogram = make_synthetic_set(
      "edge_histogram", features::kEdgeHistogramDim, kEhTotalSvs, 6,
      seed ^ 0x33);
  m.texture = make_synthetic_set("texture", features::kTextureDim,
                                 kTxTotalSvs, 5, seed ^ 0x44);
  return m;
}

std::size_t save_library(const std::string& path, const MarvelModels& active,
                         int extra_concepts_per_feature,
                         std::uint64_t seed) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw cellport::IoError("cannot create " + path);
  out.write("CPML", 4);
  const ConceptModelSet* sets[] = {
      &active.color_histogram, &active.color_correlogram,
      &active.edge_histogram, &active.texture};
  put<std::uint32_t>(out, 4);
  cellport::Rng rng(seed);
  for (const auto* set : sets) {
    put_string(out, set->feature_name);
    int extra = extra_concepts_per_feature;
    put<std::uint32_t>(out,
                       static_cast<std::uint32_t>(set->models.size()) +
                           static_cast<std::uint32_t>(extra));
    for (const auto& m : set->models) write_model(out, m, /*active=*/true);
    // Inactive filler concepts: the rest of the MARVEL model library.
    int dim = set->models.front().dim();
    FeatureGeometry geo = geometry_for(dim);
    for (int i = 0; i < extra; ++i) {
      SvmModel filler = synth_model(
          "inactive_" + set->feature_name + "_" + std::to_string(i), dim,
          40, geo, rng);
      write_model(out, filler, /*active=*/false);
    }
  }
  out.flush();
  if (!out) throw cellport::IoError("write failed for " + path);
  return static_cast<std::size_t>(out.tellp());
}

MarvelModels load_library(const std::string& path,
                          sim::ScalarContext* ctx) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw cellport::IoError("cannot open " + path);
  in.seekg(0, std::ios::end);
  auto file_bytes = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  if (ctx != nullptr) {
    // One-time overhead: stream the library from disk and parse it
    // (~4 integer ops per byte for the format walk + float loads). Bulk
    // sequential read: disk-bound on every machine (unscaled).
    ctx->charge_io(file_bytes, /*open_file=*/true, /*scaled=*/false);
    ctx->charge(sim::OpClass::kLoad, file_bytes / 4);
    ctx->charge(sim::OpClass::kIntAlu, file_bytes / 2);
  }

  char magic[4];
  in.read(magic, 4);
  if (!in || std::string(magic, 4) != "CPML") {
    throw cellport::IoError("bad model library magic");
  }
  auto n_sets = get<std::uint32_t>(in);
  if (n_sets != 4) throw cellport::IoError("expected 4 feature sets");

  MarvelModels out;
  for (std::uint32_t s = 0; s < n_sets; ++s) {
    std::string feature = get_string(in);
    auto n_models = get<std::uint32_t>(in);
    ConceptModelSet set;
    set.feature_name = feature;
    for (std::uint32_t i = 0; i < n_models; ++i) {
      std::string name = get_string(in);
      auto active = get<std::uint8_t>(in);
      auto kernel = static_cast<SvmKernelType>(get<std::uint8_t>(in));
      auto gamma = get<float>(in);
      auto rho = get<float>(in);
      auto dim = static_cast<int>(get<std::uint32_t>(in));
      auto n_sv = static_cast<int>(get<std::uint32_t>(in));
      if (dim <= 0 || dim > 1 << 16 || n_sv <= 0 || n_sv > 1 << 20) {
        throw cellport::IoError("implausible model geometry");
      }
      std::vector<float> coef(static_cast<std::size_t>(n_sv));
      in.read(reinterpret_cast<char*>(coef.data()),
              static_cast<std::streamsize>(coef.size() * sizeof(float)));
      std::vector<float> svs(static_cast<std::size_t>(n_sv) * dim);
      in.read(reinterpret_cast<char*>(svs.data()),
              static_cast<std::streamsize>(svs.size() * sizeof(float)));
      if (!in) throw cellport::IoError("truncated model data");
      if (active != 0) {
        set.models.emplace_back(name, kernel, gamma, rho, dim, svs, coef);
      }
    }
    if (feature == "color_histogram") {
      out.color_histogram = std::move(set);
    } else if (feature == "color_correlogram") {
      out.color_correlogram = std::move(set);
    } else if (feature == "edge_histogram") {
      out.edge_histogram = std::move(set);
    } else if (feature == "texture") {
      out.texture = std::move(set);
    } else {
      throw cellport::IoError("unknown feature set '" + feature + "'");
    }
  }
  return out;
}

}  // namespace cellport::learn
