#include "learn/svm.h"

#include <cmath>
#include <cstring>

#include "support/error.h"

namespace cellport::learn {

namespace {
inline void chg(sim::ScalarContext* ctx, sim::OpClass c,
                std::uint64_t n = 1) {
  if (ctx != nullptr) ctx->charge(c, n);
}
}  // namespace

SvmModel::SvmModel(std::string concept_name, SvmKernelType kernel,
                   float gamma, float rho, int dim,
                   std::span<const float> svs, std::span<const float> coef)
    : concept_name_(std::move(concept_name)),
      kernel_(kernel),
      gamma_(gamma),
      rho_(rho),
      dim_(dim),
      num_sv_(static_cast<int>(coef.size())),
      sv_stride_(static_cast<int>(
          cellport::round_up(static_cast<std::size_t>(dim), 4))),
      svs_(static_cast<std::size_t>(sv_stride_) * num_sv_),
      coef_(cellport::round_up(coef.size(), 4)) {
  if (dim <= 0) throw cellport::ConfigError("SVM dim must be positive");
  if (num_sv_ <= 0) {
    throw cellport::ConfigError("SVM needs at least one support vector");
  }
  if (svs.size() != static_cast<std::size_t>(dim) * num_sv_) {
    throw cellport::ConfigError("SVM sv array size mismatch");
  }
  for (int i = 0; i < num_sv_; ++i) {
    std::memcpy(svs_.data() + static_cast<std::size_t>(i) * sv_stride_,
                svs.data() + static_cast<std::size_t>(i) * dim_,
                sizeof(float) * static_cast<std::size_t>(dim_));
  }
  std::memcpy(coef_.data(), coef.data(), coef.size() * sizeof(float));
}

double SvmModel::decision(std::span<const float> x,
                          sim::ScalarContext* ctx) const {
  if (x.size() != static_cast<std::size_t>(dim_)) {
    throw cellport::ConfigError("SVM input dimension mismatch");
  }
  double acc = 0.0;
  for (int i = 0; i < num_sv_; ++i) {
    const float* sv = sv_row(i);
    if (kernel_ == SvmKernelType::kLinear) {
      // dim multiply-adds + 2*dim loads.
      chg(ctx, sim::OpClass::kLoad, 2 * static_cast<std::uint64_t>(dim_));
      chg(ctx, sim::OpClass::kMul, static_cast<std::uint64_t>(dim_));
      chg(ctx, sim::OpClass::kFloatAlu, static_cast<std::uint64_t>(dim_));
      float dot = 0.0f;
      for (int d = 0; d < dim_; ++d) dot += sv[d] * x[static_cast<std::size_t>(d)];
      acc += static_cast<double>(coef_[static_cast<std::size_t>(i)]) * dot;
    } else {
      // Squared distance: dim (sub, mul, add) + loads; then one libm exp
      // (argument reduction + polynomial: charged as a transcendental).
      chg(ctx, sim::OpClass::kLoad, 2 * static_cast<std::uint64_t>(dim_));
      chg(ctx, sim::OpClass::kMul, static_cast<std::uint64_t>(dim_));
      chg(ctx, sim::OpClass::kFloatAlu,
          2 * static_cast<std::uint64_t>(dim_));
      chg(ctx, sim::OpClass::kSqrt, 4);  // libm double exp: ~160 cycles
      chg(ctx, sim::OpClass::kFloatAlu, 12);
      float dist2 = 0.0f;
      for (int d = 0; d < dim_; ++d) {
        float diff = sv[d] - x[static_cast<std::size_t>(d)];
        dist2 += diff * diff;
      }
      acc += static_cast<double>(coef_[static_cast<std::size_t>(i)]) *
             std::exp(-static_cast<double>(gamma_) * dist2);
    }
    chg(ctx, sim::OpClass::kFloatAlu, 2);
  }
  return acc - rho_;
}

}  // namespace cellport::learn
