// Support vector machine: model representation and decision function.
//
// MARVEL's concept detection scores each extracted feature vector against
// a collection of precomputed SVM models (Section 5.1 chooses SVM over the
// alternative kNN). A model stores its support vectors row-padded to a
// 16-byte multiple in 128-byte-aligned memory, so the SPE detection kernel
// can stream them with legal DMA transfers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/scalar_context.h"
#include "support/aligned.h"

namespace cellport::learn {

enum class SvmKernelType : std::uint8_t { kLinear = 0, kRbf = 1 };

class SvmModel {
 public:
  /// Builds a model from `n_sv` support vectors of dimension `dim`
  /// (svs is n_sv x dim row-major, unpadded) and their signed dual
  /// coefficients (alpha_i * y_i).
  SvmModel(std::string concept_name, SvmKernelType kernel, float gamma,
           float rho, int dim, std::span<const float> svs,
           std::span<const float> coef);

  SvmModel(SvmModel&&) = default;
  SvmModel& operator=(SvmModel&&) = default;

  const std::string& concept_name() const { return concept_name_; }
  SvmKernelType kernel() const { return kernel_; }
  float gamma() const { return gamma_; }
  float rho() const { return rho_; }
  int dim() const { return dim_; }
  int num_sv() const { return num_sv_; }
  /// Floats between consecutive support-vector rows (16-byte multiple).
  int sv_stride() const { return sv_stride_; }

  const float* sv_data() const { return svs_.data(); }
  std::size_t sv_bytes() const { return svs_.bytes(); }
  const float* sv_row(int i) const {
    return svs_.data() + static_cast<std::size_t>(i) * sv_stride_;
  }
  std::span<const float> coef() const {
    return {coef_.data(), static_cast<std::size_t>(num_sv_)};
  }

  /// Decision value f(x) = sum_i coef_i * K(sv_i, x) - rho.
  /// Positive => the concept is detected. Charges the op mix (dim
  /// multiply-adds per SV, plus one exp per SV for RBF) when ctx != null.
  double decision(std::span<const float> x,
                  sim::ScalarContext* ctx = nullptr) const;

 private:
  std::string concept_name_;
  SvmKernelType kernel_;
  float gamma_;
  float rho_;
  int dim_;
  int num_sv_;
  int sv_stride_;
  cellport::AlignedBuffer<float> svs_;
  cellport::AlignedBuffer<float> coef_;
};

}  // namespace cellport::learn
