#include "learn/knn.h"

#include <algorithm>
#include <map>

#include "support/error.h"

namespace cellport::learn {

namespace {
inline void chg(sim::ScalarContext* ctx, sim::OpClass c,
                std::uint64_t n = 1) {
  if (ctx != nullptr) ctx->charge(c, n);
}
}  // namespace

KnnClassifier::KnnClassifier(int k) : k_(k) {
  if (k < 1) throw cellport::ConfigError("kNN needs k >= 1");
}

void KnnClassifier::add(std::vector<float> features, int label) {
  if (!exemplars_.empty() &&
      exemplars_.front().features.size() != features.size()) {
    throw cellport::ConfigError("kNN exemplar dimension mismatch");
  }
  exemplars_.push_back(Exemplar{std::move(features), label});
}

std::vector<std::pair<std::size_t, double>> KnnClassifier::nearest(
    std::span<const float> x, sim::ScalarContext* ctx) const {
  if (exemplars_.empty()) {
    throw cellport::ConfigError("kNN has no exemplars");
  }
  if (x.size() != exemplars_.front().features.size()) {
    throw cellport::ConfigError("kNN input dimension mismatch");
  }
  std::vector<std::pair<std::size_t, double>> dist;
  dist.reserve(exemplars_.size());
  for (std::size_t i = 0; i < exemplars_.size(); ++i) {
    const auto& e = exemplars_[i].features;
    chg(ctx, sim::OpClass::kLoad, 2 * x.size());
    chg(ctx, sim::OpClass::kMul, x.size());
    chg(ctx, sim::OpClass::kFloatAlu, 2 * x.size());
    double d = 0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      double diff = static_cast<double>(e[j]) - x[j];
      d += diff * diff;
    }
    dist.emplace_back(i, d);
  }
  std::size_t kk = std::min<std::size_t>(static_cast<std::size_t>(k_),
                                         dist.size());
  // Partial selection of the k nearest (charged as a partial sort pass).
  chg(ctx, sim::OpClass::kIntAlu, dist.size() * 2);
  chg(ctx, sim::OpClass::kBranch, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(kk),
                    dist.end(), [](const auto& a, const auto& b) {
                      return a.second != b.second ? a.second < b.second
                                                  : a.first < b.first;
                    });
  dist.resize(kk);
  return dist;
}

int KnnClassifier::predict(std::span<const float> x,
                           sim::ScalarContext* ctx) const {
  auto top = nearest(x, ctx);
  std::map<int, int> votes;
  for (const auto& [idx, d] : top) votes[exemplars_[idx].label] += 1;
  int best_label = top.empty() ? 0 : exemplars_[top[0].first].label;
  int best_votes = -1;
  for (const auto& [label, v] : votes) {
    if (v > best_votes) {
      best_votes = v;
      best_label = label;
    }
  }
  return best_label;
}

double KnnClassifier::score(std::span<const float> x, int label,
                            sim::ScalarContext* ctx) const {
  auto top = nearest(x, ctx);
  if (top.empty()) return 0.0;
  double frac = 0.0;
  for (const auto& [idx, d] : top) {
    if (exemplars_[idx].label == label) frac += 1.0;
  }
  frac /= static_cast<double>(top.size());
  return 2.0 * frac - 1.0;
}

}  // namespace cellport::learn
