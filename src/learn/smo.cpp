#include "learn/smo.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"
#include "support/rng.h"

namespace cellport::learn {

namespace {

double kernel_eval(SvmKernelType k, float gamma,
                   const std::vector<float>& a,
                   const std::vector<float>& b) {
  if (k == SvmKernelType::kLinear) {
    double dot = 0;
    for (std::size_t d = 0; d < a.size(); ++d) dot += a[d] * b[d];
    return dot;
  }
  double dist2 = 0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    double diff = a[d] - b[d];
    dist2 += diff * diff;
  }
  return std::exp(-static_cast<double>(gamma) * dist2);
}

}  // namespace

SvmModel smo_train(const std::string& concept_name,
                   const std::vector<std::vector<float>>& x,
                   const std::vector<int>& y,
                   const SvmTrainConfig& config) {
  const std::size_t n = x.size();
  if (n < 2 || y.size() != n) {
    throw cellport::ConfigError("SMO needs >= 2 samples with labels");
  }
  const std::size_t dim = x[0].size();
  for (const auto& row : x) {
    if (row.size() != dim) {
      throw cellport::ConfigError("inconsistent sample dimensions");
    }
  }
  bool has_pos = false;
  bool has_neg = false;
  for (int label : y) {
    if (label == 1) has_pos = true;
    else if (label == -1) has_neg = true;
    else throw cellport::ConfigError("labels must be +1/-1");
  }
  if (!has_pos || !has_neg) {
    throw cellport::ConfigError("SMO needs both classes present");
  }

  // Precompute the kernel matrix (training sets here are small).
  std::vector<double> k(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double v = kernel_eval(config.kernel, config.gamma, x[i], x[j]);
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
  }

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  cellport::Rng rng(config.seed);

  auto f = [&](std::size_t i) {
    double acc = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (alpha[j] != 0.0) acc += alpha[j] * y[j] * k[j * n + i];
    }
    return acc + b;
  };

  int passes = 0;
  int iter = 0;
  while (passes < config.max_passes && iter < config.max_iter) {
    int changed = 0;
    for (std::size_t i = 0; i < n && iter < config.max_iter; ++i, ++iter) {
      double ei = f(i) - y[i];
      bool violates = (y[i] * ei < -config.tol && alpha[i] < config.c) ||
                      (y[i] * ei > config.tol && alpha[i] > 0);
      if (!violates) continue;

      std::size_t j = rng.next_below(n - 1);
      if (j >= i) ++j;
      double ej = f(j) - y[j];

      double ai_old = alpha[i];
      double aj_old = alpha[j];
      double lo;
      double hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(config.c, config.c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - config.c);
        hi = std::min(config.c, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      double eta = 2 * k[i * n + j] - k[i * n + i] - k[j * n + j];
      if (eta >= 0) continue;

      double aj = aj_old - y[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-6) continue;
      double ai = ai_old + y[i] * y[j] * (aj_old - aj);
      alpha[i] = ai;
      alpha[j] = aj;

      double b1 = b - ei - y[i] * (ai - ai_old) * k[i * n + i] -
                  y[j] * (aj - aj_old) * k[i * n + j];
      double b2 = b - ej - y[i] * (ai - ai_old) * k[i * n + j] -
                  y[j] * (aj - aj_old) * k[j * n + j];
      if (ai > 0 && ai < config.c) {
        b = b1;
      } else if (aj > 0 && aj < config.c) {
        b = b2;
      } else {
        b = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  // Extract support vectors.
  std::vector<float> svs;
  std::vector<float> coef;
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-8) {
      svs.insert(svs.end(), x[i].begin(), x[i].end());
      coef.push_back(static_cast<float>(alpha[i] * y[i]));
    }
  }
  if (coef.empty()) {
    // Degenerate but possible on trivially separable data with tiny C:
    // keep the closest pair as support vectors.
    svs.insert(svs.end(), x[0].begin(), x[0].end());
    coef.push_back(static_cast<float>(y[0]));
  }
  // decision(x) = sum coef_i K(sv_i, x) + b  ==  sum - rho, so rho = -b.
  return SvmModel(concept_name, config.kernel, config.gamma,
                  static_cast<float>(-b), static_cast<int>(dim), svs, coef);
}

}  // namespace cellport::learn
