// SMO trainer for binary SVMs.
//
// MARVEL's models are "precomputed" after "a short training phase"
// (Section 5.1). This is a from-scratch sequential-minimal-optimization
// trainer (Platt's SMO with the simplified working-set selection) adequate
// for the small, low-dimensional training sets the model generator and
// tests use. It exists so the substrate is complete end-to-end: train ->
// serialize -> load -> detect on the Cell.
#pragma once

#include <cstdint>
#include <vector>

#include "learn/svm.h"

namespace cellport::learn {

struct SvmTrainConfig {
  SvmKernelType kernel = SvmKernelType::kRbf;
  float gamma = 0.5f;       // RBF width
  double c = 1.0;           // box constraint
  double tol = 1e-3;        // KKT violation tolerance
  int max_passes = 10;      // passes without change before stopping
  int max_iter = 10000;     // hard iteration cap
  std::uint64_t seed = 42;  // working-set tie-breaking
};

/// Trains a binary SVM on rows `x` (n x dim, row-major) with labels
/// `y[i]` in {-1, +1}. Returns the support-vector model.
SvmModel smo_train(const std::string& concept_name,
                   const std::vector<std::vector<float>>& x,
                   const std::vector<int>& y, const SvmTrainConfig& config);

}  // namespace cellport::learn
