// Shared edge-histogram machinery (hoisted out of eh_kernel.cpp for
// cellfuse): gray ring state, the scalar border path, and the branch-free
// SIMD Sobel + octant/magnitude binning that produces one gradient row.
// The fused kernel and the standalone EH kernel run the exact same
// production functions, so their bin counts are bit-identical by
// construction.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "features/edge_histogram.h"
#include "kernels/row_convert.h"
#include "spu/spu.h"

namespace cellport::kernels {

inline constexpr int kEhBlockRows = 16;
inline constexpr int kEhRingRows = kEhBlockRows + 3;
inline constexpr float kEhTwoPi = 6.2831853071795864769f;
inline constexpr float kEhTanLo = 0.41421356237f;  // tan(22.5 deg)
inline constexpr float kEhTanHi = 2.41421356237f;  // tan(67.5 deg)

struct EhState {
  std::uint8_t* ring[kEhRingRows];
  std::uint32_t* counts;  // 64 bins
  int w = 0;
  int h = 0;
};

inline int eh_clamped(const EhState& st, int x, int y) {
  x = std::clamp(x, 0, st.w - 1);
  y = std::clamp(y, 0, st.h - 1);
  return st.ring[y % kEhRingRows][kRingOrigin + x];
}

/// Scalar pixel using the reference's exact float sqrt/atan2 path (used
/// for the image border, where clamping breaks the vector pattern).
inline void eh_scalar_pixel(const EhState& st, int x, int y) {
  using namespace cellport::spu;
  sop(30);
  charge_odd(20);
  int gx = -eh_clamped(st, x - 1, y - 1) + eh_clamped(st, x + 1, y - 1) -
           2 * eh_clamped(st, x - 1, y) + 2 * eh_clamped(st, x + 1, y) -
           eh_clamped(st, x - 1, y + 1) + eh_clamped(st, x + 1, y + 1);
  int gy = -eh_clamped(st, x - 1, y - 1) - 2 * eh_clamped(st, x, y - 1) -
           eh_clamped(st, x + 1, y - 1) + eh_clamped(st, x - 1, y + 1) +
           2 * eh_clamped(st, x, y + 1) + eh_clamped(st, x + 1, y + 1);
  float mag =
      std::sqrt(static_cast<float>(gx) * static_cast<float>(gx) +
                static_cast<float>(gy) * static_cast<float>(gy));
  if (mag < features::kEdgeMagThreshold) return;
  sop(40);
  float angle =
      std::atan2(static_cast<float>(gy), static_cast<float>(gx));
  if (angle < 0.0f) angle += kEhTwoPi;
  int abin = static_cast<int>((angle + kEhTwoPi / 16.0f) *
                              (features::kEdgeAngleBins / kEhTwoPi));
  if (abin >= features::kEdgeAngleBins) abin = 0;
  int mbin = static_cast<int>(
      mag * (features::kEdgeMagBins / features::kEdgeMagMax));
  if (mbin >= features::kEdgeMagBins) mbin = features::kEdgeMagBins - 1;
  auto bin = static_cast<std::uint32_t>(abin * features::kEdgeMagBins +
                                        mbin);
  sstore(&st.counts[bin], sload(&st.counts[bin]) + 1);
}

/// Unpacks bytes [shift, shift+8) of a raw 16-byte load into halfwords.
inline cellport::spu::vec_short8 bytes_to_short8(
    const cellport::spu::vec_uchar16& raw, unsigned shift) {
  using namespace cellport::spu;
  vec_uchar16 p;
  for (unsigned lane = 0; lane < 8; ++lane) {
    p.v[2 * lane] = static_cast<std::uint8_t>(shift + lane);
    p.v[2 * lane + 1] = 16;
  }
  const vec_uchar16 zero = spu_splats<vec_uchar16>(0);
  return vec_cast<vec_short8>(spu_shuffle(raw, zero, p));
}

/// Constant registers of the edge binning, loaded once per invocation.
struct EhConstants {
  cellport::spu::vec_float4 sign_clear;
  cellport::spu::vec_float4 tan_lo;
  cellport::spu::vec_float4 tan_hi;
  cellport::spu::vec_float4 mag_b2[features::kEdgeMagBins - 1];
  cellport::spu::vec_int4 zero_i;
  cellport::spu::vec_int4 i0, i1, i2, i3, i4, i5, i6, i7;
  cellport::spu::vec_int4 thresh63;
  cellport::spu::vec_short8 one_h;

  static EhConstants load() {
    using namespace cellport::spu;
    EhConstants c;
    c.sign_clear = vec_cast<vec_float4>(spu_splats<vec_uint4>(0x7FFFFFFFu));
    c.tan_lo = spu_splats<vec_float4>(kEhTanLo);
    c.tan_hi = spu_splats<vec_float4>(kEhTanHi);
    for (int k = 1; k < features::kEdgeMagBins; ++k) {
      float boundary = static_cast<float>(k) * features::kEdgeMagMax /
                       features::kEdgeMagBins;
      c.mag_b2[k - 1] = spu_splats<vec_float4>(boundary * boundary);
    }
    c.zero_i = spu_splats<vec_int4>(0);
    c.i0 = spu_splats<vec_int4>(0);
    c.i1 = spu_splats<vec_int4>(1);
    c.i2 = spu_splats<vec_int4>(2);
    c.i3 = spu_splats<vec_int4>(3);
    c.i4 = spu_splats<vec_int4>(4);
    c.i5 = spu_splats<vec_int4>(5);
    c.i6 = spu_splats<vec_int4>(6);
    c.i7 = spu_splats<vec_int4>(7);
    c.thresh63 = spu_splats<vec_int4>(63);
    c.one_h = spu_splats<vec_short8>(1);
    return c;
  }
};

/// Direction bin (octant) of 4 gradients, branch-free, matching the
/// reference's compass-centered atan2 binning for all integer gradients.
inline cellport::spu::vec_int4 octant_bin_4(
    const cellport::spu::vec_int4& gx, const cellport::spu::vec_int4& gy,
    const EhConstants& c) {
  using namespace cellport::spu;
  vec_float4 fx = spu_convtf(gx);
  vec_float4 fy = spu_convtf(gy);
  vec_float4 ax = spu_and(fx, c.sign_clear);
  vec_float4 ay = spu_and(fy, c.sign_clear);

  vec_float4 diag_m = spu_cmpgt(ay, spu_mul(ax, c.tan_lo));
  // vert: ay >= tanHi*ax  <=>  !(tanHi*ax > ay); selects last, so the
  // complement select order below implements the >= without an xor.
  vec_float4 not_vert_m = spu_cmpgt(spu_mul(ax, c.tan_hi), ay);
  vec_int4 gx_pos = vec_cast<vec_int4>(spu_cmpgt(gx, c.zero_i));
  vec_int4 gy_pos = vec_cast<vec_int4>(spu_cmpgt(gy, c.zero_i));

  vec_int4 bin_h = spu_sel(c.i4, c.i0, gx_pos);
  vec_int4 bin_v = spu_sel(c.i6, c.i2, gy_pos);
  vec_int4 bin_d = spu_sel(spu_sel(c.i5, c.i3, gy_pos),
                           spu_sel(c.i7, c.i1, gy_pos), gx_pos);

  // diagonal-or-vertical sub-pick first, then the horizontal default.
  vec_int4 dv = spu_sel(bin_v, bin_d, vec_cast<vec_int4>(not_vert_m));
  return spu_sel(bin_h, dv, vec_cast<vec_int4>(diag_m));
}

/// Magnitude bin of 4 squared gradients via 7 compare-accumulates against
/// precomputed squared boundaries (replaces the reference's sqrt):
/// bin = 7 - #{k : b2_k > mag2}.
inline cellport::spu::vec_int4 mag_bin_4(const cellport::spu::vec_int4& mag2,
                                         const EhConstants& c) {
  using namespace cellport::spu;
  vec_float4 mf = spu_convtf(mag2);  // exact: mag2 <= ~2.1M < 2^24
  vec_int4 gt_count = c.zero_i;
  for (int k = 1; k < features::kEdgeMagBins; ++k) {
    gt_count = spu_sub(
        gt_count, vec_cast<vec_int4>(spu_cmpgt(c.mag_b2[k - 1], mf)));
  }
  return spu_sub(c.i7, gt_count);
}

inline void eh_produce_row_simd(const EhState& st, int y,
                                const EhConstants& ec) {
  using namespace cellport::spu;
  const int w = st.w;
  // Border columns via the scalar float path. A one-column image has a
  // single border pixel, not two — without the early return it would be
  // binned twice (column 0 and column w-1 are the same pixel).
  eh_scalar_pixel(st, 0, y);
  if (w == 1) return;
  const std::uint8_t* rows[3] = {
      st.ring[(y - 1) % kEhRingRows] + kRingOrigin,
      st.ring[y % kEhRingRows] + kRingOrigin,
      st.ring[(y + 1) % kEhRingRows] + kRingOrigin};

  int x = 1;
  for (; x + 8 <= w - 1; x += 8) {
    vec_short8 l[3];
    vec_short8 c[3];
    vec_short8 r[3];
    for (int k = 0; k < 3; ++k) {
      vec_uchar16 raw = vld_unaligned(rows[k] + x - 1);
      l[k] = bytes_to_short8(raw, 0);
      c[k] = bytes_to_short8(raw, 1);
      r[k] = bytes_to_short8(raw, 2);
    }
    vec_short8 gx = spu_add(
        spu_add(spu_sub(r[0], l[0]), spu_sub(r[2], l[2])),
        spu_sl(spu_sub(r[1], l[1]), 1));
    vec_short8 gy = spu_sub(
        spu_add(spu_add(l[2], r[2]), spu_sl(c[2], 1)),
        spu_add(spu_add(l[0], r[0]), spu_sl(c[0], 1)));

    // Widen even/odd halfword lanes into int words (mule/mulo by 1) and
    // square via mule/mulo.
    vec_int4 gx_e = spu_mule(gx, ec.one_h);
    vec_int4 gx_o = spu_mulo(gx, ec.one_h);
    vec_int4 gy_e = spu_mule(gy, ec.one_h);
    vec_int4 gy_o = spu_mulo(gy, ec.one_h);
    vec_int4 mag2_e = spu_add(spu_mule(gx, gx), spu_mule(gy, gy));
    vec_int4 mag2_o = spu_add(spu_mulo(gx, gx), spu_mulo(gy, gy));

    // Edge mask: mag2 >= 64  <=>  mag >= 8 (exact).
    vec_int4 edge_e = vec_cast<vec_int4>(spu_cmpgt(mag2_e, ec.thresh63));
    vec_int4 edge_o = vec_cast<vec_int4>(spu_cmpgt(mag2_o, ec.thresh63));

    vec_int4 bin_e = spu_add(spu_sl(octant_bin_4(gx_e, gy_e, ec), 3),
                             mag_bin_4(mag2_e, ec));
    vec_int4 bin_o = spu_add(spu_sl(octant_bin_4(gx_o, gy_o, ec), 3),
                             mag_bin_4(mag2_o, ec));

    // Histogram scatter (scalar). Even int lanes are centers x+0,2,4,6;
    // odd lanes x+1,3,5,7.
    for (std::size_t lane = 0; lane < 4; ++lane) {
      if (spu_branch(spu_extract(edge_e, lane) != 0)) {
        auto bin = static_cast<std::uint32_t>(spu_extract(bin_e, lane));
        sstore(&st.counts[bin], sload(&st.counts[bin]) + 1);
      }
      if (spu_branch(spu_extract(edge_o, lane) != 0)) {
        auto bin = static_cast<std::uint32_t>(spu_extract(bin_o, lane));
        sstore(&st.counts[bin], sload(&st.counts[bin]) + 1);
      }
    }
    spu_loop(1);
  }
  for (; x < w - 1; ++x) eh_scalar_pixel(st, x, y);
  eh_scalar_pixel(st, w - 1, y);
}

}  // namespace cellport::kernels
