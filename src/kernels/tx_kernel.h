// TXExtract on the SPE: 4-level Haar wavelet texture energies.
//
// The full float image (330 KB) does not fit in the local store, so the
// first decomposition level is fused with the streaming gray conversion:
// row pairs are converted and Haar-stepped as they arrive, detail
// energies accumulate on the fly, and only the 176x120 LL plane (85 KB)
// is materialized. Levels 2-4 then run entirely inside the LS. This is
// Section 3.4's "adapt the kernel to run correctly in an incremental
// manner" requirement in its strongest form: the algorithm is
// restructured around the memory ceiling, not just sliced.
#pragma once

#include "port/dispatcher.h"

namespace cellport::kernels {

port::KernelModule& tx_module();

}  // namespace cellport::kernels
