#include "kernels/common.h"

#include <algorithm>

#include "support/error.h"

namespace cellport::kernels {

using namespace cellport::sim;
using namespace cellport::spu;

void dma_in(void* ls, std::uint64_t ea, std::uint32_t bytes, unsigned tag) {
  auto* dst = static_cast<std::uint8_t*>(ls);
  while (bytes > 0) {
    std::uint32_t chunk = std::min<std::uint32_t>(bytes, 16 * 1024);
    mfc_get(dst, ea, chunk, tag);
    dst += chunk;
    ea += chunk;
    bytes -= chunk;
  }
}

void dma_out(const void* ls, std::uint64_t ea, std::uint32_t bytes,
             unsigned tag) {
  const auto* src = static_cast<const std::uint8_t*>(ls);
  while (bytes > 0) {
    std::uint32_t chunk = std::min<std::uint32_t>(bytes, 16 * 1024);
    mfc_put(src, ea, chunk, tag);
    src += chunk;
    ea += chunk;
    bytes -= chunk;
  }
}

void emit_result(const void* ls, std::uint64_t ea, std::uint32_t bytes) {
  SpeContext* ctx = current_spe();
  int defer = ctx != nullptr ? ctx->defer_out_tag() : -1;
  if (defer < 0) {
    dma_out(ls, ea, bytes, 0);
    mfc_write_tag_mask(1u << 0);
    mfc_read_tag_status_all();
    return;
  }
  dma_out(ls, ea, bytes, static_cast<unsigned>(defer));
}

RowStreamer::RowStreamer(std::uint64_t base_ea, std::uint32_t stride,
                         int row_begin, int row_end, int rows_per_block,
                         int depth)
    : base_ea_(base_ea),
      stride_(stride),
      row_end_(row_end),
      rows_per_block_(rows_per_block),
      depth_(depth),
      next_row_(row_begin),
      next_fetch_(row_begin) {
  if (depth < 1 || depth > 3) {
    throw cellport::ConfigError("RowStreamer depth must be 1..3");
  }
  if (rows_per_block < 1) {
    throw cellport::ConfigError("RowStreamer needs >= 1 row per block");
  }
  // Validate the requested block shape against what is actually left in
  // the local store and clamp rather than letting the bump allocator blow
  // up mid-prime. 16 bytes of alignment slack are reserved per buffer.
  const std::size_t budget = sim::spu_ls_free();
  const std::size_t per_row = stride_;
  const std::size_t overhead = static_cast<std::size_t>(depth_) * 16;
  if (budget < overhead + static_cast<std::size_t>(depth_) * per_row) {
    throw cellport::ConfigError(
        "RowStreamer: local store cannot hold even one row per buffer");
  }
  const std::size_t max_rows =
      (budget - overhead) / (static_cast<std::size_t>(depth_) * per_row);
  if (static_cast<std::size_t>(rows_per_block_) > max_rows) {
    rows_per_block_ = static_cast<int>(max_rows);
  }
  for (int d = 0; d < depth_; ++d) {
    buf_[d] = static_cast<std::uint8_t*>(spu_ls_alloc(
        static_cast<std::size_t>(rows_per_block_) * stride_, 16));
  }
  // Prime the pipeline: issue up to `depth` prefetches.
  for (int d = 0; d < depth_ && next_fetch_ < row_end_; ++d) issue(d);
}

void RowStreamer::issue(int slot) {
  int rows = std::min(rows_per_block_, row_end_ - next_fetch_);
  buf_first_[slot] = next_fetch_;
  buf_rows_[slot] = rows;
  dma_in(buf_[slot],
         base_ea_ + static_cast<std::uint64_t>(next_fetch_) * stride_,
         static_cast<std::uint32_t>(rows) * stride_,
         static_cast<unsigned>(slot + 1));
  next_fetch_ += rows;
}

RowStreamer::Block RowStreamer::next() {
  if (!has_next()) {
    throw cellport::ConfigError("RowStreamer::next past the end");
  }
  // The block handed out by the previous call is done now; its slot can
  // be re-armed with the next prefetch. (Deferring the re-arm to here —
  // rather than re-issuing immediately after the wait — is what keeps the
  // caller's current block stable while `depth-1` fetches stay in
  // flight. With depth 1 this degenerates to issue/wait/process serially:
  // the stall the naive single-buffered ports pay.)
  if (prev_slot_ >= 0 && next_fetch_ < row_end_) issue(prev_slot_);
  int slot = head_;
  mfc_write_tag_mask(1u << static_cast<unsigned>(slot + 1));
  mfc_read_tag_status_all();
  Block b{buf_[slot], buf_first_[slot], buf_rows_[slot]};
  next_row_ = b.first_row + b.rows;
  prev_slot_ = slot;
  head_ = (head_ + 1) % depth_;
  return b;
}

vec_uchar16 vld_unaligned(const std::uint8_t* p) {
  auto addr = reinterpret_cast<std::uintptr_t>(p);
  std::uintptr_t base = addr & ~std::uintptr_t{15};
  unsigned offset = static_cast<unsigned>(addr & 15);
  auto lo = vld<vec_uchar16>(reinterpret_cast<const void*>(base));
  if (offset == 0) return lo;
  auto hi = vld<vec_uchar16>(reinterpret_cast<const void*>(base + 16));
  vec_uchar16 pattern;
  for (unsigned i = 0; i < 16; ++i) {
    pattern.v[i] = static_cast<std::uint8_t>(offset + i);
  }
  return spu_shuffle(lo, hi, pattern);
}

}  // namespace cellport::kernels
