// cellfeed on the SPE: DMA-list ingest of packed P6 pixel rows.
//
// The feed kernel is the data-touching half of PPM decode moved off the
// PPE (the paper's core porting strategy applied to ingest): a DMA list
// gathers the byte-packed source rows, the SPU shifts/unpacks them to the
// destination image's 16-byte row stride, and a second DMA list scatters
// whole finished rows — multi-buffered so the gather of tile w+2, the
// unpack of tile w+1, and the scatter of tile w overlap in time.
#pragma once

#include <cstdint>
#include <vector>

#include "port/dispatcher.h"

namespace cellport::kernels {

/// Registers the feed ingest entry point under SPU_Run_Feed, so ingest
/// row ranges ride whichever extract SPEs the scenario already scheduled.
void register_feed(port::KernelModule& module);

/// Test-only pipeline telemetry: per-tile simulated-time stamps proving
/// that get(w+2) / unpack(w+1) / put(w) really overlap. The sink must
/// outlive the kernel calls; pass nullptr to disable. Not synchronized —
/// single-threaded test use only.
struct FeedTileTrace {
  int tile = 0;
  double get_issue_ns = 0;     // gather list issued
  double unpack_begin_ns = 0;  // gather complete, unpack starts
  double unpack_end_ns = 0;
  double put_issue_ns = 0;     // scatter list issued (not yet waited)
};
void set_feed_trace_sink(std::vector<FeedTileTrace>* sink);

}  // namespace cellport::kernels
