// CHExtract on the SPE: 166-bin HSV color histogram.
//
// Two entry points, one module (the paper's iterative-optimization story:
// "different kernel versions that adhere to the same interface can be
// easily plugged in via the SPEInterface stub"):
//   SPU_Run        — optimized: multi-buffered row DMA, 4-way SIMD HSV
//                    quantization (hsv_simd.h), branch-free binning.
//   SPU_Run_Naive  — the straight C port measured in Section 5.3 before
//                    optimization: single-buffered DMA, scalar math with
//                    SPU scalar access penalties and unhinted branches.
#pragma once

#include "port/dispatcher.h"

namespace cellport::kernels {

/// The CHExtract kernel module (loadable on any SPE).
port::KernelModule& ch_module();

}  // namespace cellport::kernels
