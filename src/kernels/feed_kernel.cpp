#include "kernels/feed_kernel.h"

#include <algorithm>
#include <cstring>

#include "kernels/common.h"
#include "kernels/messages.h"
#include "spu/spu.h"
#include "support/aligned.h"
#include "support/error.h"

namespace cellport::kernels {

namespace {

using namespace cellport::sim;
using namespace cellport::spu;

std::vector<FeedTileTrace>* g_feed_sink = nullptr;

inline double feed_now() {
  SpeContext* ctx = current_spe();
  return ctx != nullptr ? ctx->now_ns() : 0.0;
}

/// Per-slot DMA tags: gets on 1..3, puts on 4..6 (tag 0 is the message
/// fetch). Distinct groups let one wait cover "gather of this tile done
/// AND the scatter that last used this slot's out-buffer drained".
inline unsigned get_tag(int slot) { return static_cast<unsigned>(1 + slot); }
inline unsigned put_tag(int slot) { return static_cast<unsigned>(4 + slot); }

struct FeedPlan {
  int depth = 0;      // buffers actually allocated (may degrade 3->2->1)
  int tile_rows = 0;  // rows per DMA-list tile after the LS clamp
};

/// Clamps the requested tile shape to the local-store budget, degrading
/// the buffering depth before giving up: a narrow LS still streams
/// single-buffered rather than falling back to the PPE.
FeedPlan plan_tiles(int want_depth, int want_rows, int total_rows,
                    std::size_t in_row_cap, std::size_t out_stride) {
  const std::size_t budget = spu_ls_free();
  // Each tile row costs one gathered window, one unpacked row, and two
  // list elements, times the buffering depth; 64 bytes of alignment
  // slack are reserved per slot.
  const std::size_t per_row =
      in_row_cap + out_stride + 2 * sizeof(MfcListElement);
  for (int depth = want_depth; depth >= 1; --depth) {
    const std::size_t overhead = static_cast<std::size_t>(depth) * 64;
    if (budget <= overhead) continue;
    const std::size_t max_rows =
        (budget - overhead) / (static_cast<std::size_t>(depth) * per_row);
    if (max_rows < 1) continue;
    FeedPlan plan;
    plan.depth = depth;
    plan.tile_rows = static_cast<int>(
        std::min<std::size_t>({static_cast<std::size_t>(want_rows),
                               max_rows,
                               static_cast<std::size_t>(total_rows)}));
    return plan;
  }
  throw cellport::ConfigError(
      "feed: local store cannot hold even one single-buffered row");
}

int feed_run(std::uint64_t ea) {
  auto* msg = static_cast<FeedMsg*>(spu_ls_alloc(sizeof(FeedMsg)));
  fetch_msg(msg, ea);

  const int w = msg->width;
  const int r0 = msg->row_begin;
  const int r1 = msg->row_end > 0 ? msg->row_end : msg->height;
  const auto row_bytes = static_cast<std::uint32_t>(w) * 3;
  const auto stride = static_cast<std::uint32_t>(msg->dst_stride);
  if (w <= 0 || r1 <= r0 || r1 > msg->height || stride % 16 != 0 ||
      stride < row_bytes) {
    throw cellport::ConfigError("feed: malformed FeedMsg geometry");
  }
  // Worst-case gathered window per source row: the packed row plus up to
  // 15 leading bytes to the enclosing quadword boundary.
  const std::uint32_t in_row_cap =
      static_cast<std::uint32_t>(cellport::round_up(row_bytes + 15, 16));
  if (in_row_cap > Mfc::kMaxTransfer || stride > Mfc::kMaxTransfer) {
    // One row no longer fits one list element; the engine answers this
    // with its PPE-decode fallback.
    throw cellport::ConfigError("feed: row exceeds the 16KiB MFC maximum");
  }

  const int total_rows = r1 - r0;
  FeedPlan plan = plan_tiles(
      std::clamp<int>(msg->buffering, 1, 3),
      msg->rows_per_tile > 0 ? msg->rows_per_tile : 16, total_rows,
      in_row_cap, stride);
  const int depth = plan.depth;
  const int tile_rows = plan.tile_rows;
  const int ntiles = (total_rows + tile_rows - 1) / tile_rows;

  std::uint8_t* in_buf[3] = {};
  std::uint8_t* out_buf[3] = {};
  MfcListElement* in_el[3] = {};
  MfcListElement* out_el[3] = {};
  for (int d = 0; d < depth; ++d) {
    in_buf[d] = static_cast<std::uint8_t*>(
        spu_ls_alloc(static_cast<std::size_t>(tile_rows) * in_row_cap));
    out_buf[d] = static_cast<std::uint8_t*>(
        spu_ls_alloc(static_cast<std::size_t>(tile_rows) * stride));
    in_el[d] = spu_ls_alloc_array<MfcListElement>(
        static_cast<std::size_t>(tile_rows));
    out_el[d] = spu_ls_alloc_array<MfcListElement>(
        static_cast<std::size_t>(tile_rows));
  }

  auto tile_range = [&](int tile, int& first, int& rows) {
    first = r0 + tile * tile_rows;
    rows = std::min(tile_rows, r1 - first);
  };

  // Issues the gather list for one tile: one element per packed source
  // row, widened to its enclosing aligned window.
  auto issue_get = [&](int slot, int tile) {
    int first = 0;
    int rows = 0;
    tile_range(tile, first, rows);
    if (g_feed_sink != nullptr) {
      g_feed_sink->push_back(FeedTileTrace{tile, feed_now(), 0, 0, 0});
    }
    for (int i = 0; i < rows; ++i) {
      std::uint64_t rea =
          msg->src_ea + static_cast<std::uint64_t>(first + i) * row_bytes;
      std::uint64_t base = rea & ~std::uint64_t{15};
      in_el[slot][i].ea = base;
      in_el[slot][i].size = static_cast<std::uint32_t>(cellport::round_up(
          static_cast<std::size_t>(rea - base) + row_bytes, 16));
      sop(4);  // element build: address split + size round-up
      spu_loop(1);
    }
    mfc_getl(in_buf[slot], std::span(in_el[slot], rows), get_tag(slot));
  };

  // Unpacks one gathered tile to the aligned stride and issues its
  // scatter list (whole destination rows — legal transfers by the
  // RgbImage layout contract: rows are 16-byte aligned, stride a 16-byte
  // multiple).
  auto unpack_and_put = [&](int slot, int tile) {
    int first = 0;
    int rows = 0;
    tile_range(tile, first, rows);
    const std::uint8_t* src = in_buf[slot];
    const std::uint64_t quads = (row_bytes + 15) / 16;
    for (int i = 0; i < rows; ++i) {
      std::uint64_t rea =
          msg->src_ea + static_cast<std::uint64_t>(first + i) * row_bytes;
      auto off = static_cast<std::size_t>(rea & 15);
      std::uint8_t* dst = out_buf[slot] + static_cast<std::size_t>(i) * stride;
      std::memcpy(dst, src + off, row_bytes);
      std::memset(dst + row_bytes, 0, stride - row_bytes);
      src += cellport::round_up(off + row_bytes, 16);
      // The shift-unpack is quadword traffic: load + store per quad on
      // the odd pipe, one shuffle per quad on the even pipe.
      charge_odd(static_cast<double>(2 * quads));
      sop(static_cast<double>(quads));
      spu_loop(1);
      out_el[slot][i].ea =
          msg->dst_ea + static_cast<std::uint64_t>(first + i) * stride;
      out_el[slot][i].size = stride;
    }
    mfc_putl(out_buf[slot], std::span(out_el[slot], rows), put_tag(slot));
  };

  // Prime: gather the first `depth` tiles back to back.
  for (int d = 0; d < depth && d < ntiles; ++d) issue_get(d, d);

  for (int t = 0; t < ntiles; ++t) {
    const int slot = t % depth;
    // One wait covers this tile's gather AND the scatter that last used
    // this slot's out-buffer (tile t-depth) — the put must drain before
    // the unpack overwrites its source bytes.
    std::uint32_t mask = 1u << get_tag(slot);
    if (t >= depth) mask |= 1u << put_tag(slot);
    mfc_write_tag_mask(mask);
    mfc_read_tag_status_all();
    FeedTileTrace* trace = nullptr;
    if (g_feed_sink != nullptr) {
      for (auto& rec : *g_feed_sink) {
        if (rec.tile == t) trace = &rec;
      }
    }
    if (trace != nullptr) trace->unpack_begin_ns = feed_now();
    unpack_and_put(slot, t);
    if (trace != nullptr) {
      trace->unpack_end_ns = trace->put_issue_ns = feed_now();
    }
    // Re-arm the slot with the gather of tile t+depth: it overlaps the
    // unpack of t+1 and the scatter of t still in flight.
    if (t + depth < ntiles) issue_get(slot, t + depth);
  }

  // Drain the outstanding scatters before reporting completion.
  std::uint32_t mask = 0;
  for (int d = 0; d < depth && d < ntiles; ++d) mask |= 1u << put_tag(d);
  mfc_write_tag_mask(mask);
  mfc_read_tag_status_all();
  return 0;
}

}  // namespace

void register_feed(port::KernelModule& module) {
  module.add_function(SPU_Run_Feed, &feed_run);
}

void set_feed_trace_sink(std::vector<FeedTileTrace>* sink) {
  g_feed_sink = sink;
}

}  // namespace cellport::kernels
