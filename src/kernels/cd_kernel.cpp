#include "kernels/cd_kernel.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "kernels/common.h"
#include "kernels/feed_kernel.h"
#include "kernels/messages.h"
#include "learn/svm.h"
#include "spu/spu.h"
#include "support/aligned.h"

namespace cellport::kernels {

namespace {

using namespace cellport::sim;
using namespace cellport::spu;

constexpr int kSvsPerChunk = 16;

/// RBF term 'squared distance' between the LS-resident feature vector and
/// one support vector, 4 floats at a time with the same per-lane float
/// operations as the reference (partial sums are reduced at the end, the
/// one tolerated reassociation).
float dist2_simd(const float* x, const float* sv, int dim) {
  vec_float4 acc = spu_splats<vec_float4>(0.0f);
  int d = 0;
  for (; d + 4 <= dim; d += 4) {
    vec_float4 diff = spu_sub(vld<vec_float4>(sv + d),
                              vld<vec_float4>(x + d));
    acc = spu_madd(diff, diff, acc);
  }
  spu_loop(dim / 16.0);  // 4x unrolled loop overhead
  charge_odd(3);
  charge_even(3);
  float total = acc.v[0] + acc.v[1] + acc.v[2] + acc.v[3];
  for (; d < dim; ++d) {
    sop(3);
    charge_odd(4);
    float diff = sv[d] - x[d];
    total += diff * diff;
  }
  return total;
}

float dot_simd(const float* x, const float* sv, int dim) {
  vec_float4 acc = spu_splats<vec_float4>(0.0f);
  int d = 0;
  for (; d + 4 <= dim; d += 4) {
    acc = spu_madd(vld<vec_float4>(sv + d), vld<vec_float4>(x + d), acc);
  }
  spu_loop(dim / 16.0);  // 4x unrolled loop overhead
  charge_odd(3);
  charge_even(3);
  float total = acc.v[0] + acc.v[1] + acc.v[2] + acc.v[3];
  for (; d < dim; ++d) {
    sop(2);
    charge_odd(4);
    total += sv[d] * x[d];
  }
  return total;
}

int cd_run(std::uint64_t ea) {
  auto* msg = static_cast<DetectMsg*>(spu_ls_alloc(sizeof(DetectMsg)));
  fetch_msg(msg, ea);
  const int dim = msg->dim;
  const int n_models = msg->num_models;

  // Feature vector and model descriptors arrive with one DMA each.
  const std::size_t dim_padded =
      cellport::round_up(static_cast<std::size_t>(dim), 4);
  auto* x = spu_ls_alloc_array<float>(dim_padded);
  dma_in(x, msg->feature_ea,
         static_cast<std::uint32_t>(dim_padded * sizeof(float)), 0);
  // cellshard: a concept-block shard starts model_begin descriptors into
  // the shared array (sizeof(DetectModelDesc) is a 16-multiple, so the
  // offset keeps DMA alignment); scores_ea then points at the shard's
  // own staging buffer.
  auto* descs = spu_ls_alloc_array<DetectModelDesc>(
      static_cast<std::size_t>(n_models));
  dma_in(descs,
         msg->models_ea + static_cast<std::uint64_t>(msg->model_begin) *
                              sizeof(DetectModelDesc),
         static_cast<std::uint32_t>(sizeof(DetectModelDesc)) *
             static_cast<std::uint32_t>(n_models),
         0);
  auto* scores = spu_ls_alloc_array<double>(
      cellport::round_up(static_cast<std::size_t>(n_models), 2));
  mfc_write_tag_mask(1u << 0);
  mfc_read_tag_status_all();

  for (int m = 0; m < n_models; ++m) {
    const DetectModelDesc& desc = descs[m];
    // Coefficients in one transfer.
    const std::size_t coef_padded =
        cellport::round_up(static_cast<std::size_t>(desc.num_sv), 4);
    auto* coef = spu_ls_alloc_array<float>(coef_padded);
    dma_in(coef, desc.coef_ea,
           static_cast<std::uint32_t>(coef_padded * sizeof(float)), 0);
    mfc_write_tag_mask(1u << 0);
    mfc_read_tag_status_all();

    // Stream support vectors: "rows" of sv_stride floats.
    RowStreamer stream(desc.sv_ea,
                       static_cast<std::uint32_t>(desc.sv_stride) *
                           sizeof(float),
                       0, desc.num_sv, kSvsPerChunk, msg->buffering);
    double acc = 0.0;
    int i = 0;
    while (stream.has_next()) {
      RowStreamer::Block blk = stream.next();
      for (int r = 0; r < blk.rows; ++r, ++i) {
        const auto* sv = reinterpret_cast<const float*>(
            blk.data + static_cast<std::size_t>(r) * desc.sv_stride *
                           sizeof(float));
        double k;
        if (desc.kernel_type ==
            static_cast<std::int32_t>(learn::SvmKernelType::kLinear)) {
          k = dot_simd(x, sv, dim);
        } else {
          float d2 = dist2_simd(x, sv, dim);
          // Software double exp: ~20 double-precision ops.
          charge_double_op(20);
          k = std::exp(-static_cast<double>(desc.gamma) * d2);
        }
        charge_double_op(2);
        charge_odd(2);
        acc += static_cast<double>(coef[i]) * k;
        spu_loop(1);
      }
    }
    charge_double_op(1);
    scores[m] = acc - desc.rho;
  }

  emit_result(scores, msg->scores_ea,
              static_cast<std::uint32_t>(
                  cellport::round_up(static_cast<std::size_t>(n_models),
                                     2) *
                  sizeof(double)));
  return 0;
}

// ---- kNN detection (the alternative classifier of Section 5.1) ----

constexpr std::uint32_t kKnnOpcode = 4;

int knn_run(std::uint64_t ea) {
  auto* msg = static_cast<KnnMsg*>(spu_ls_alloc(sizeof(KnnMsg)));
  fetch_msg(msg, ea);
  const int dim = msg->dim;
  const int k = msg->k;
  const int n = msg->num_exemplars;

  const std::size_t dim_padded =
      cellport::round_up(static_cast<std::size_t>(dim), 4);
  auto* x = spu_ls_alloc_array<float>(dim_padded);
  dma_in(x, msg->feature_ea,
         static_cast<std::uint32_t>(dim_padded * sizeof(float)), 0);
  const std::size_t n_padded =
      cellport::round_up(static_cast<std::size_t>(n), 4);
  auto* labels = spu_ls_alloc_array<std::int32_t>(n_padded);
  dma_in(labels, msg->labels_ea,
         static_cast<std::uint32_t>(n_padded * sizeof(std::int32_t)), 0);
  mfc_write_tag_mask(1u << 0);
  mfc_read_tag_status_all();

  // Top-k by (distance, index), kept sorted by scalar insertion — k is
  // small (3..9), so the insertion cost is a handful of compares.
  struct Neighbor {
    double dist;
    int index;
  };
  auto* top = spu_ls_alloc_array<Neighbor>(static_cast<std::size_t>(k));
  int filled = 0;

  RowStreamer stream(
      msg->exemplars_ea,
      static_cast<std::uint32_t>(msg->stride) * sizeof(float), 0, n,
      kSvsPerChunk, msg->buffering);
  int i = 0;
  while (stream.has_next()) {
    RowStreamer::Block blk = stream.next();
    for (int r = 0; r < blk.rows; ++r, ++i) {
      const auto* e = reinterpret_cast<const float*>(
          blk.data +
          static_cast<std::size_t>(r) * msg->stride * sizeof(float));
      // Reference KnnClassifier accumulates the squared distance in
      // double, element by element — mirrored here so the neighbor
      // ordering is bit-identical (DP ops at the SPU's 2-per-7 rate).
      charge_double_op(2.0 * dim);
      charge_odd(2.0 * dim);
      double d = 0;
      for (int j = 0; j < dim; ++j) {
        double diff = static_cast<double>(e[j]) - x[j];
        d += diff * diff;
      }
      spu_loop(dim / 8.0);
      // Insert into the top-k (predicate matches the reference's
      // (dist, index) ordering).
      sop(2 * k);
      charge_odd(k);
      if (filled < k) {
        top[filled++] = {d, i};
        for (int s = filled - 1;
             s > 0 && (top[s].dist < top[s - 1].dist ||
                       (top[s].dist == top[s - 1].dist &&
                        top[s].index < top[s - 1].index));
             --s) {
          std::swap(top[s], top[s - 1]);
        }
      } else if (d < top[k - 1].dist ||
                 (d == top[k - 1].dist && i < top[k - 1].index)) {
        top[k - 1] = {d, i};
        for (int s = k - 1;
             s > 0 && (top[s].dist < top[s - 1].dist ||
                       (top[s].dist == top[s - 1].dist &&
                        top[s].index < top[s - 1].index));
             --s) {
          std::swap(top[s], top[s - 1]);
        }
      }
    }
  }

  // Scores: per label, 2 * (fraction among the k nearest) - 1.
  auto* scores = spu_ls_alloc_array<double>(
      cellport::round_up(static_cast<std::size_t>(msg->num_labels), 2));
  for (int l = 0; l < msg->num_labels; ++l) {
    sop(4 + filled);
    charge_double_op(3);
    int votes = 0;
    for (int s = 0; s < filled; ++s) {
      if (labels[top[s].index] == l) ++votes;
    }
    scores[l] = 2.0 * (static_cast<double>(votes) /
                       static_cast<double>(filled)) -
                1.0;
  }
  emit_result(scores, msg->scores_ea,
              static_cast<std::uint32_t>(
                  cellport::round_up(
                      static_cast<std::size_t>(msg->num_labels), 2) *
                  sizeof(double)));
  return 0;
}

}  // namespace

std::uint32_t cd_knn_opcode() { return kKnnOpcode; }

port::KernelModule& cd_module() {
  // ~20 KiB code image (SVM + kNN paths).
  static port::KernelModule module("ConceptDet", 20 * 1024);
  static bool registered = (module.add_function(SPU_Run, &cd_run)
                                .add_function(kKnnOpcode, &knn_run),
                            register_feed(module),
                            true);
  (void)registered;
  return module;
}

}  // namespace cellport::kernels
