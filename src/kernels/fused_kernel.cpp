#include "kernels/fused_kernel.h"

#include <algorithm>
#include <cstring>

#include "features/color_correlogram.h"
#include "features/edge_histogram.h"
#include "features/texture.h"
#include "img/color.h"
#include "kernels/cc_window.h"
#include "kernels/common.h"
#include "kernels/eh_edge.h"
#include "kernels/hsv_simd.h"
#include "kernels/messages.h"
#include "kernels/row_convert.h"
#include "kernels/tx_haar.h"
#include "spu/spu.h"
#include "support/aligned.h"

namespace cellport::kernels {

namespace {

using namespace cellport::sim;
using namespace cellport::spu;

// 8-row DMA blocks (vs the standalone kernels' 12/16): the fused kernel
// holds BOTH byte rings plus the Haar LL rows in the LS, so the streaming
// window is the knob that keeps wide images under the 256 KiB budget.
constexpr int kFusedBlockRows = 8;

// One pass, four features. Row roles differ per feature:
//   - quantized (HSV-bin) rows cover [r0 - 8, r1 + 8): the correlogram
//     window halo. Rows inside [r0, r1) are quantized WITH the histogram
//     counting hooks (4 conflict-free LS sub-histograms, one per SIMD
//     lane); halo rows run the plain quantizer, exactly like a CH shard
//     that counts only its own range.
//   - gray rows cover [r0 - 1, r1 + 1): the Sobel halo; the Haar level-1
//     step consumes pairs of the same ring rows for input rows
//     [r0, min(r1, heff)).
// Production functions and their lag discipline are the standalone
// kernels' own (cc_produce_row at 8 rows behind, eh rows 1 behind, a
// texture tile finished every 8 LL rows), so counts and tile moments are
// bit-identical to four separate shard invocations over the same range.
int fused_run(std::uint64_t ea) {
  auto* msg = static_cast<ImageMsg*>(spu_ls_alloc(sizeof(ImageMsg)));
  fetch_msg(msg, ea);
  const int w = msg->width;
  const int h = msg->height;

  const bool shard = msg->row_end > 0;
  const int r0 = shard ? msg->row_begin : 0;
  const int r1 = shard ? msg->row_end : h;

  // ---- texture geometry (skipped entirely below one Haar tile) ----
  const int half_w = w / 2;
  const int half_h = h / 2;
  const int heff = half_h * 2;
  const int tx_doubles = fused_tx_doubles(w, h, r0, r1);
  const bool tx_on = tx_doubles > 0;
  const int tx_end = std::min(r1, heff);
  if (tx_on && r0 % kTxTileRows != 0) {
    throw cellport::ConfigError("fused shard must start on a tile boundary");
  }
  if (tx_on && tx_end != heff && tx_end % kTxTileRows != 0) {
    throw cellport::ConfigError("fused shard must end on a tile boundary");
  }
  const int t0 = tx_on ? r0 / kTxTileRows : 0;

  // ---- the fused partial: one contiguous LS block, one output DMA ----
  auto* blob = static_cast<std::uint32_t*>(spu_ls_alloc(
      static_cast<std::size_t>(fused_partial_bytes(w, h, r0, r1)), 16));
  std::memset(blob, 0,
              static_cast<std::size_t>(fused_partial_bytes(w, h, r0, r1)));
  std::uint32_t* ch_hist = blob;  // merged from the banks at the end
  auto* tx_partials = reinterpret_cast<double*>(
      reinterpret_cast<std::uint8_t*>(blob) + kFusedCountBytes);

  // CH: four conflict-free sub-histograms, one per SIMD lane, so the four
  // scatter updates of a quantized group have no serial LS dependency.
  const std::size_t hist_len =
      cellport::round_up(std::size_t{img::kHsvBins}, 4);
  std::uint32_t* banks[4];
  for (auto& b : banks) {
    b = spu_ls_alloc_array<std::uint32_t>(hist_len);
    std::memset(b, 0, hist_len * sizeof(std::uint32_t));
  }

  // CC state: quantized-row ring + window scatter targets inside the blob.
  CcState cc_st;
  cc_st.row_bytes = static_cast<int>(cellport::round_up(
      static_cast<std::size_t>(kRingOrigin + w + 24), 16));
  for (auto& r : cc_st.ring) {
    r = static_cast<std::uint8_t*>(
        spu_ls_alloc(static_cast<std::size_t>(cc_st.row_bytes), 16));
    std::memset(r, kCcSentinel, static_cast<std::size_t>(cc_st.row_bytes));
  }
  cc_st.same = blob + kFusedCcOffset;
  cc_st.possible = blob + kFusedCcOffset + hist_len;
  cc_st.cols_clamped = spu_ls_alloc_array<std::uint16_t>(
      cellport::round_up(static_cast<std::size_t>(w), 8));
  for (int x = 0; x < w; ++x) {
    sop(4);
    cc_st.cols_clamped[x] = static_cast<std::uint16_t>(
        std::min(w - 1, x + kCcRadius) - std::max(0, x - kCcRadius) + 1);
  }

  // EH state: gray-row ring (shared with the Haar step) + blob counts.
  EhState eh_st;
  eh_st.w = w;
  eh_st.h = h;
  for (auto& r : eh_st.ring) {
    r = static_cast<std::uint8_t*>(
        spu_ls_alloc(static_cast<std::size_t>(cc_st.row_bytes), 16));
    std::memset(r, 0, static_cast<std::size_t>(cc_st.row_bytes));
  }
  eh_st.counts = blob + kFusedEhOffset;

  // TX state: per-tile LL rows of each level (exactly tx_run's layout).
  const int lvl_w[4] = {half_w, half_w / 2, half_w / 4, half_w / 8};
  const int lvl_h[4] = {half_h, half_h / 2, half_h / 4, half_h / 8};
  int lvl_stride[4] = {};
  float* ll[4] = {};
  if (tx_on) {
    for (int l = 0; l < 4; ++l) {
      lvl_stride[l] = static_cast<int>(
          cellport::round_up(static_cast<std::size_t>(lvl_w[l]), 4));
      const int tile_rows = kTxTileRows >> (l + 1);  // 8, 4, 2, 1
      ll[l] = spu_ls_alloc_array<float>(
          static_cast<std::size_t>(lvl_stride[l]) * tile_rows);
    }
  }
  Energies acc[features::kTextureLevels];
  int tile = t0;
  int tile_ll_rows = 0;

  // Levels 2..4 over the finished tile's LL rows, then the 12-double tile
  // partial — byte-for-byte tx_run's finish_tile in shard mode.
  auto finish_tile = [&]() {
    for (int l = 1; l < features::kTextureLevels; ++l) {
      const int span = kTxTileRows >> l;
      const int y_begin = tile * span / 2;
      const int y_end = std::min((tile + 1) * span / 2, lvl_h[l]);
      for (int y = y_begin; y < y_end; ++y) {
        const int local = 2 * y - tile * span;
        const float* p0 =
            ll[l - 1] + static_cast<std::size_t>(local) * lvl_stride[l - 1];
        const float* p1 = p0 + lvl_stride[l - 1];
        auto fetch_from = [&](const float* row) {
          return [row](int x, vec_float4& e, vec_float4& o) {
            deinterleave_floats(row + 2 * x, e, o);
          };
        };
        haar_rows(lvl_w[l], fetch_from(p0), fetch_from(p1),
                  ll[l] + static_cast<std::size_t>(y - y_begin) *
                              lvl_stride[l],
                  acc[l]);
      }
    }
    int idx = 0;
    for (int l = 0; l < features::kTextureLevels; ++l) {
      for (const vec_float4* a : {&acc[l].lh, &acc[l].hl, &acc[l].hh}) {
        tx_partials[static_cast<std::size_t>(tile - t0) * kTxTileDoubles +
                    idx] = reduce4(*a);
        ++idx;
      }
      acc[l] = Energies{};
    }
    tile_ll_rows = 0;
    ++tile;
  };

  // ---- the single streaming pass ----
  const int fetch_begin = std::max(0, r0 - kCcRadius);
  const int fetch_end = std::min(h, r1 + kCcRadius);
  const int gray_begin = std::max(0, r0 - 1);
  const int gray_end = std::min(h, r1 + 1);

  const HsvConstants hsv_c = HsvConstants::load();
  const EhConstants eh_c = EhConstants::load();

  // Sub-histogram scatter for one quantized group: lane k updates bank k,
  // so the four load-add-store chains are independent and dual-issue
  // cleanly (vs the standalone kernel's serial single-histogram chain).
  auto count4 = [&](const vec_int4& bins) {
    charge_odd(8);   // 4 load-rotates, pipelined across banks
    charge_even(4);  // 4 increments
    charge_odd(4);   // 4 stores, no inter-lane dependency
    for (std::size_t lane = 0; lane < 4; ++lane) {
      auto bin = static_cast<std::uint32_t>(spu_extract(bins, lane));
      banks[lane][bin] += 1;
    }
  };
  auto count1 = [&](std::uint8_t bin) {
    sstore(&banks[0][bin], sload(&banks[0][bin]) + 1);
  };

  RowStreamer stream(
      msg->pixels_ea, static_cast<std::uint32_t>(msg->stride), fetch_begin,
      fetch_end, msg->block_rows > 0 ? msg->block_rows : kFusedBlockRows,
      msg->buffering);
  int computed_to = fetch_begin;  // quantized rows (absolute, exclusive)
  int cc_produced = r0;
  int eh_produced = r0;

  auto eh_row = [&](int y) {
    if (y == 0 || y == h - 1) {
      for (int x = 0; x < w; ++x) eh_scalar_pixel(eh_st, x, y);
    } else {
      eh_produce_row_simd(eh_st, y, eh_c);
    }
  };

  while (stream.has_next()) {
    RowStreamer::Block blk = stream.next();
    for (int r = 0; r < blk.rows; ++r) {
      const int row_idx = blk.first_row + r;
      const std::uint8_t* rgb =
          blk.data + static_cast<std::size_t>(r) * msg->stride;
      const bool own = row_idx >= r0 && row_idx < r1;
      // Per-row role dispatch (glue the standalone kernels don't pay).
      sop(4);
      charge_odd(2);
      std::uint8_t* cc_dst =
          cc_st.ring[row_idx % kCcRingRows] + kRingOrigin;
      if (own) {
        quantize_row_counted(rgb, w, cc_dst, hsv_c, count4, count1);
      } else {
        quantize_row_simd(rgb, w, cc_dst, hsv_c);
      }
      if (row_idx >= gray_begin && row_idx < gray_end) {
        gray_row_simd(rgb, w,
                      eh_st.ring[row_idx % kEhRingRows] + kRingOrigin);
      }
      if (tx_on && row_idx >= r0 && row_idx < tx_end &&
          (row_idx & 1) != 0) {
        // Row pair (row_idx - 1, row_idx) is complete in the gray ring:
        // Haar-step it straight out of the ring (no re-conversion, no
        // staging copy — the fusion win for the texture path).
        const std::uint8_t* g0 =
            eh_st.ring[(row_idx - 1) % kEhRingRows] + kRingOrigin;
        const std::uint8_t* g1 =
            eh_st.ring[row_idx % kEhRingRows] + kRingOrigin;
        auto fetch0 = [&](int x, vec_float4& e, vec_float4& o) {
          load_even_odd(g0 + 2 * x, e, o);
        };
        auto fetch1 = [&](int x, vec_float4& e, vec_float4& o) {
          load_even_odd(g1 + 2 * x, e, o);
        };
        haar_rows(half_w, fetch0, fetch1,
                  ll[0] + static_cast<std::size_t>(tile_ll_rows) *
                              lvl_stride[0],
                  acc[0]);
        ++tile_ll_rows;
        if (tile_ll_rows == kTxTileRows / 2) finish_tile();
      }
      ++computed_to;
    }
    while (cc_produced < r1 && (cc_produced + kCcRadius < computed_to ||
                                computed_to == fetch_end)) {
      cc_produce_row(cc_st, cc_produced, w, h);
      ++cc_produced;
    }
    const int gray_to = std::min(computed_to, gray_end);
    while (eh_produced < r1 &&
           (eh_produced + 1 < gray_to || gray_to == gray_end)) {
      eh_row(eh_produced);
      ++eh_produced;
    }
  }
  while (cc_produced < r1) {
    cc_produce_row(cc_st, cc_produced, w, h);
    ++cc_produced;
  }
  while (eh_produced < r1) {
    eh_row(eh_produced);
    ++eh_produced;
  }
  if (tx_on && tile_ll_rows > 0) finish_tile();

  // Merge the four sub-histograms into the blob's CH section (vector
  // adds; integer sums, so the bank split never changes the counts).
  for (std::size_t i = 0; i < hist_len; i += 4) {
    vec_int4 s = spu_add(
        spu_add(vld<vec_int4>(&banks[0][i]), vld<vec_int4>(&banks[1][i])),
        spu_add(vld<vec_int4>(&banks[2][i]), vld<vec_int4>(&banks[3][i])));
    vst(&ch_hist[i], s);
    spu_loop(1);
  }

  emit_result(blob, msg->out_ea,
              static_cast<std::uint32_t>(fused_partial_bytes(w, h, r0, r1)));
  return 0;
}

}  // namespace

void register_fused(port::KernelModule& module) {
  module.add_function(SPU_Run_Fused, &fused_run);
}

}  // namespace cellport::kernels
