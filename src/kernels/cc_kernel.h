// CCExtract on the SPE: 17x17-window HSV auto-correlogram.
//
// The optimized version (SPU_Run) streams RGB rows through the local
// store with multi-buffered DMA, quantizes them with the 4-way SIMD HSV
// quantizer into a ring buffer of bin rows (17 + block rows deep), and
// counts same-bin neighbors 16 centers at a time with byte-compare
// SIMD: per window offset, one unaligned vector load + compare + masked
// accumulate. Image borders are handled with sentinel columns (0xFF
// never matches a real bin) so the SIMD loop needs no edge branches; the
// per-pixel clamped window area is accounted analytically, exactly as
// the scalar reference clamps its windows.
//
// The naive version (SPU_Run_Naive) is the straight C port of
// Section 5.3: scalar byte loads, a branchy inner compare whose taken
// branches flush the unhinted SPU pipeline — the kernel that famously
// ran 0.43x (slower than the PPE) before optimization.
#pragma once

#include "port/dispatcher.h"

namespace cellport::kernels {

port::KernelModule& cc_module();

}  // namespace cellport::kernels
