#include "kernels/eh_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "features/edge_histogram.h"
#include "img/slice.h"
#include "kernels/common.h"
#include "kernels/eh_edge.h"
#include "kernels/feed_kernel.h"
#include "kernels/fused_kernel.h"
#include "kernels/messages.h"
#include "kernels/row_convert.h"
#include "spu/spu.h"
#include "support/aligned.h"

namespace cellport::kernels {

namespace {

using namespace cellport::sim;
using namespace cellport::spu;

// The gray converter, ring state, and the Sobel/binning production
// (eh_scalar_pixel, eh_produce_row_simd) live in eh_edge.h /
// row_convert.h, shared verbatim with the cellfuse single-pass kernel.
constexpr int kBlockRows = kEhBlockRows;
constexpr int kRingRows = kEhRingRows;
constexpr int kRowOrigin = kRingOrigin;
constexpr float kTwoPi = kEhTwoPi;

int eh_run(std::uint64_t ea) {
  auto* msg = static_cast<ImageMsg*>(spu_ls_alloc(sizeof(ImageMsg)));
  fetch_msg(msg, ea);

  EhState st;
  st.w = msg->width;
  st.h = msg->height;
  const int row_bytes = static_cast<int>(cellport::round_up(
      static_cast<std::size_t>(kRowOrigin + st.w + 24), 16));
  for (auto& r : st.ring) {
    r = static_cast<std::uint8_t*>(
        spu_ls_alloc(static_cast<std::size_t>(row_bytes), 16));
    std::memset(r, 0, static_cast<std::size_t>(row_bytes));
  }
  constexpr std::size_t kBins =
      features::kEdgeAngleBins * features::kEdgeMagBins;
  st.counts = spu_ls_alloc_array<std::uint32_t>(kBins);
  std::memset(st.counts, 0, kBins * sizeof(std::uint32_t));

  // cellshard: a shard bins gradient rows [out_begin, out_end) and
  // fetches a one-row halo on each side (the Sobel window); clamping in
  // scalar_pixel/produce_row_simd still uses the true image edges, so a
  // shard's counts are exactly its slice of the full-image counts.
  const bool shard = msg->row_end > 0;
  const int out_begin = shard ? msg->row_begin : 0;
  const int out_end = shard ? msg->row_end : st.h;
  const int fetch_begin = std::max(0, out_begin - 1);
  const int fetch_end = std::min(st.h, out_end + 1);

  const EhConstants eh_c = EhConstants::load();
  RowStreamer stream(msg->pixels_ea,
                     static_cast<std::uint32_t>(msg->stride), fetch_begin,
                     fetch_end, kBlockRows, msg->buffering);
  int computed_to = fetch_begin;  // gray rows finished (absolute, excl.)
  int produced = out_begin;
  while (stream.has_next()) {
    RowStreamer::Block blk = stream.next();
    for (int r = 0; r < blk.rows; ++r) {
      gray_row_simd(blk.data + static_cast<std::size_t>(r) * msg->stride,
                    st.w,
                    st.ring[(blk.first_row + r) % kRingRows] + kRowOrigin);
      ++computed_to;
    }
    while (produced < out_end &&
           (produced + 1 < computed_to || computed_to == fetch_end)) {
      if (produced == 0 || produced == st.h - 1) {
        for (int x = 0; x < st.w; ++x) eh_scalar_pixel(st, x, produced);
      } else {
        eh_produce_row_simd(st, produced, eh_c);
      }
      ++produced;
    }
  }
  while (produced < out_end) {
    if (produced == 0 || produced == st.h - 1) {
      for (int x = 0; x < st.w; ++x) eh_scalar_pixel(st, x, produced);
    } else {
      eh_produce_row_simd(st, produced, eh_c);
    }
    ++produced;
  }

  if (shard) {
    emit_result(st.counts, msg->out_ea,
                static_cast<std::uint32_t>(kBins * sizeof(std::uint32_t)));
    return 0;
  }

  auto* out = spu_ls_alloc_array<float>(kBins);
  float inv = 1.0f / (static_cast<float>(st.w) * static_cast<float>(st.h));
  sop(8);
  vec_float4 vinv = spu_splats<vec_float4>(inv);
  for (std::size_t i = 0; i < kBins; i += 4) {
    vst(&out[i], spu_mul(spu_convtf(vld<vec_int4>(&st.counts[i])), vinv));
    spu_loop(1);
  }
  emit_result(out, msg->out_ea,
              static_cast<std::uint32_t>(kBins * sizeof(float)));
  return 0;
}

// ---- the pre-optimization straight C port (Section 5.3: 3.85x) ----

int eh_run_naive(std::uint64_t ea) {
  auto* msg = static_cast<ImageMsg*>(spu_ls_alloc(sizeof(ImageMsg)));
  fetch_msg(msg, ea);
  const int w = msg->width;
  const int h = msg->height;

  constexpr std::size_t kBins =
      features::kEdgeAngleBins * features::kEdgeMagBins;
  auto* counts = spu_ls_alloc_array<std::uint32_t>(kBins);
  std::memset(counts, 0, kBins * sizeof(std::uint32_t));

  const int gray_stride =
      static_cast<int>(cellport::round_up(static_cast<std::size_t>(w), 16));
  const int fetch_budget = 64;
  img::SlicePlan plan(h, fetch_budget, 1);
  auto* gray = spu_ls_alloc_array<std::uint8_t>(
      static_cast<std::size_t>(fetch_budget) * gray_stride);

  for (std::size_t si = 0; si < plan.count(); ++si) {
    const img::Slice& s = plan[si];
    RowStreamer stream(msg->pixels_ea,
                       static_cast<std::uint32_t>(msg->stride),
                       s.fetch_begin, s.fetch_end, kBlockRows,
                       kSingleBuffer);
    while (stream.has_next()) {
      RowStreamer::Block blk = stream.next();
      for (int r = 0; r < blk.rows; ++r) {
        const std::uint8_t* rgb =
            blk.data + static_cast<std::size_t>(r) * msg->stride;
        std::uint8_t* dst =
            gray + static_cast<std::size_t>(blk.first_row + r -
                                            s.fetch_begin) *
                       gray_stride;
        for (int x = 0; x < w; ++x) {
          std::uint8_t pr = sload(&rgb[x * 3]);
          std::uint8_t pg = sload(&rgb[x * 3 + 1]);
          std::uint8_t pb = sload(&rgb[x * 3 + 2]);
          sop(8);
          unsigned luma = 77u * pr + 150u * pg + 29u * pb;
          dst[x] = static_cast<std::uint8_t>(luma >> 8);
          charge_odd(3);
          spu_loop(1);
        }
      }
    }
    auto sample = [&](int x, int y) -> int {
      x = std::clamp(x, 0, w - 1);
      y = std::clamp(y, 0, h - 1);
      y = std::clamp(y, s.fetch_begin, s.fetch_end - 1);
      return sload(
          &gray[static_cast<std::size_t>(y - s.fetch_begin) * gray_stride +
                static_cast<std::size_t>(x)]);
    };
    for (int y = s.y_begin; y < s.y_end; ++y) {
      for (int x = 0; x < w; ++x) {
        // 12 distinct scalar taps (each load+rotate), scalar arithmetic,
        // software sqrt and atan2 (no SPU scalar unit, no libm).
        sop(30);
        int gx = -sample(x - 1, y - 1) + sample(x + 1, y - 1) -
                 2 * sample(x - 1, y) + 2 * sample(x + 1, y) -
                 sample(x - 1, y + 1) + sample(x + 1, y + 1);
        int gy = -sample(x - 1, y - 1) - 2 * sample(x, y - 1) -
                 sample(x + 1, y - 1) + sample(x - 1, y + 1) +
                 2 * sample(x, y + 1) + sample(x + 1, y + 1);
        sop(40);  // software float sqrt
        float mag = std::sqrt(
            static_cast<float>(gx) * static_cast<float>(gx) +
            static_cast<float>(gy) * static_cast<float>(gy));
        // Data-dependent flat/edge branch; the straight port has no
        // branch hint, so roughly half the transitions flush.
        spu_branch(mag < features::kEdgeMagThreshold, ((x ^ y) & 1) != 0);
        if (mag < features::kEdgeMagThreshold) continue;
        // Software double atan2: argument reduction, a long polynomial,
        // and a division, all through the 2-per-7-cycles DP pipe — the
        // reason the straight EH port gains so little (Section 5.3).
        sop(30);
        charge_double_op(24);
        charge_branch_miss(2.5);
        float angle = std::atan2(static_cast<float>(gy),
                                 static_cast<float>(gx));
        if (angle < 0.0f) angle += kTwoPi;
        int abin = static_cast<int>((angle + kTwoPi / 16.0f) *
                                    (features::kEdgeAngleBins / kTwoPi));
        if (abin >= features::kEdgeAngleBins) abin = 0;
        int mbin = static_cast<int>(
            mag * (features::kEdgeMagBins / features::kEdgeMagMax));
        if (mbin >= features::kEdgeMagBins) {
          mbin = features::kEdgeMagBins - 1;
        }
        sop(6);
        auto bin = static_cast<std::uint32_t>(
            abin * features::kEdgeMagBins + mbin);
        sstore(&counts[bin], sload(&counts[bin]) + 1);
        spu_loop(1);
      }
    }
  }

  auto* out = spu_ls_alloc_array<float>(kBins);
  float inv = 1.0f / (static_cast<float>(w) * static_cast<float>(h));
  sop(20);
  for (std::size_t i = 0; i < kBins; ++i) {
    sop(2);
    charge_odd(3);
    out[i] = static_cast<float>(counts[i]) * inv;
  }
  emit_result(out, msg->out_ea,
              static_cast<std::uint32_t>(kBins * sizeof(float)));
  return 0;
}

}  // namespace

port::KernelModule& eh_module() {
  // ~28 KiB code image plus ~8 KiB for the fused body.
  static port::KernelModule module("EHExtract", 36 * 1024);
  static bool registered =
      (module.add_function(SPU_Run, &eh_run)
           .add_function(SPU_Run_Naive, &eh_run_naive),
       register_feed(module), register_fused(module),
       true);
  (void)registered;
  return module;
}

}  // namespace cellport::kernels
