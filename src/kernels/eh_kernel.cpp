#include "kernels/eh_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "features/edge_histogram.h"
#include "img/slice.h"
#include "kernels/common.h"
#include "kernels/feed_kernel.h"
#include "kernels/messages.h"
#include "spu/spu.h"
#include "support/aligned.h"

namespace cellport::kernels {

namespace {

using namespace cellport::sim;
using namespace cellport::spu;

constexpr int kBlockRows = 16;
constexpr int kRingRows = kBlockRows + 3;
constexpr int kRowOrigin = 16;
constexpr float kTwoPi = 6.2831853071795864769f;
constexpr float kTanLo = 0.41421356237f;  // tan(22.5 deg)
constexpr float kTanHi = 2.41421356237f;  // tan(67.5 deg)

/// gray = (77 r + 150 g + 29 b) >> 8, 8 pixels at a time in halfwords
/// (the products fit 16 bits), matching the integer reference exactly.
void gray_row_simd(const std::uint8_t* rgb, int w, std::uint8_t* dst) {
  // Gathering a channel of 8 interleaved pixels spans 24 bytes, so each
  // unpack shuffles across a pair of quadword loads (channel bytes into
  // the low 8 byte positions), then widens against the zero vector.
  static const auto make_gather = [](unsigned c) {
    vec_uchar16 p;
    for (unsigned lane = 0; lane < 8; ++lane) {
      p.v[lane] = static_cast<std::uint8_t>(c + 3 * lane);  // 0..23
    }
    for (unsigned i = 8; i < 16; ++i) p.v[i] = 0;
    return p;
  };
  static const vec_uchar16 gather_r = make_gather(0);
  static const vec_uchar16 gather_g = make_gather(1);
  static const vec_uchar16 gather_b = make_gather(2);
  static const vec_uchar16 widen = [] {
    vec_uchar16 p;
    for (unsigned lane = 0; lane < 8; ++lane) {
      p.v[2 * lane] = static_cast<std::uint8_t>(lane);
      p.v[2 * lane + 1] = 16;  // zero byte
    }
    return p;
  }();
  static const vec_uchar16 pack = [] {
    vec_uchar16 p;
    for (unsigned k = 0; k < 8; ++k) {
      p.v[k] = static_cast<std::uint8_t>(2 * k);       // low byte of lane k
      p.v[8 + k] = static_cast<std::uint8_t>(16 + 2 * k);
    }
    return p;
  }();
  const vec_uchar16 zero = spu_splats<vec_uchar16>(0);
  const vec_ushort8 wr = spu_splats<vec_ushort8>(77);
  const vec_ushort8 wg = spu_splats<vec_ushort8>(150);
  const vec_ushort8 wb = spu_splats<vec_ushort8>(29);

  auto unpack = [&](const vec_uchar16& lo, const vec_uchar16& hi,
                    const vec_uchar16& gather) {
    vec_uchar16 bytes = spu_shuffle(lo, hi, gather);
    return vec_cast<vec_ushort8>(spu_shuffle(bytes, zero, widen));
  };

  int x = 0;
  for (; x + 16 <= w; x += 16) {
    vec_uchar16 halves[2];
    for (int half = 0; half < 2; ++half) {
      const std::uint8_t* p = rgb + (x + 8 * half) * 3;
      vec_uchar16 lo = vld_unaligned(p);
      vec_uchar16 hi = vld_unaligned(p + 16);
      vec_ushort8 r = unpack(lo, hi, gather_r);
      vec_ushort8 g = unpack(lo, hi, gather_g);
      vec_ushort8 b = unpack(lo, hi, gather_b);
      vec_ushort8 acc = spu_add(spu_add(spu_mulhw(r, wr), spu_mulhw(g, wg)),
                                spu_mulhw(b, wb));
      acc = spu_sr(acc, 8);
      halves[half] = vec_cast<vec_uchar16>(acc);
    }
    vst(dst + x, spu_shuffle(halves[0], halves[1], pack));
    spu_loop(1);
  }
  for (; x < w; ++x) {
    sop(8);
    charge_odd(4);
    unsigned luma = 77u * rgb[x * 3] + 150u * rgb[x * 3 + 1] +
                    29u * rgb[x * 3 + 2];
    dst[x] = static_cast<std::uint8_t>(luma >> 8);
  }
}

struct EhState {
  std::uint8_t* ring[kRingRows];
  std::uint32_t* counts;  // 64 bins
  int w = 0;
  int h = 0;
};

int clamped(const EhState& st, int x, int y) {
  x = std::clamp(x, 0, st.w - 1);
  y = std::clamp(y, 0, st.h - 1);
  return st.ring[y % kRingRows][kRowOrigin + x];
}

/// Scalar pixel using the reference's exact float sqrt/atan2 path (used
/// for the image border, where clamping breaks the vector pattern).
void scalar_pixel(const EhState& st, int x, int y) {
  sop(30);
  charge_odd(20);
  int gx = -clamped(st, x - 1, y - 1) + clamped(st, x + 1, y - 1) -
           2 * clamped(st, x - 1, y) + 2 * clamped(st, x + 1, y) -
           clamped(st, x - 1, y + 1) + clamped(st, x + 1, y + 1);
  int gy = -clamped(st, x - 1, y - 1) - 2 * clamped(st, x, y - 1) -
           clamped(st, x + 1, y - 1) + clamped(st, x - 1, y + 1) +
           2 * clamped(st, x, y + 1) + clamped(st, x + 1, y + 1);
  float mag =
      std::sqrt(static_cast<float>(gx) * static_cast<float>(gx) +
                static_cast<float>(gy) * static_cast<float>(gy));
  if (mag < features::kEdgeMagThreshold) return;
  sop(40);
  float angle =
      std::atan2(static_cast<float>(gy), static_cast<float>(gx));
  if (angle < 0.0f) angle += kTwoPi;
  int abin = static_cast<int>((angle + kTwoPi / 16.0f) *
                              (features::kEdgeAngleBins / kTwoPi));
  if (abin >= features::kEdgeAngleBins) abin = 0;
  int mbin = static_cast<int>(
      mag * (features::kEdgeMagBins / features::kEdgeMagMax));
  if (mbin >= features::kEdgeMagBins) mbin = features::kEdgeMagBins - 1;
  auto bin = static_cast<std::uint32_t>(abin * features::kEdgeMagBins +
                                        mbin);
  sstore(&st.counts[bin], sload(&st.counts[bin]) + 1);
}

/// Unpacks bytes [shift, shift+8) of a raw 16-byte load into halfwords.
vec_short8 bytes_to_short8(const vec_uchar16& raw, unsigned shift) {
  vec_uchar16 p;
  for (unsigned lane = 0; lane < 8; ++lane) {
    p.v[2 * lane] = static_cast<std::uint8_t>(shift + lane);
    p.v[2 * lane + 1] = 16;
  }
  const vec_uchar16 zero = spu_splats<vec_uchar16>(0);
  return vec_cast<vec_short8>(spu_shuffle(raw, zero, p));
}

/// Constant registers of the edge binning, loaded once per invocation.
struct EhConstants {
  vec_float4 sign_clear;
  vec_float4 tan_lo;
  vec_float4 tan_hi;
  vec_float4 mag_b2[features::kEdgeMagBins - 1];
  vec_int4 zero_i;
  vec_int4 i0, i1, i2, i3, i4, i5, i6, i7;
  vec_int4 thresh63;
  vec_short8 one_h;

  static EhConstants load() {
    EhConstants c;
    c.sign_clear = vec_cast<vec_float4>(spu_splats<vec_uint4>(0x7FFFFFFFu));
    c.tan_lo = spu_splats<vec_float4>(kTanLo);
    c.tan_hi = spu_splats<vec_float4>(kTanHi);
    for (int k = 1; k < features::kEdgeMagBins; ++k) {
      float boundary = static_cast<float>(k) * features::kEdgeMagMax /
                       features::kEdgeMagBins;
      c.mag_b2[k - 1] = spu_splats<vec_float4>(boundary * boundary);
    }
    c.zero_i = spu_splats<vec_int4>(0);
    c.i0 = spu_splats<vec_int4>(0);
    c.i1 = spu_splats<vec_int4>(1);
    c.i2 = spu_splats<vec_int4>(2);
    c.i3 = spu_splats<vec_int4>(3);
    c.i4 = spu_splats<vec_int4>(4);
    c.i5 = spu_splats<vec_int4>(5);
    c.i6 = spu_splats<vec_int4>(6);
    c.i7 = spu_splats<vec_int4>(7);
    c.thresh63 = spu_splats<vec_int4>(63);
    c.one_h = spu_splats<vec_short8>(1);
    return c;
  }
};

/// Direction bin (octant) of 4 gradients, branch-free, matching the
/// reference's compass-centered atan2 binning for all integer gradients.
vec_int4 octant_bin_4(const vec_int4& gx, const vec_int4& gy,
                      const EhConstants& c) {
  vec_float4 fx = spu_convtf(gx);
  vec_float4 fy = spu_convtf(gy);
  vec_float4 ax = spu_and(fx, c.sign_clear);
  vec_float4 ay = spu_and(fy, c.sign_clear);

  vec_float4 diag_m = spu_cmpgt(ay, spu_mul(ax, c.tan_lo));
  // vert: ay >= tanHi*ax  <=>  !(tanHi*ax > ay); selects last, so the
  // complement select order below implements the >= without an xor.
  vec_float4 not_vert_m = spu_cmpgt(spu_mul(ax, c.tan_hi), ay);
  vec_int4 gx_pos = vec_cast<vec_int4>(spu_cmpgt(gx, c.zero_i));
  vec_int4 gy_pos = vec_cast<vec_int4>(spu_cmpgt(gy, c.zero_i));

  vec_int4 bin_h = spu_sel(c.i4, c.i0, gx_pos);
  vec_int4 bin_v = spu_sel(c.i6, c.i2, gy_pos);
  vec_int4 bin_d = spu_sel(spu_sel(c.i5, c.i3, gy_pos),
                           spu_sel(c.i7, c.i1, gy_pos), gx_pos);

  // diagonal-or-vertical sub-pick first, then the horizontal default.
  vec_int4 dv = spu_sel(bin_v, bin_d, vec_cast<vec_int4>(not_vert_m));
  return spu_sel(bin_h, dv, vec_cast<vec_int4>(diag_m));
}

/// Magnitude bin of 4 squared gradients via 7 compare-accumulates against
/// precomputed squared boundaries (replaces the reference's sqrt):
/// bin = 7 - #{k : b2_k > mag2}.
vec_int4 mag_bin_4(const vec_int4& mag2, const EhConstants& c) {
  vec_float4 mf = spu_convtf(mag2);  // exact: mag2 <= ~2.1M < 2^24
  vec_int4 gt_count = c.zero_i;
  for (int k = 1; k < features::kEdgeMagBins; ++k) {
    gt_count = spu_sub(
        gt_count, vec_cast<vec_int4>(spu_cmpgt(c.mag_b2[k - 1], mf)));
  }
  return spu_sub(c.i7, gt_count);
}

void produce_row_simd(const EhState& st, int y, const EhConstants& ec) {
  const int w = st.w;
  // Border columns via the scalar float path. A one-column image has a
  // single border pixel, not two — without the early return it would be
  // binned twice (column 0 and column w-1 are the same pixel).
  scalar_pixel(st, 0, y);
  if (w == 1) return;
  const std::uint8_t* rows[3] = {
      st.ring[(y - 1) % kRingRows] + kRowOrigin,
      st.ring[y % kRingRows] + kRowOrigin,
      st.ring[(y + 1) % kRingRows] + kRowOrigin};

  int x = 1;
  for (; x + 8 <= w - 1; x += 8) {
    vec_short8 l[3];
    vec_short8 c[3];
    vec_short8 r[3];
    for (int k = 0; k < 3; ++k) {
      vec_uchar16 raw = vld_unaligned(rows[k] + x - 1);
      l[k] = bytes_to_short8(raw, 0);
      c[k] = bytes_to_short8(raw, 1);
      r[k] = bytes_to_short8(raw, 2);
    }
    vec_short8 gx = spu_add(
        spu_add(spu_sub(r[0], l[0]), spu_sub(r[2], l[2])),
        spu_sl(spu_sub(r[1], l[1]), 1));
    vec_short8 gy = spu_sub(
        spu_add(spu_add(l[2], r[2]), spu_sl(c[2], 1)),
        spu_add(spu_add(l[0], r[0]), spu_sl(c[0], 1)));

    // Widen even/odd halfword lanes into int words (mule/mulo by 1) and
    // square via mule/mulo.
    vec_int4 gx_e = spu_mule(gx, ec.one_h);
    vec_int4 gx_o = spu_mulo(gx, ec.one_h);
    vec_int4 gy_e = spu_mule(gy, ec.one_h);
    vec_int4 gy_o = spu_mulo(gy, ec.one_h);
    vec_int4 mag2_e = spu_add(spu_mule(gx, gx), spu_mule(gy, gy));
    vec_int4 mag2_o = spu_add(spu_mulo(gx, gx), spu_mulo(gy, gy));

    // Edge mask: mag2 >= 64  <=>  mag >= 8 (exact).
    vec_int4 edge_e = vec_cast<vec_int4>(spu_cmpgt(mag2_e, ec.thresh63));
    vec_int4 edge_o = vec_cast<vec_int4>(spu_cmpgt(mag2_o, ec.thresh63));

    vec_int4 bin_e = spu_add(spu_sl(octant_bin_4(gx_e, gy_e, ec), 3),
                             mag_bin_4(mag2_e, ec));
    vec_int4 bin_o = spu_add(spu_sl(octant_bin_4(gx_o, gy_o, ec), 3),
                             mag_bin_4(mag2_o, ec));

    // Histogram scatter (scalar). Even int lanes are centers x+0,2,4,6;
    // odd lanes x+1,3,5,7.
    for (std::size_t lane = 0; lane < 4; ++lane) {
      if (spu_branch(spu_extract(edge_e, lane) != 0)) {
        auto bin = static_cast<std::uint32_t>(spu_extract(bin_e, lane));
        sstore(&st.counts[bin], sload(&st.counts[bin]) + 1);
      }
      if (spu_branch(spu_extract(edge_o, lane) != 0)) {
        auto bin = static_cast<std::uint32_t>(spu_extract(bin_o, lane));
        sstore(&st.counts[bin], sload(&st.counts[bin]) + 1);
      }
    }
    spu_loop(1);
  }
  for (; x < w - 1; ++x) scalar_pixel(st, x, y);
  scalar_pixel(st, w - 1, y);
}

int eh_run(std::uint64_t ea) {
  auto* msg = static_cast<ImageMsg*>(spu_ls_alloc(sizeof(ImageMsg)));
  fetch_msg(msg, ea);

  EhState st;
  st.w = msg->width;
  st.h = msg->height;
  const int row_bytes = static_cast<int>(cellport::round_up(
      static_cast<std::size_t>(kRowOrigin + st.w + 24), 16));
  for (auto& r : st.ring) {
    r = static_cast<std::uint8_t*>(
        spu_ls_alloc(static_cast<std::size_t>(row_bytes), 16));
    std::memset(r, 0, static_cast<std::size_t>(row_bytes));
  }
  constexpr std::size_t kBins =
      features::kEdgeAngleBins * features::kEdgeMagBins;
  st.counts = spu_ls_alloc_array<std::uint32_t>(kBins);
  std::memset(st.counts, 0, kBins * sizeof(std::uint32_t));

  // cellshard: a shard bins gradient rows [out_begin, out_end) and
  // fetches a one-row halo on each side (the Sobel window); clamping in
  // scalar_pixel/produce_row_simd still uses the true image edges, so a
  // shard's counts are exactly its slice of the full-image counts.
  const bool shard = msg->row_end > 0;
  const int out_begin = shard ? msg->row_begin : 0;
  const int out_end = shard ? msg->row_end : st.h;
  const int fetch_begin = std::max(0, out_begin - 1);
  const int fetch_end = std::min(st.h, out_end + 1);

  const EhConstants eh_c = EhConstants::load();
  RowStreamer stream(msg->pixels_ea,
                     static_cast<std::uint32_t>(msg->stride), fetch_begin,
                     fetch_end, kBlockRows, msg->buffering);
  int computed_to = fetch_begin;  // gray rows finished (absolute, excl.)
  int produced = out_begin;
  while (stream.has_next()) {
    RowStreamer::Block blk = stream.next();
    for (int r = 0; r < blk.rows; ++r) {
      gray_row_simd(blk.data + static_cast<std::size_t>(r) * msg->stride,
                    st.w,
                    st.ring[(blk.first_row + r) % kRingRows] + kRowOrigin);
      ++computed_to;
    }
    while (produced < out_end &&
           (produced + 1 < computed_to || computed_to == fetch_end)) {
      if (produced == 0 || produced == st.h - 1) {
        for (int x = 0; x < st.w; ++x) scalar_pixel(st, x, produced);
      } else {
        produce_row_simd(st, produced, eh_c);
      }
      ++produced;
    }
  }
  while (produced < out_end) {
    if (produced == 0 || produced == st.h - 1) {
      for (int x = 0; x < st.w; ++x) scalar_pixel(st, x, produced);
    } else {
      produce_row_simd(st, produced, eh_c);
    }
    ++produced;
  }

  if (shard) {
    emit_result(st.counts, msg->out_ea,
                static_cast<std::uint32_t>(kBins * sizeof(std::uint32_t)));
    return 0;
  }

  auto* out = spu_ls_alloc_array<float>(kBins);
  float inv = 1.0f / (static_cast<float>(st.w) * static_cast<float>(st.h));
  sop(8);
  vec_float4 vinv = spu_splats<vec_float4>(inv);
  for (std::size_t i = 0; i < kBins; i += 4) {
    vst(&out[i], spu_mul(spu_convtf(vld<vec_int4>(&st.counts[i])), vinv));
    spu_loop(1);
  }
  emit_result(out, msg->out_ea,
              static_cast<std::uint32_t>(kBins * sizeof(float)));
  return 0;
}

// ---- the pre-optimization straight C port (Section 5.3: 3.85x) ----

int eh_run_naive(std::uint64_t ea) {
  auto* msg = static_cast<ImageMsg*>(spu_ls_alloc(sizeof(ImageMsg)));
  fetch_msg(msg, ea);
  const int w = msg->width;
  const int h = msg->height;

  constexpr std::size_t kBins =
      features::kEdgeAngleBins * features::kEdgeMagBins;
  auto* counts = spu_ls_alloc_array<std::uint32_t>(kBins);
  std::memset(counts, 0, kBins * sizeof(std::uint32_t));

  const int gray_stride =
      static_cast<int>(cellport::round_up(static_cast<std::size_t>(w), 16));
  const int fetch_budget = 64;
  img::SlicePlan plan(h, fetch_budget, 1);
  auto* gray = spu_ls_alloc_array<std::uint8_t>(
      static_cast<std::size_t>(fetch_budget) * gray_stride);

  for (std::size_t si = 0; si < plan.count(); ++si) {
    const img::Slice& s = plan[si];
    RowStreamer stream(msg->pixels_ea,
                       static_cast<std::uint32_t>(msg->stride),
                       s.fetch_begin, s.fetch_end, kBlockRows,
                       kSingleBuffer);
    while (stream.has_next()) {
      RowStreamer::Block blk = stream.next();
      for (int r = 0; r < blk.rows; ++r) {
        const std::uint8_t* rgb =
            blk.data + static_cast<std::size_t>(r) * msg->stride;
        std::uint8_t* dst =
            gray + static_cast<std::size_t>(blk.first_row + r -
                                            s.fetch_begin) *
                       gray_stride;
        for (int x = 0; x < w; ++x) {
          std::uint8_t pr = sload(&rgb[x * 3]);
          std::uint8_t pg = sload(&rgb[x * 3 + 1]);
          std::uint8_t pb = sload(&rgb[x * 3 + 2]);
          sop(8);
          unsigned luma = 77u * pr + 150u * pg + 29u * pb;
          dst[x] = static_cast<std::uint8_t>(luma >> 8);
          charge_odd(3);
          spu_loop(1);
        }
      }
    }
    auto sample = [&](int x, int y) -> int {
      x = std::clamp(x, 0, w - 1);
      y = std::clamp(y, 0, h - 1);
      y = std::clamp(y, s.fetch_begin, s.fetch_end - 1);
      return sload(
          &gray[static_cast<std::size_t>(y - s.fetch_begin) * gray_stride +
                static_cast<std::size_t>(x)]);
    };
    for (int y = s.y_begin; y < s.y_end; ++y) {
      for (int x = 0; x < w; ++x) {
        // 12 distinct scalar taps (each load+rotate), scalar arithmetic,
        // software sqrt and atan2 (no SPU scalar unit, no libm).
        sop(30);
        int gx = -sample(x - 1, y - 1) + sample(x + 1, y - 1) -
                 2 * sample(x - 1, y) + 2 * sample(x + 1, y) -
                 sample(x - 1, y + 1) + sample(x + 1, y + 1);
        int gy = -sample(x - 1, y - 1) - 2 * sample(x, y - 1) -
                 sample(x + 1, y - 1) + sample(x - 1, y + 1) +
                 2 * sample(x, y + 1) + sample(x + 1, y + 1);
        sop(40);  // software float sqrt
        float mag = std::sqrt(
            static_cast<float>(gx) * static_cast<float>(gx) +
            static_cast<float>(gy) * static_cast<float>(gy));
        // Data-dependent flat/edge branch; the straight port has no
        // branch hint, so roughly half the transitions flush.
        spu_branch(mag < features::kEdgeMagThreshold, ((x ^ y) & 1) != 0);
        if (mag < features::kEdgeMagThreshold) continue;
        // Software double atan2: argument reduction, a long polynomial,
        // and a division, all through the 2-per-7-cycles DP pipe — the
        // reason the straight EH port gains so little (Section 5.3).
        sop(30);
        charge_double_op(24);
        charge_branch_miss(2.5);
        float angle = std::atan2(static_cast<float>(gy),
                                 static_cast<float>(gx));
        if (angle < 0.0f) angle += kTwoPi;
        int abin = static_cast<int>((angle + kTwoPi / 16.0f) *
                                    (features::kEdgeAngleBins / kTwoPi));
        if (abin >= features::kEdgeAngleBins) abin = 0;
        int mbin = static_cast<int>(
            mag * (features::kEdgeMagBins / features::kEdgeMagMax));
        if (mbin >= features::kEdgeMagBins) {
          mbin = features::kEdgeMagBins - 1;
        }
        sop(6);
        auto bin = static_cast<std::uint32_t>(
            abin * features::kEdgeMagBins + mbin);
        sstore(&counts[bin], sload(&counts[bin]) + 1);
        spu_loop(1);
      }
    }
  }

  auto* out = spu_ls_alloc_array<float>(kBins);
  float inv = 1.0f / (static_cast<float>(w) * static_cast<float>(h));
  sop(20);
  for (std::size_t i = 0; i < kBins; ++i) {
    sop(2);
    charge_odd(3);
    out[i] = static_cast<float>(counts[i]) * inv;
  }
  emit_result(out, msg->out_ea,
              static_cast<std::uint32_t>(kBins * sizeof(float)));
  return 0;
}

}  // namespace

port::KernelModule& eh_module() {
  // ~28 KiB code image.
  static port::KernelModule module("EHExtract", 28 * 1024);
  static bool registered =
      (module.add_function(SPU_Run, &eh_run)
           .add_function(SPU_Run_Naive, &eh_run_naive),
       register_feed(module),
       true);
  (void)registered;
  return module;
}

}  // namespace cellport::kernels
