#include "kernels/tx_kernel.h"

#include <cmath>
#include <cstring>

#include "features/texture.h"
#include "kernels/common.h"
#include "kernels/feed_kernel.h"
#include "kernels/messages.h"
#include "spu/spu.h"
#include "support/aligned.h"

namespace cellport::kernels {

namespace {

using namespace cellport::sim;
using namespace cellport::spu;

constexpr int kBlockRows = 16;  // even: level 1 consumes row pairs

/// Integer BT.601 luma for one pixel (matches img::rgb_to_gray).
inline int luma(const std::uint8_t* px) {
  return static_cast<int>((77u * px[0] + 150u * px[1] + 29u * px[2]) >> 8);
}

/// De-interleaves 8 consecutive gray floats (from bytes) into even and
/// odd column float4s.
void load_even_odd(const std::uint8_t* gray8, vec_float4& even,
                   vec_float4& odd) {
  // 8 bytes -> two int4s via shuffles against zero.
  vec_uchar16 raw = vld_unaligned(gray8);
  static const vec_uchar16 pat_even = [] {
    vec_uchar16 p;
    for (unsigned k = 0; k < 4; ++k) {
      p.v[4 * k] = static_cast<std::uint8_t>(2 * k);
      p.v[4 * k + 1] = 16;
      p.v[4 * k + 2] = 16;
      p.v[4 * k + 3] = 16;
    }
    return p;
  }();
  static const vec_uchar16 pat_odd = [] {
    vec_uchar16 p;
    for (unsigned k = 0; k < 4; ++k) {
      p.v[4 * k] = static_cast<std::uint8_t>(2 * k + 1);
      p.v[4 * k + 1] = 16;
      p.v[4 * k + 2] = 16;
      p.v[4 * k + 3] = 16;
    }
    return p;
  }();
  const vec_uchar16 zero = spu_splats<vec_uchar16>(0);
  even = spu_convtf(vec_cast<vec_int4>(spu_shuffle(raw, zero, pat_even)));
  odd = spu_convtf(vec_cast<vec_int4>(spu_shuffle(raw, zero, pat_odd)));
}

/// De-interleaves 8 consecutive floats into even and odd lane float4s
/// (2 quadword loads + 2 shuffles).
void deinterleave_floats(const float* p, vec_float4& e, vec_float4& o) {
  auto raw = reinterpret_cast<const std::uint8_t*>(p);
  vec_float4 lo = vec_cast<vec_float4>(vld_unaligned(raw));
  vec_float4 hi = vec_cast<vec_float4>(vld_unaligned(raw + 16));
  static const vec_uchar16 pat_e = [] {
    vec_uchar16 pe;
    const std::uint8_t lane_src[4] = {0, 8, 16, 24};  // lo0 lo2 hi0 hi2
    for (unsigned k = 0; k < 4; ++k)
      for (unsigned byte = 0; byte < 4; ++byte)
        pe.v[4 * k + byte] = static_cast<std::uint8_t>(lane_src[k] + byte);
    return pe;
  }();
  static const vec_uchar16 pat_o = [] {
    vec_uchar16 po;
    const std::uint8_t lane_src[4] = {4, 12, 20, 28};  // lo1 lo3 hi1 hi3
    for (unsigned k = 0; k < 4; ++k)
      for (unsigned byte = 0; byte < 4; ++byte)
        po.v[4 * k + byte] = static_cast<std::uint8_t>(lane_src[k] + byte);
    return po;
  }();
  e = spu_shuffle(lo, hi, pat_e);
  o = spu_shuffle(lo, hi, pat_o);
}

/// Horizontal reduction of a float4 into a double (for the energy sums).
double reduce4(const vec_float4& v) {
  charge_odd(3);
  charge_double_op(3);
  return static_cast<double>(v.v[0]) + v.v[1] + v.v[2] + v.v[3];
}

struct Energies {
  vec_float4 lh = spu_splats<vec_float4>(0.0f);
  vec_float4 hl = spu_splats<vec_float4>(0.0f);
  vec_float4 hh = spu_splats<vec_float4>(0.0f);
};

/// One Haar step over a row pair, producing one LL row and accumulating
/// detail energies. `fetch0`/`fetch1` deliver float4s of even/odd columns
/// for the upper/lower input row.
template <typename RowFetch0, typename RowFetch1>
void haar_rows(int half_w, RowFetch0 fetch0, RowFetch1 fetch1,
               float* ll_out, Energies& acc) {
  const vec_float4 quarter = spu_splats<vec_float4>(0.25f);
  int x = 0;
  for (; x + 4 <= half_w; x += 4) {
    vec_float4 a;
    vec_float4 b;
    vec_float4 c;
    vec_float4 d;
    fetch0(x, a, b);
    fetch1(x, c, d);
    vec_float4 ab_p = spu_add(a, b);
    vec_float4 ab_m = spu_sub(a, b);
    vec_float4 cd_p = spu_add(c, d);
    vec_float4 cd_m = spu_sub(c, d);
    vec_float4 ll = spu_mul(quarter, spu_add(ab_p, cd_p));
    vec_float4 lh = spu_mul(quarter, spu_add(ab_m, cd_m));
    vec_float4 hl = spu_mul(quarter, spu_sub(ab_p, cd_p));
    vec_float4 hh = spu_mul(quarter, spu_sub(ab_m, cd_m));
    vst(ll_out + x, ll);
    acc.lh = spu_madd(lh, lh, acc.lh);
    acc.hl = spu_madd(hl, hl, acc.hl);
    acc.hh = spu_madd(hh, hh, acc.hh);
    spu_loop(1);
  }
  // Scalar tail for half-widths not divisible by 4.
  for (; x < half_w; ++x) {
    vec_float4 a;
    vec_float4 b;
    vec_float4 c;
    vec_float4 d;
    int base = x & ~3;
    fetch0(base, a, b);
    fetch1(base, c, d);
    std::size_t lane = static_cast<std::size_t>(x - base);
    sop(16);
    charge_odd(6);
    float ab_p = a.v[lane] + b.v[lane];
    float ab_m = a.v[lane] - b.v[lane];
    float cd_p = c.v[lane] + d.v[lane];
    float cd_m = c.v[lane] - d.v[lane];
    ll_out[x] = 0.25f * (ab_p + cd_p);
    float lh = 0.25f * (ab_m + cd_m);
    float hl = 0.25f * (ab_p - cd_p);
    float hh = 0.25f * (ab_m - cd_m);
    acc.lh.v[0] += lh * lh;
    acc.hl.v[0] += hl * hl;
    acc.hh.v[0] += hh * hh;
  }
}

// The decomposition runs in 16-input-row TILES (kTxTileRows): each tile
// fuses the streaming gray conversion with level 1, then runs levels 2..4
// over the tile's own LL rows — tile t owns level-l rows
// [t*16/2^l, (t+1)*16/2^l), and parent rows of a tile's level-(l+1) rows
// always lie inside the tile's level-l rows, so no cross-tile state is
// needed. Each tile yields kTxTileDoubles partial detail energies
// (reduce4 of its float accumulators); the full-image energy is the
// tile-ordered double sum. cellshard relies on exactly this: a shard
// computes a contiguous tile range, and the PPE reducer re-does the same
// tile-ordered sum, bit-exact with the unsharded run. Side benefit: the
// LS holds 8 LL rows instead of a full half-height plane.
int tx_run(std::uint64_t ea) {
  auto* msg = static_cast<ImageMsg*>(spu_ls_alloc(sizeof(ImageMsg)));
  fetch_msg(msg, ea);
  const int w = msg->width;
  const int h = msg->height;
  // Same precondition as the reference: every decomposition level must
  // be splittable (img::haar_decompose throws the equivalent error).
  if (w < (1 << features::kTextureLevels) ||
      h < (1 << features::kTextureLevels)) {
    throw cellport::ConfigError(
        "image too small for the 4-level wavelet texture");
  }

  // Level geometry. heff is the even-height region level 1 consumes.
  const int half_w = w / 2;
  const int half_h = h / 2;
  const int heff = half_h * 2;
  const int lvl_w[4] = {half_w, half_w / 2, half_w / 4, half_w / 8};
  const int lvl_h[4] = {half_h, half_h / 2, half_h / 4, half_h / 8};
  int lvl_stride[4];
  float* ll[4];  // per-tile LL rows of each level (level 4's is scratch)
  for (int l = 0; l < 4; ++l) {
    lvl_stride[l] = static_cast<int>(
        cellport::round_up(static_cast<std::size_t>(lvl_w[l]), 4));
    const int tile_rows = kTxTileRows >> (l + 1);  // 8, 4, 2, 1
    ll[l] = spu_ls_alloc_array<float>(
        static_cast<std::size_t>(lvl_stride[l]) * tile_rows);
  }

  // cellshard: a shard covers the tile range under its input-row range.
  const bool shard = msg->row_end > 0;
  const int in_begin = shard ? msg->row_begin : 0;
  const int in_end = shard ? std::min(msg->row_end, heff) : heff;
  if (shard && (in_begin % kTxTileRows != 0 || in_begin >= in_end)) {
    throw cellport::ConfigError("TX shard must start on a tile boundary");
  }
  if (shard && in_end != heff && in_end % kTxTileRows != 0) {
    throw cellport::ConfigError("TX shard must end on a tile boundary");
  }
  const int t0 = in_begin / kTxTileRows;
  const int t1 = (in_end + kTxTileRows - 1) / kTxTileRows;

  double* partials = nullptr;  // shard mode: kTxTileDoubles per tile
  double energy[kTxTileDoubles] = {};  // unsharded tile-ordered sum
  if (shard) {
    partials = spu_ls_alloc_array<double>(
        static_cast<std::size_t>(t1 - t0) * kTxTileDoubles);
  }

  Energies acc[features::kTextureLevels];  // reset per tile
  int tile = t0;
  int tile_ll_rows = 0;  // level-1 rows of the current tile in ll[0]

  // Levels 2..4 over the finished tile's LL rows, then the 12-double
  // tile partial (level-major, {lh, hl, hh} within a level).
  auto finish_tile = [&]() {
    for (int l = 1; l < features::kTextureLevels; ++l) {
      const int span = kTxTileRows >> l;  // this level's tile row count
      const int y_begin = tile * span / 2;
      const int y_end = std::min((tile + 1) * span / 2, lvl_h[l]);
      for (int y = y_begin; y < y_end; ++y) {
        const int local = 2 * y - tile * span;  // parent row in ll[l-1]
        const float* r0 =
            ll[l - 1] + static_cast<std::size_t>(local) * lvl_stride[l - 1];
        const float* r1 = r0 + lvl_stride[l - 1];
        auto fetch_from = [&](const float* row) {
          return [row](int x, vec_float4& e, vec_float4& o) {
            deinterleave_floats(row + 2 * x, e, o);
          };
        };
        haar_rows(lvl_w[l], fetch_from(r0), fetch_from(r1),
                  ll[l] + static_cast<std::size_t>(y - y_begin) *
                              lvl_stride[l],
                  acc[l]);
      }
    }
    int idx = 0;
    for (int l = 0; l < features::kTextureLevels; ++l) {
      for (const vec_float4* a : {&acc[l].lh, &acc[l].hl, &acc[l].hh}) {
        double p = reduce4(*a);
        if (shard) {
          partials[static_cast<std::size_t>(tile - t0) * kTxTileDoubles +
                   idx] = p;
        } else {
          charge_double_op(1);
          energy[idx] += p;
        }
        ++idx;
      }
      acc[l] = Energies{};
    }
    tile_ll_rows = 0;
    ++tile;
  };

  // ---- Level 1, fused with the streaming gray conversion ----
  RowStreamer stream(msg->pixels_ea,
                     static_cast<std::uint32_t>(msg->stride), in_begin,
                     in_end, kBlockRows, msg->buffering);
  // Gray staging rows (bytes), reused per row pair.
  const int gray_stride = static_cast<int>(
      cellport::round_up(static_cast<std::size_t>(w) + 24, 16));
  std::uint8_t* gray0 = static_cast<std::uint8_t*>(
      spu_ls_alloc(static_cast<std::size_t>(gray_stride), 16));
  std::uint8_t* gray1 = static_cast<std::uint8_t*>(
      spu_ls_alloc(static_cast<std::size_t>(gray_stride), 16));

  std::uint8_t* pending = nullptr;  // odd row count carry across blocks
  while (stream.has_next()) {
    RowStreamer::Block blk = stream.next();
    for (int r = 0; r < blk.rows; ++r) {
      const std::uint8_t* rgb =
          blk.data + static_cast<std::size_t>(r) * msg->stride;
      std::uint8_t* dst = pending == nullptr ? gray0 : gray1;
      // Gray conversion: same integer math as the reference, vectorized
      // 8-wide (cost mirrors eh_kernel's converter).
      for (int x = 0; x + 16 <= w; x += 16) {
        charge_even(9);
        charge_odd(7);
        for (int k = 0; k < 16; ++k) dst[x + k] = static_cast<std::uint8_t>(
            luma(rgb + (x + k) * 3));
        spu_loop(1);
      }
      for (int x = w & ~15; x < w; ++x) {
        sop(8);
        charge_odd(4);
        dst[x] = static_cast<std::uint8_t>(luma(rgb + x * 3));
      }
      if (pending == nullptr) {
        pending = gray0;
      } else {
        // A full row pair: Haar-step it into the tile's LL buffer.
        auto fetch0 = [&](int x, vec_float4& e, vec_float4& o) {
          load_even_odd(gray0 + 2 * x, e, o);
        };
        auto fetch1 = [&](int x, vec_float4& e, vec_float4& o) {
          load_even_odd(gray1 + 2 * x, e, o);
        };
        haar_rows(half_w, fetch0, fetch1,
                  ll[0] + static_cast<std::size_t>(tile_ll_rows) *
                              lvl_stride[0],
                  acc[0]);
        ++tile_ll_rows;
        pending = nullptr;
        if (tile_ll_rows == kTxTileRows / 2) finish_tile();
      }
    }
  }
  if (tile_ll_rows > 0) finish_tile();

  if (shard) {
    emit_result(partials, msg->out_ea,
                static_cast<std::uint32_t>(
                    static_cast<std::size_t>(t1 - t0) * kTxTileDoubles *
                    sizeof(double)));
    return 0;
  }

  // ---- Final energies: normalize, log ----
  auto* out = spu_ls_alloc_array<float>(
      cellport::round_up(std::size_t{features::kTextureDim}, 4));
  int idx = 0;
  for (int level = 0; level < features::kTextureLevels; ++level) {
    double denom =
        static_cast<double>(lvl_w[level]) * lvl_h[level];
    for (int band = 0; band < 3; ++band) {
      charge_double_op(8);
      sop(30);  // software double log1p
      double e = energy[idx] / denom;
      out[idx++] = static_cast<float>(std::log1p(e));
    }
  }
  for (; idx < 16; ++idx) out[idx] = 0.0f;

  emit_result(out, msg->out_ea, 16 * sizeof(float));
  return 0;
}

}  // namespace

port::KernelModule& tx_module() {
  // ~26 KiB code image.
  static port::KernelModule module("TXExtract", 26 * 1024);
  static bool registered =
      (module.add_function(SPU_Run, &tx_run), register_feed(module), true);
  (void)registered;
  return module;
}

}  // namespace cellport::kernels
