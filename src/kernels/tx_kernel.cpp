#include "kernels/tx_kernel.h"

#include <cmath>
#include <cstring>

#include "features/texture.h"
#include "kernels/common.h"
#include "kernels/feed_kernel.h"
#include "kernels/fused_kernel.h"
#include "kernels/messages.h"
#include "kernels/tx_haar.h"
#include "spu/spu.h"
#include "support/aligned.h"

namespace cellport::kernels {

namespace {

using namespace cellport::sim;
using namespace cellport::spu;

// The Haar row step, de-interleave loaders, and energy accumulators live
// in tx_haar.h, shared verbatim with the cellfuse single-pass kernel (the
// double accumulation is order-sensitive, so sharing the exact functions
// is what keeps fused energies bit-identical).
constexpr int kBlockRows = 16;  // even: level 1 consumes row pairs

// The decomposition runs in 16-input-row TILES (kTxTileRows): each tile
// fuses the streaming gray conversion with level 1, then runs levels 2..4
// over the tile's own LL rows — tile t owns level-l rows
// [t*16/2^l, (t+1)*16/2^l), and parent rows of a tile's level-(l+1) rows
// always lie inside the tile's level-l rows, so no cross-tile state is
// needed. Each tile yields kTxTileDoubles partial detail energies
// (reduce4 of its float accumulators); the full-image energy is the
// tile-ordered double sum. cellshard relies on exactly this: a shard
// computes a contiguous tile range, and the PPE reducer re-does the same
// tile-ordered sum, bit-exact with the unsharded run. Side benefit: the
// LS holds 8 LL rows instead of a full half-height plane.
int tx_run(std::uint64_t ea) {
  auto* msg = static_cast<ImageMsg*>(spu_ls_alloc(sizeof(ImageMsg)));
  fetch_msg(msg, ea);
  const int w = msg->width;
  const int h = msg->height;
  // Same precondition as the reference: every decomposition level must
  // be splittable (img::haar_decompose throws the equivalent error).
  if (w < (1 << features::kTextureLevels) ||
      h < (1 << features::kTextureLevels)) {
    throw cellport::ConfigError(
        "image too small for the 4-level wavelet texture");
  }

  // Level geometry. heff is the even-height region level 1 consumes.
  const int half_w = w / 2;
  const int half_h = h / 2;
  const int heff = half_h * 2;
  const int lvl_w[4] = {half_w, half_w / 2, half_w / 4, half_w / 8};
  const int lvl_h[4] = {half_h, half_h / 2, half_h / 4, half_h / 8};
  int lvl_stride[4];
  float* ll[4];  // per-tile LL rows of each level (level 4's is scratch)
  for (int l = 0; l < 4; ++l) {
    lvl_stride[l] = static_cast<int>(
        cellport::round_up(static_cast<std::size_t>(lvl_w[l]), 4));
    const int tile_rows = kTxTileRows >> (l + 1);  // 8, 4, 2, 1
    ll[l] = spu_ls_alloc_array<float>(
        static_cast<std::size_t>(lvl_stride[l]) * tile_rows);
  }

  // cellshard: a shard covers the tile range under its input-row range.
  const bool shard = msg->row_end > 0;
  const int in_begin = shard ? msg->row_begin : 0;
  const int in_end = shard ? std::min(msg->row_end, heff) : heff;
  if (shard && (in_begin % kTxTileRows != 0 || in_begin >= in_end)) {
    throw cellport::ConfigError("TX shard must start on a tile boundary");
  }
  if (shard && in_end != heff && in_end % kTxTileRows != 0) {
    throw cellport::ConfigError("TX shard must end on a tile boundary");
  }
  const int t0 = in_begin / kTxTileRows;
  const int t1 = (in_end + kTxTileRows - 1) / kTxTileRows;

  double* partials = nullptr;  // shard mode: kTxTileDoubles per tile
  double energy[kTxTileDoubles] = {};  // unsharded tile-ordered sum
  if (shard) {
    partials = spu_ls_alloc_array<double>(
        static_cast<std::size_t>(t1 - t0) * kTxTileDoubles);
  }

  Energies acc[features::kTextureLevels];  // reset per tile
  int tile = t0;
  int tile_ll_rows = 0;  // level-1 rows of the current tile in ll[0]

  // Levels 2..4 over the finished tile's LL rows, then the 12-double
  // tile partial (level-major, {lh, hl, hh} within a level).
  auto finish_tile = [&]() {
    for (int l = 1; l < features::kTextureLevels; ++l) {
      const int span = kTxTileRows >> l;  // this level's tile row count
      const int y_begin = tile * span / 2;
      const int y_end = std::min((tile + 1) * span / 2, lvl_h[l]);
      for (int y = y_begin; y < y_end; ++y) {
        const int local = 2 * y - tile * span;  // parent row in ll[l-1]
        const float* r0 =
            ll[l - 1] + static_cast<std::size_t>(local) * lvl_stride[l - 1];
        const float* r1 = r0 + lvl_stride[l - 1];
        auto fetch_from = [&](const float* row) {
          return [row](int x, vec_float4& e, vec_float4& o) {
            deinterleave_floats(row + 2 * x, e, o);
          };
        };
        haar_rows(lvl_w[l], fetch_from(r0), fetch_from(r1),
                  ll[l] + static_cast<std::size_t>(y - y_begin) *
                              lvl_stride[l],
                  acc[l]);
      }
    }
    int idx = 0;
    for (int l = 0; l < features::kTextureLevels; ++l) {
      for (const vec_float4* a : {&acc[l].lh, &acc[l].hl, &acc[l].hh}) {
        double p = reduce4(*a);
        if (shard) {
          partials[static_cast<std::size_t>(tile - t0) * kTxTileDoubles +
                   idx] = p;
        } else {
          charge_double_op(1);
          energy[idx] += p;
        }
        ++idx;
      }
      acc[l] = Energies{};
    }
    tile_ll_rows = 0;
    ++tile;
  };

  // ---- Level 1, fused with the streaming gray conversion ----
  RowStreamer stream(msg->pixels_ea,
                     static_cast<std::uint32_t>(msg->stride), in_begin,
                     in_end, kBlockRows, msg->buffering);
  // Gray staging rows (bytes), reused per row pair.
  const int gray_stride = static_cast<int>(
      cellport::round_up(static_cast<std::size_t>(w) + 24, 16));
  std::uint8_t* gray0 = static_cast<std::uint8_t*>(
      spu_ls_alloc(static_cast<std::size_t>(gray_stride), 16));
  std::uint8_t* gray1 = static_cast<std::uint8_t*>(
      spu_ls_alloc(static_cast<std::size_t>(gray_stride), 16));

  std::uint8_t* pending = nullptr;  // odd row count carry across blocks
  while (stream.has_next()) {
    RowStreamer::Block blk = stream.next();
    for (int r = 0; r < blk.rows; ++r) {
      const std::uint8_t* rgb =
          blk.data + static_cast<std::size_t>(r) * msg->stride;
      std::uint8_t* dst = pending == nullptr ? gray0 : gray1;
      // Gray conversion: same integer math as the reference, vectorized
      // 8-wide (cost mirrors eh_kernel's converter).
      for (int x = 0; x + 16 <= w; x += 16) {
        charge_even(9);
        charge_odd(7);
        for (int k = 0; k < 16; ++k) dst[x + k] = static_cast<std::uint8_t>(
            tx_luma(rgb + (x + k) * 3));
        spu_loop(1);
      }
      for (int x = w & ~15; x < w; ++x) {
        sop(8);
        charge_odd(4);
        dst[x] = static_cast<std::uint8_t>(tx_luma(rgb + x * 3));
      }
      if (pending == nullptr) {
        pending = gray0;
      } else {
        // A full row pair: Haar-step it into the tile's LL buffer.
        auto fetch0 = [&](int x, vec_float4& e, vec_float4& o) {
          load_even_odd(gray0 + 2 * x, e, o);
        };
        auto fetch1 = [&](int x, vec_float4& e, vec_float4& o) {
          load_even_odd(gray1 + 2 * x, e, o);
        };
        haar_rows(half_w, fetch0, fetch1,
                  ll[0] + static_cast<std::size_t>(tile_ll_rows) *
                              lvl_stride[0],
                  acc[0]);
        ++tile_ll_rows;
        pending = nullptr;
        if (tile_ll_rows == kTxTileRows / 2) finish_tile();
      }
    }
  }
  if (tile_ll_rows > 0) finish_tile();

  if (shard) {
    emit_result(partials, msg->out_ea,
                static_cast<std::uint32_t>(
                    static_cast<std::size_t>(t1 - t0) * kTxTileDoubles *
                    sizeof(double)));
    return 0;
  }

  // ---- Final energies: normalize, log ----
  auto* out = spu_ls_alloc_array<float>(
      cellport::round_up(std::size_t{features::kTextureDim}, 4));
  int idx = 0;
  for (int level = 0; level < features::kTextureLevels; ++level) {
    double denom =
        static_cast<double>(lvl_w[level]) * lvl_h[level];
    for (int band = 0; band < 3; ++band) {
      charge_double_op(8);
      sop(30);  // software double log1p
      double e = energy[idx] / denom;
      out[idx++] = static_cast<float>(std::log1p(e));
    }
  }
  for (; idx < 16; ++idx) out[idx] = 0.0f;

  emit_result(out, msg->out_ea, 16 * sizeof(float));
  return 0;
}

}  // namespace

port::KernelModule& tx_module() {
  // ~26 KiB code image plus ~5 KiB for the fused body — smaller than in
  // the other extract modules because fused shares the Haar tile
  // machinery already resident here, and the standalone TX path needs
  // the LS headroom for its over-wide row buffers (the PPM ingest
  // fallback test runs 5460-pixel rows through this module).
  static port::KernelModule module("TXExtract", 31 * 1024);
  static bool registered =
      (module.add_function(SPU_Run, &tx_run), register_feed(module),
       register_fused(module), true);
  (void)registered;
  return module;
}

}  // namespace cellport::kernels
