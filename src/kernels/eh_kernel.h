// EHExtract on the SPE: Sobel edge histogram.
//
// The optimized version (SPU_Run) is the paper's flagship optimization
// case (65.94x in Table 1): the reference's per-pixel sqrt and atan2
// library calls are replaced entirely — magnitude bins come from
// comparing the squared gradient against precomputed squared boundaries,
// and direction bins from branch-free octant comparisons (the boundaries
// sit at irrational slopes, so the comparison rule agrees with the
// reference's atan2-based rule for every integer gradient). Sobel itself
// runs 8-wide on halfwords with mule/mulo widening for the squares.
//
// The naive version (SPU_Run_Naive) keeps the reference's scalar
// float/sqrt/atan2 structure (software-emulated on the SPU, which has no
// scalar unit) — the 3.85x configuration of Section 5.3.
#pragma once

#include "port/dispatcher.h"

namespace cellport::kernels {

port::KernelModule& eh_module();

}  // namespace cellport::kernels
