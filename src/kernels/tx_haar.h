// Shared Haar-wavelet texture machinery (hoisted out of tx_kernel.cpp for
// cellfuse): gray de-interleave loaders, the SIMD Haar row step, and the
// float4 energy accumulators. TX's double accumulation is order-sensitive,
// so the fused kernel replicating bit-exact energies depends on running
// THESE functions in the same tile order — not a lookalike.
#pragma once

#include <cstdint>

#include "kernels/common.h"
#include "spu/spu.h"

namespace cellport::kernels {

/// Integer BT.601 luma for one pixel (matches img::rgb_to_gray).
inline int tx_luma(const std::uint8_t* px) {
  return static_cast<int>((77u * px[0] + 150u * px[1] + 29u * px[2]) >> 8);
}

/// De-interleaves 8 consecutive gray floats (from bytes) into even and
/// odd column float4s.
inline void load_even_odd(const std::uint8_t* gray8,
                          cellport::spu::vec_float4& even,
                          cellport::spu::vec_float4& odd) {
  using namespace cellport::spu;
  // 8 bytes -> two int4s via shuffles against zero.
  vec_uchar16 raw = vld_unaligned(gray8);
  static const vec_uchar16 pat_even = [] {
    vec_uchar16 p;
    for (unsigned k = 0; k < 4; ++k) {
      p.v[4 * k] = static_cast<std::uint8_t>(2 * k);
      p.v[4 * k + 1] = 16;
      p.v[4 * k + 2] = 16;
      p.v[4 * k + 3] = 16;
    }
    return p;
  }();
  static const vec_uchar16 pat_odd = [] {
    vec_uchar16 p;
    for (unsigned k = 0; k < 4; ++k) {
      p.v[4 * k] = static_cast<std::uint8_t>(2 * k + 1);
      p.v[4 * k + 1] = 16;
      p.v[4 * k + 2] = 16;
      p.v[4 * k + 3] = 16;
    }
    return p;
  }();
  const vec_uchar16 zero = spu_splats<vec_uchar16>(0);
  even = spu_convtf(vec_cast<vec_int4>(spu_shuffle(raw, zero, pat_even)));
  odd = spu_convtf(vec_cast<vec_int4>(spu_shuffle(raw, zero, pat_odd)));
}

/// De-interleaves 8 consecutive floats into even and odd lane float4s
/// (2 quadword loads + 2 shuffles).
inline void deinterleave_floats(const float* p, cellport::spu::vec_float4& e,
                                cellport::spu::vec_float4& o) {
  using namespace cellport::spu;
  auto raw = reinterpret_cast<const std::uint8_t*>(p);
  vec_float4 lo = vec_cast<vec_float4>(vld_unaligned(raw));
  vec_float4 hi = vec_cast<vec_float4>(vld_unaligned(raw + 16));
  static const vec_uchar16 pat_e = [] {
    vec_uchar16 pe;
    const std::uint8_t lane_src[4] = {0, 8, 16, 24};  // lo0 lo2 hi0 hi2
    for (unsigned k = 0; k < 4; ++k)
      for (unsigned byte = 0; byte < 4; ++byte)
        pe.v[4 * k + byte] = static_cast<std::uint8_t>(lane_src[k] + byte);
    return pe;
  }();
  static const vec_uchar16 pat_o = [] {
    vec_uchar16 po;
    const std::uint8_t lane_src[4] = {4, 12, 20, 28};  // lo1 lo3 hi1 hi3
    for (unsigned k = 0; k < 4; ++k)
      for (unsigned byte = 0; byte < 4; ++byte)
        po.v[4 * k + byte] = static_cast<std::uint8_t>(lane_src[k] + byte);
    return po;
  }();
  e = spu_shuffle(lo, hi, pat_e);
  o = spu_shuffle(lo, hi, pat_o);
}

/// Horizontal reduction of a float4 into a double (for the energy sums).
inline double reduce4(const cellport::spu::vec_float4& v) {
  cellport::spu::charge_odd(3);
  cellport::spu::charge_double_op(3);
  return static_cast<double>(v.v[0]) + v.v[1] + v.v[2] + v.v[3];
}

struct Energies {
  cellport::spu::vec_float4 lh = cellport::spu::spu_splats<
      cellport::spu::vec_float4>(0.0f);
  cellport::spu::vec_float4 hl = cellport::spu::spu_splats<
      cellport::spu::vec_float4>(0.0f);
  cellport::spu::vec_float4 hh = cellport::spu::spu_splats<
      cellport::spu::vec_float4>(0.0f);
};

/// One Haar step over a row pair, producing one LL row and accumulating
/// detail energies. `fetch0`/`fetch1` deliver float4s of even/odd columns
/// for the upper/lower input row.
template <typename RowFetch0, typename RowFetch1>
inline void haar_rows(int half_w, RowFetch0 fetch0, RowFetch1 fetch1,
                      float* ll_out, Energies& acc) {
  using namespace cellport::spu;
  const vec_float4 quarter = spu_splats<vec_float4>(0.25f);
  int x = 0;
  for (; x + 4 <= half_w; x += 4) {
    vec_float4 a;
    vec_float4 b;
    vec_float4 c;
    vec_float4 d;
    fetch0(x, a, b);
    fetch1(x, c, d);
    vec_float4 ab_p = spu_add(a, b);
    vec_float4 ab_m = spu_sub(a, b);
    vec_float4 cd_p = spu_add(c, d);
    vec_float4 cd_m = spu_sub(c, d);
    vec_float4 ll = spu_mul(quarter, spu_add(ab_p, cd_p));
    vec_float4 lh = spu_mul(quarter, spu_add(ab_m, cd_m));
    vec_float4 hl = spu_mul(quarter, spu_sub(ab_p, cd_p));
    vec_float4 hh = spu_mul(quarter, spu_sub(ab_m, cd_m));
    vst(ll_out + x, ll);
    acc.lh = spu_madd(lh, lh, acc.lh);
    acc.hl = spu_madd(hl, hl, acc.hl);
    acc.hh = spu_madd(hh, hh, acc.hh);
    spu_loop(1);
  }
  // Scalar tail for half-widths not divisible by 4.
  for (; x < half_w; ++x) {
    vec_float4 a;
    vec_float4 b;
    vec_float4 c;
    vec_float4 d;
    int base = x & ~3;
    fetch0(base, a, b);
    fetch1(base, c, d);
    std::size_t lane = static_cast<std::size_t>(x - base);
    sop(16);
    charge_odd(6);
    float ab_p = a.v[lane] + b.v[lane];
    float ab_m = a.v[lane] - b.v[lane];
    float cd_p = c.v[lane] + d.v[lane];
    float cd_m = c.v[lane] - d.v[lane];
    ll_out[x] = 0.25f * (ab_p + cd_p);
    float lh = 0.25f * (ab_m + cd_m);
    float hl = 0.25f * (ab_p - cd_p);
    float hh = 0.25f * (ab_m - cd_m);
    acc.lh.v[0] += lh * lh;
    acc.hl.v[0] += hl * hl;
    acc.hh.v[0] += hh * hh;
  }
}

}  // namespace cellport::kernels
