#include "kernels/ch_kernel.h"

#include <cstring>

#include "img/color.h"
#include "kernels/common.h"
#include "kernels/feed_kernel.h"
#include "kernels/fused_kernel.h"
#include "kernels/hsv_simd.h"
#include "kernels/messages.h"
#include "kernels/row_convert.h"
#include "spu/spu.h"
#include "support/aligned.h"

namespace cellport::kernels {

namespace {

using namespace cellport::sim;
using namespace cellport::spu;

// channel_pattern (the per-channel gather shuffles) lives in
// row_convert.h, shared with CC and the cellfuse single-pass kernel.

int ch_run(std::uint64_t ea) {
  auto* msg = static_cast<ImageMsg*>(spu_ls_alloc(sizeof(ImageMsg)));
  fetch_msg(msg, ea);

  const int w = msg->width;
  const int h = msg->height;
  const std::size_t hist_len =
      cellport::round_up(std::size_t{img::kHsvBins}, 4);
  auto* hist = spu_ls_alloc_array<std::uint32_t>(hist_len);
  std::memset(hist, 0, sizeof(std::uint32_t) * hist_len);

  const vec_uchar16 zero = spu_splats<vec_uchar16>(0);
  const vec_uchar16 pat_r = channel_pattern(0);
  const vec_uchar16 pat_g = channel_pattern(1);
  const vec_uchar16 pat_b = channel_pattern(2);
  const HsvConstants hsv_c = HsvConstants::load();

  // cellshard: a shard invocation (row_end > 0) counts only its row range
  // and emits the raw integer histogram; the PPE reducer sums shard
  // counts and applies the shared 1/(w*h) normalization.
  const bool shard = msg->row_end > 0;
  const int r0 = shard ? msg->row_begin : 0;
  const int r1 = shard ? msg->row_end : h;

  RowStreamer stream(msg->pixels_ea,
                     static_cast<std::uint32_t>(msg->stride), r0, r1,
                     msg->block_rows > 0 ? msg->block_rows : 12,
                     msg->buffering);
  while (stream.has_next()) {
    RowStreamer::Block blk = stream.next();
    for (int r = 0; r < blk.rows; ++r) {
      const std::uint8_t* row =
          blk.data + static_cast<std::size_t>(r) * msg->stride;
      int x = 0;
      // SIMD body: 4 pixels per iteration.
      for (; x + 4 <= w; x += 4) {
        vec_uchar16 raw = vld_unaligned(row + x * 3);
        vec_int4 ri =
            vec_cast<vec_int4>(spu_shuffle(raw, zero, pat_r));
        vec_int4 gi =
            vec_cast<vec_int4>(spu_shuffle(raw, zero, pat_g));
        vec_int4 bi =
            vec_cast<vec_int4>(spu_shuffle(raw, zero, pat_b));
        vec_int4 bins = hsv_bins_4(spu_convtf(ri), spu_convtf(gi),
                                   spu_convtf(bi), hsv_c);
        // Histogram update is a scatter: inherently scalar on the SPU.
        for (std::size_t lane = 0; lane < 4; ++lane) {
          auto bin = static_cast<std::uint32_t>(spu_extract(bins, lane));
          sstore(&hist[bin], sload(&hist[bin]) + 1);
        }
        spu_loop(1);
      }
      // Scalar tail for widths that are not a multiple of 4.
      for (; x < w; ++x) {
        sop(20);
        int bin = img::rgb_to_bin(row[x * 3], row[x * 3 + 1],
                                  row[x * 3 + 2]);
        sstore(&hist[static_cast<std::uint32_t>(bin)],
               sload(&hist[static_cast<std::uint32_t>(bin)]) + 1);
      }
    }
  }

  if (shard) {
    emit_result(hist, msg->out_ea,
                static_cast<std::uint32_t>(hist_len *
                                           sizeof(std::uint32_t)));
    return 0;
  }

  // Normalize into the output buffer and DMA it back (Section 3.5
  // step 5). The reciprocal uses the full-precision SPU division
  // sequence so the result matches the reference's float division.
  auto* out = spu_ls_alloc_array<float>(
      cellport::round_up(std::size_t{img::kHsvBins}, 4));
  float inv = 1.0f / (static_cast<float>(w) * static_cast<float>(h));
  sop(8);  // scalar reciprocal sequence
  vec_float4 vinv = spu_splats<vec_float4>(inv);
  for (int i = 0; i < img::kHsvBins; i += 4) {
    vec_int4 c = vld<vec_int4>(&hist[i]);
    vst(&out[i], spu_mul(spu_convtf(c), vinv));
    spu_loop(1);
  }
  emit_result(out, msg->out_ea,
              static_cast<std::uint32_t>(
                  cellport::round_up(std::size_t{img::kHsvBins}, 4) *
                  sizeof(float)));
  return 0;
}

// The pre-optimization port of Section 5.3: the C++ code transplanted to
// C with local buffers, single-buffered DMA, and no SIMD. Every scalar
// byte access pays the SPU's load-rotate cost and the data-dependent
// branches of the HSV conversion are unhinted (~50% flushed).
int ch_run_naive(std::uint64_t ea) {
  auto* msg = static_cast<ImageMsg*>(spu_ls_alloc(sizeof(ImageMsg)));
  fetch_msg(msg, ea);

  const int w = msg->width;
  const int h = msg->height;
  const std::size_t hist_len =
      cellport::round_up(std::size_t{img::kHsvBins}, 4);
  auto* hist = spu_ls_alloc_array<std::uint32_t>(hist_len);
  std::memset(hist, 0, sizeof(std::uint32_t) * hist_len);

  RowStreamer stream(msg->pixels_ea,
                     static_cast<std::uint32_t>(msg->stride), 0, h,
                     /*rows_per_block=*/12, kSingleBuffer);
  while (stream.has_next()) {
    RowStreamer::Block blk = stream.next();
    for (int r = 0; r < blk.rows; ++r) {
      const std::uint8_t* row =
          blk.data + static_cast<std::size_t>(r) * msg->stride;
      for (int x = 0; x < w; ++x) {
        // Scalar byte loads (load + rotate each).
        std::uint8_t pr = sload(&row[x * 3]);
        std::uint8_t pg = sload(&row[x * 3 + 1]);
        std::uint8_t pb = sload(&row[x * 3 + 2]);
        // The reference conversion's op mix on the SPU: float arithmetic
        // in scalar slots, two software divisions, and the min/max +
        // hue-sector branches. The compiler's static branch layout keeps
        // the common paths on the fall-through, so only ~1 branch per
        // pixel flushes — the histogram's regular arithmetic is why its
        // straight port already gains well (Section 5.3).
        sop(12);
        sop(30);  // two software float divisions (no divide instruction)
        charge_odd(5);
        charge_branch_miss(1.0);
        int bin = img::rgb_to_bin(pr, pg, pb);
        sstore(&hist[static_cast<std::uint32_t>(bin)],
               sload(&hist[static_cast<std::uint32_t>(bin)]) + 1);
        spu_loop(1);
      }
    }
  }

  auto* out = spu_ls_alloc_array<float>(
      cellport::round_up(std::size_t{img::kHsvBins}, 4));
  float inv = 1.0f / (static_cast<float>(w) * static_cast<float>(h));
  sop(20);
  for (int i = 0; i < img::kHsvBins; ++i) {
    sop(2);
    charge_odd(3);
    out[i] = static_cast<float>(hist[i]) * inv;
  }
  out[166] = out[167] = 0.0f;
  emit_result(out, msg->out_ea,
              static_cast<std::uint32_t>(
                  cellport::round_up(std::size_t{img::kHsvBins}, 4) *
                  sizeof(float)));
  return 0;
}

// ---- the lookup-table variant ----

/// 15-bit RGB -> bin table, sampled from the reference quantizer at
/// 5 bits per channel (each 5-bit value expanded back to 8 bits the
/// standard way). Precomputed at build time on real hardware (static
/// data in the kernel image; the module's code_bytes accounts for it).
const std::uint8_t* ch_lut() {
  static const std::uint8_t* table = [] {
    auto* t = new std::uint8_t[1 << 15];
    auto expand = [](int v5) {
      return static_cast<std::uint8_t>((v5 << 3) | (v5 >> 2));
    };
    for (int r = 0; r < 32; ++r) {
      for (int g = 0; g < 32; ++g) {
        for (int b = 0; b < 32; ++b) {
          t[(r << 10) | (g << 5) | b] = static_cast<std::uint8_t>(
              img::rgb_to_bin(expand(r), expand(g), expand(b)));
        }
      }
    }
    return t;
  }();
  return table;
}

int ch_run_lut(std::uint64_t ea) {
  auto* msg = static_cast<ImageMsg*>(spu_ls_alloc(sizeof(ImageMsg)));
  fetch_msg(msg, ea);

  const int w = msg->width;
  const int h = msg->height;
  const std::size_t hist_len =
      cellport::round_up(std::size_t{img::kHsvBins}, 4);
  auto* hist = spu_ls_alloc_array<std::uint32_t>(hist_len);
  std::memset(hist, 0, sizeof(std::uint32_t) * hist_len);
  const std::uint8_t* lut = ch_lut();

  RowStreamer stream(msg->pixels_ea,
                     static_cast<std::uint32_t>(msg->stride), 0, h,
                     /*rows_per_block=*/12, msg->buffering);
  while (stream.has_next()) {
    RowStreamer::Block blk = stream.next();
    for (int r = 0; r < blk.rows; ++r) {
      const std::uint8_t* row =
          blk.data + static_cast<std::size_t>(r) * msg->stride;
      for (int x = 0; x < w; ++x) {
        // Index assembly is cheap integer math; the table access and
        // histogram update are scalar LS loads.
        sop(4);
        charge_odd(6);  // 3 byte loads + LUT load (load+rotate each...
                        // amortized: bytes arrive in registers from the
                        // vectorized row load in real code)
        unsigned idx = (static_cast<unsigned>(row[x * 3] >> 3) << 10) |
                       (static_cast<unsigned>(row[x * 3 + 1] >> 3) << 5) |
                       static_cast<unsigned>(row[x * 3 + 2] >> 3);
        std::uint8_t bin = lut[idx];
        sstore(&hist[bin], sload(&hist[bin]) + 1);
        spu_loop(0.25);  // 4x unrolled
      }
    }
  }

  auto* out = spu_ls_alloc_array<float>(hist_len);
  float inv = 1.0f / (static_cast<float>(w) * static_cast<float>(h));
  sop(8);
  vec_float4 vinv = spu_splats<vec_float4>(inv);
  for (int i = 0; i < img::kHsvBins; i += 4) {
    vec_int4 c = vld<vec_int4>(&hist[i]);
    vst(&out[i], spu_mul(spu_convtf(c), vinv));
    spu_loop(1);
  }
  emit_result(out, msg->out_ea,
              static_cast<std::uint32_t>(hist_len * sizeof(float)));
  return 0;
}

}  // namespace

port::KernelModule& ch_module() {
  // ~24 KiB of code (dispatcher + three kernel versions) plus the 32 KiB
  // static bin table of the LUT variant, plus ~8 KiB for the fused body.
  static port::KernelModule module("CHExtract", 64 * 1024);
  static bool registered =
      (module.add_function(SPU_Run, &ch_run)
           .add_function(SPU_Run_Naive, &ch_run_naive)
           .add_function(SPU_Run_Lut, &ch_run_lut),
       register_feed(module), register_fused(module), true);
  (void)registered;
  return module;
}

}  // namespace cellport::kernels
