// 4-way SIMD HSV quantization for the SPE color kernels.
//
// This is the paper's Section 4.1 optimization recipe applied to MARVEL's
// color quantizer: the scalar reference (img/color.cpp) branches on the
// max channel per pixel; the SPU has no branch predictor (~18 cycles per
// flush), so the port replaces every branch with compare/select masks and
// keeps all constants in registers (HsvConstants, loaded once per kernel
// invocation). The arithmetic mirrors the reference's exact operation and
// rounding order — divisions included, via the correctly rounded spu_div —
// so the 4-wide port produces bit-identical bins.
#pragma once

#include "img/color.h"
#include "spu/spu.h"

namespace cellport::kernels {

/// Constant registers of the HSV quantizer, splatted once per kernel
/// invocation instead of once per pixel group.
struct HsvConstants {
  cellport::spu::vec_float4 inv255;
  cellport::spu::vec_float4 black_val;
  cellport::spu::vec_float4 gray_sat;
  cellport::spu::vec_float4 zero_f;
  cellport::spu::vec_float4 three_f;
  cellport::spu::vec_float4 four_f;
  cellport::spu::vec_float4 sixty;
  cellport::spu::vec_float4 h120;
  cellport::spu::vec_float4 h240;
  cellport::spu::vec_float4 h360;
  cellport::spu::vec_float4 inv20;
  cellport::spu::vec_float4 ones_bits;
  cellport::spu::vec_int4 zero_i;
  cellport::spu::vec_int4 two_i;
  cellport::spu::vec_int4 three_i;
  cellport::spu::vec_int4 four_i;
  cellport::spu::vec_int4 seventeen_i;
  cellport::spu::vec_int4 eighteen_i;

  static HsvConstants load() {
    using namespace cellport::spu;
    HsvConstants c;
    c.inv255 = spu_splats<vec_float4>(1.0f / 255.0f);
    c.black_val = spu_splats<vec_float4>(img::kBlackValF);
    c.gray_sat = spu_splats<vec_float4>(img::kGraySatF);
    c.zero_f = spu_splats<vec_float4>(0.0f);
    c.three_f = spu_splats<vec_float4>(3.0f);
    c.four_f = spu_splats<vec_float4>(4.0f);
    c.sixty = spu_splats<vec_float4>(60.0f);
    c.h120 = spu_splats<vec_float4>(120.0f);
    c.h240 = spu_splats<vec_float4>(240.0f);
    c.h360 = spu_splats<vec_float4>(360.0f);
    c.inv20 = spu_splats<vec_float4>(1.0f / 20.0f);
    c.ones_bits = vec_cast<vec_float4>(spu_splats<vec_uint4>(~0u));
    c.zero_i = spu_splats<vec_int4>(0);
    c.two_i = spu_splats<vec_int4>(2);
    c.three_i = spu_splats<vec_int4>(3);
    c.four_i = spu_splats<vec_int4>(4);
    c.seventeen_i = spu_splats<vec_int4>(17);
    c.eighteen_i = spu_splats<vec_int4>(18);
    return c;
  }
};

/// Quantizes 4 pixels' RGB bytes (as float lanes in [0,255]) into their
/// 166-bin HSV indices.
///
/// Every arithmetic step mirrors the scalar reference's operation and
/// rounding order exactly (same constants, same mul/add sequencing, the
/// correctly-rounded spu_div), so the SIMD port is bit-identical to
/// img/color.cpp — only the control flow changed (branches to masks).
inline cellport::spu::vec_int4 hsv_bins_4(
    const cellport::spu::vec_float4& r8,
    const cellport::spu::vec_float4& g8,
    const cellport::spu::vec_float4& b8, const HsvConstants& c) {
  using namespace cellport::spu;

  vec_float4 r = spu_mul(r8, c.inv255);
  vec_float4 g = spu_mul(g8, c.inv255);
  vec_float4 b = spu_mul(b8, c.inv255);

  // v = max(r,g,b), mn = min(r,g,b) — branch-free.
  vec_float4 v = spu_sel(r, g, spu_cmpgt(g, r));
  v = spu_sel(v, b, spu_cmpgt(b, v));
  vec_float4 mn = spu_sel(g, r, spu_cmpgt(g, r));
  mn = spu_sel(mn, b, spu_cmpgt(mn, b));
  vec_float4 delta = spu_sub(v, mn);

  // black: v < 0.08. gray: s = delta/v < 0.10 (v == 0 lanes produce
  // NaN, whose compare is false — they are already black).
  vec_float4 black_m = spu_cmpgt(c.black_val, v);
  vec_float4 s = spu_div(delta, v);
  vec_float4 gray_m = spu_cmpgt(c.gray_sat, s);

  // Gray bin: min(int(v*4), 3).
  vec_int4 gray_bin = spu_convts(spu_mul(v, c.four_f));
  gray_bin = spu_sel(gray_bin, c.three_i, spu_cmpgt(gray_bin, c.three_i));

  // Hue sector masks, replacing the reference's if-chain:
  // mr: v==r (checked first), mg: v==g and not mr; b is the remainder.
  vec_float4 mr = spu_cmpeq(v, r);
  vec_float4 mg = spu_and(spu_cmpeq(v, g), spu_xor(mr, c.ones_bits));

  // t = sector numerator / delta; h = 60*t + {0,120,240}, +360 wrap.
  vec_float4 diff = spu_sel(spu_sel(spu_sub(r, g), spu_sub(b, r), mg),
                            spu_sub(g, b), mr);
  vec_float4 t = spu_div(diff, delta);
  vec_float4 hbase = spu_sel(
      spu_sel(c.h240, c.h120, mg), c.zero_f, mr);
  vec_float4 h = spu_add(spu_mul(t, c.sixty), hbase);
  vec_float4 wrap_m = spu_cmpgt(c.zero_f, h);
  h = spu_sel(h, spu_add(h, c.h360), wrap_m);

  // h_idx = int(h * (1/20)) % 18 (the wrap only ever hits 18 -> 0).
  vec_int4 h_idx = spu_convts(spu_mul(h, c.inv20));
  vec_int4 wrap18_m =
      vec_cast<vec_int4>(spu_cmpgt(h_idx, c.seventeen_i));
  h_idx = spu_sub(h_idx, spu_and(wrap18_m, c.eighteen_i));

  // s_idx = min(int(s*3), 2), v_idx = min(int(v*3), 2).
  vec_int4 s_idx = spu_convts(spu_mul(s, c.three_f));
  s_idx = spu_sel(s_idx, c.two_i, spu_cmpgt(s_idx, c.two_i));
  vec_int4 v_idx = spu_convts(spu_mul(v, c.three_f));
  v_idx = spu_sel(v_idx, c.two_i, spu_cmpgt(v_idx, c.two_i));

  // bin = 4 + 9*h + 3*s + v  (strength-reduced multiplies).
  vec_int4 h9 = spu_add(spu_sl(h_idx, 3), h_idx);
  vec_int4 s3i = spu_add(spu_sl(s_idx, 1), s_idx);
  vec_int4 chroma = spu_add(spu_add(h9, s3i), spu_add(v_idx, c.four_i));

  vec_int4 bin = spu_sel(chroma, gray_bin, vec_cast<vec_int4>(gray_m));
  bin = spu_sel(bin, c.zero_i, vec_cast<vec_int4>(black_m));
  return bin;
}

}  // namespace cellport::kernels
