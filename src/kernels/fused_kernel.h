// cellfuse: single-pass fused extraction (SPU_Run_Fused).
//
// One triple-buffered pass over a row range computes ALL FOUR features'
// raw partials in a single kernel invocation: the RGB rows are fetched
// once, quantized to HSV bins once (feeding the color histogram and the
// correlogram window), and converted to gray once (feeding the Sobel edge
// binning and the Haar texture pyramid). The per-feature production
// functions are the EXACT ones the standalone kernels run (row_convert.h,
// cc_window.h, eh_edge.h, tx_haar.h), so the fused partial is bit-exact
// with four standalone shard partials by construction.
//
// Output layout: the kFused* block of messages.h — CH/CC/EH count words,
// then the per-16-row-tile TX moment doubles — emitted with ONE DMA.
#pragma once

#include "port/dispatcher.h"

namespace cellport::kernels {

/// Registers the fused extraction entry point under SPU_Run_Fused, so
/// fused lanes ride whichever extract SPEs the scenario already scheduled.
void register_fused(port::KernelModule& module);

}  // namespace cellport::kernels
