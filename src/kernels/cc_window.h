// Shared correlogram window machinery (hoisted out of cc_kernel.cpp for
// cellfuse): the ring-buffer state, the per-offset shuffle patterns, and
// the SIMD window accumulation that produces one output row. The fused
// kernel and the standalone CC kernel run the exact same produce_row, so
// their same/possible counts are bit-identical by construction.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#include "features/color_correlogram.h"
#include "kernels/row_convert.h"
#include "spu/spu.h"

namespace cellport::kernels {

inline constexpr int kCcRadius = features::kCorrWindowRadius;  // 8
inline constexpr int kCcBlockRows = 12;
/// Window + one block of quantized rows resident in the LS.
inline constexpr int kCcRingRows = 2 * kCcRadius + 1 + kCcBlockRows;
/// 0xFF can never equal a real bin (bins are 0..165), so border windows
/// simply fail to match — no branches in the SIMD loop.
inline constexpr std::uint8_t kCcSentinel = 0xFF;

/// Widens the low/high byte halves of a byte vector into halfwords and
/// accumulates (2 shuffles + 2 adds).
inline void widen_accumulate(const cellport::spu::vec_uchar16& bytes,
                             cellport::spu::vec_ushort8& lo,
                             cellport::spu::vec_ushort8& hi) {
  using namespace cellport::spu;
  static const vec_uchar16 pat_lo = [] {
    vec_uchar16 p;
    for (unsigned k = 0; k < 8; ++k) {
      p.v[2 * k] = static_cast<std::uint8_t>(k);  // low byte (LE)
      p.v[2 * k + 1] = 16;                        // zero
    }
    return p;
  }();
  static const vec_uchar16 pat_hi = [] {
    vec_uchar16 p;
    for (unsigned k = 0; k < 8; ++k) {
      p.v[2 * k] = static_cast<std::uint8_t>(8 + k);
      p.v[2 * k + 1] = 16;
    }
    return p;
  }();
  const vec_uchar16 zero = spu_splats<vec_uchar16>(0);
  lo = spu_add(lo, vec_cast<vec_ushort8>(spu_shuffle(bytes, zero, pat_lo)));
  hi = spu_add(hi, vec_cast<vec_ushort8>(spu_shuffle(bytes, zero, pat_hi)));
}

struct CcState {
  std::uint8_t* ring[kCcRingRows];
  int row_bytes = 0;
  std::uint32_t* same;
  std::uint32_t* possible;
  std::uint16_t* cols_clamped;  // per-x clamped window width
};

/// Shuffle patterns extracting the 16 bytes at offset dx in
/// [-kCcRadius, kCcRadius] from a pair of adjacent quadwords.
inline const cellport::spu::vec_uchar16& shift_pattern(int dx) {
  using namespace cellport::spu;
  static const auto patterns = [] {
    std::array<vec_uchar16, 2 * kCcRadius + 1> out{};
    for (int d = -kCcRadius; d <= kCcRadius; ++d) {
      unsigned start = static_cast<unsigned>(d < 0 ? 16 + d : d);
      for (unsigned i = 0; i < 16; ++i) {
        out[static_cast<std::size_t>(d + kCcRadius)].v[i] =
            static_cast<std::uint8_t>(start + i);
      }
    }
    return out;
  }();
  return patterns[static_cast<std::size_t>(dx + kCcRadius)];
}

/// Produces one output row y from the ring buffer.
inline void cc_produce_row(const CcState& st, int y, int w, int h) {
  using namespace cellport::spu;
  const int y0 = std::max(0, y - kCcRadius);
  const int y1 = std::min(h - 1, y + kCcRadius);
  const std::uint8_t* center_row = st.ring[y % kCcRingRows] + kRingOrigin;

  for (int x0 = 0; x0 < w; x0 += 16) {
    vec_uchar16 centers =
        vld<vec_uchar16>(center_row + x0);  // kRingOrigin keeps this aligned
    vec_ushort8 acc_lo = spu_splats<vec_ushort8>(0);
    vec_ushort8 acc_hi = spu_splats<vec_ushort8>(0);
    for (int yy = y0; yy <= y1; ++yy) {
      const std::uint8_t* nrow = st.ring[yy % kCcRingRows] + kRingOrigin;
      // Three aligned quadwords cover the whole [x0-kR, x0+15+kR] span;
      // each window offset is one shuffle instead of an unaligned load.
      vec_uchar16 qm1 = vld<vec_uchar16>(nrow + x0 - 16);
      vec_uchar16 q0 = vld<vec_uchar16>(nrow + x0);
      vec_uchar16 q1 = vld<vec_uchar16>(nrow + x0 + 16);
      vec_uchar16 row_acc = spu_splats<vec_uchar16>(0);
      for (int dx = -kCcRadius; dx <= kCcRadius; ++dx) {
        vec_uchar16 neigh =
            dx < 0 ? spu_shuffle(qm1, q0, shift_pattern(dx))
                   : spu_shuffle(q0, q1, shift_pattern(dx));
        // Compare masks are 0xFF (= -1) per matching byte: subtracting
        // the mask adds 1 per match — no separate AND needed.
        row_acc = spu_sub(row_acc, spu_cmpeq(neigh, centers));
      }
      widen_accumulate(row_acc, acc_lo, acc_hi);
      spu_loop(1);
    }
    // Scalar finish per center: histogram scatter.
    const int rows_clamped = y1 - y0 + 1;
    const int lanes = std::min(16, w - x0);
    for (int lane = 0; lane < lanes; ++lane) {
      std::uint32_t cnt =
          lane < 8 ? spu_extract(acc_lo, static_cast<std::size_t>(lane))
                   : spu_extract(acc_hi, static_cast<std::size_t>(lane - 8));
      std::uint8_t bin = sload(&center_row[x0 + lane]);
      std::uint32_t area =
          static_cast<std::uint32_t>(rows_clamped) *
          sload(&st.cols_clamped[x0 + lane]);
      sop(2);
      sstore(&st.same[bin], sload(&st.same[bin]) + cnt - 1);
      sstore(&st.possible[bin], sload(&st.possible[bin]) + area - 1);
    }
    spu_loop(1);
  }
}

}  // namespace cellport::kernels
