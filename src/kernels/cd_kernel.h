// ConceptDetect on the SPE: SVM scoring of one feature vector against a
// set of concept models.
//
// The support vectors of a model set (up to ~150 KB) are streamed from
// main memory through double-buffered DMA while the SPU computes the
// previous chunk's RBF terms with 4-way fused multiply-adds. The
// per-support-vector exp() is software-emulated (the SPU has no scalar
// unit, and the accumulation is kept in double precision to match the
// reference decision function) — which is why the paper's ConceptDet
// shows the smallest optimized speed-up of the five kernels (10.80x).
#pragma once

#include "port/dispatcher.h"

namespace cellport::kernels {

port::KernelModule& cd_module();

/// Opcode of the module's kNN detection path (SVM detection is SPU_Run).
std::uint32_t cd_knn_opcode();

}  // namespace cellport::kernels
