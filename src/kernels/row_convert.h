// Shared SIMD row converters for the extraction kernels.
//
// cellfuse hoisted these out of cc_kernel.cpp / eh_kernel.cpp so the
// fused single-pass kernel reuses the EXACT same functions the standalone
// kernels run — bit-exactness between fused and per-feature extraction is
// then a property of the code structure, not of a parallel
// re-implementation (the systematic rewrite-rules approach: one pattern,
// many call sites).
//
//  - quantize_row_simd: RGB row -> 166-bin HSV byte row (CH + CC input)
//  - gray_row_simd:     RGB row -> BT.601 gray byte row  (EH + TX input)
#pragma once

#include <cstdint>

#include "img/color.h"
#include "kernels/common.h"
#include "kernels/hsv_simd.h"
#include "spu/spu.h"

namespace cellport::kernels {

/// First real pixel column inside a streaming ring row (16-byte aligned;
/// columns 0..15 hold the left sentinel/clamp band).
inline constexpr int kRingOrigin = 16;

/// Shuffle patterns building one 32-bit lane per pixel from channel bytes
/// at interleaved offsets c, c+3, c+6, c+9 (little-endian low byte;
/// indices >= 16 select from the zero vector).
inline cellport::spu::vec_uchar16 channel_pattern(unsigned c) {
  cellport::spu::vec_uchar16 p;
  for (unsigned lane = 0; lane < 4; ++lane) {
    p.v[4 * lane] = static_cast<std::uint8_t>(c + 3 * lane);
    p.v[4 * lane + 1] = 16;
    p.v[4 * lane + 2] = 16;
    p.v[4 * lane + 3] = 16;
  }
  return p;
}

/// Packs the low bytes of four int4s into 16 bytes (3 shuffles).
inline cellport::spu::vec_uchar16 pack_bins(
    const cellport::spu::vec_int4& a, const cellport::spu::vec_int4& b,
    const cellport::spu::vec_int4& c, const cellport::spu::vec_int4& d) {
  using namespace cellport::spu;
  vec_uchar16 word_low;
  for (unsigned k = 0; k < 4; ++k) {
    word_low.v[k] = static_cast<std::uint8_t>(4 * k);            // from a
    word_low.v[4 + k] = static_cast<std::uint8_t>(16 + 4 * k);   // from b
    word_low.v[8 + k] = static_cast<std::uint8_t>(4 * k);        // from c
    word_low.v[12 + k] = static_cast<std::uint8_t>(16 + 4 * k);  // from d
  }
  vec_uchar16 ab = spu_shuffle(vec_cast<vec_uchar16>(a),
                               vec_cast<vec_uchar16>(b), word_low);
  vec_uchar16 cd = spu_shuffle(vec_cast<vec_uchar16>(c),
                               vec_cast<vec_uchar16>(d), word_low);
  vec_uchar16 combine;
  for (unsigned k = 0; k < 8; ++k) {
    combine.v[k] = static_cast<std::uint8_t>(k);
    combine.v[8 + k] = static_cast<std::uint8_t>(16 + 8 + k);
  }
  return spu_shuffle(ab, cd, combine);
}

/// Quantizes one RGB row into HSV-bin bytes (SIMD body + scalar tail).
/// The optional `count` hook observes each SIMD group's four bin lanes
/// and each scalar-tail bin — cellfuse feeds the CH histogram from the
/// bins while they are still in registers, instead of re-reading (or
/// worse, re-converting) the row. Pass nullptr-like no-ops to get the
/// plain quantizer the CC kernel runs.
template <typename CountGroup4, typename CountTail>
inline void quantize_row_counted(const std::uint8_t* rgb, int w,
                                 std::uint8_t* dst, const HsvConstants& hsv_c,
                                 CountGroup4&& count4, CountTail&& count1) {
  using namespace cellport::spu;
  static const vec_uchar16 pat_r = channel_pattern(0);
  static const vec_uchar16 pat_g = channel_pattern(1);
  static const vec_uchar16 pat_b = channel_pattern(2);
  const vec_uchar16 zero = spu_splats<vec_uchar16>(0);

  int x = 0;
  for (; x + 16 <= w; x += 16) {
    vec_int4 bins[4];
    for (int q = 0; q < 4; ++q) {
      vec_uchar16 raw = vld_unaligned(rgb + (x + 4 * q) * 3);
      vec_int4 ri = vec_cast<vec_int4>(spu_shuffle(raw, zero, pat_r));
      vec_int4 gi = vec_cast<vec_int4>(spu_shuffle(raw, zero, pat_g));
      vec_int4 bi = vec_cast<vec_int4>(spu_shuffle(raw, zero, pat_b));
      bins[q] = hsv_bins_4(spu_convtf(ri), spu_convtf(gi), spu_convtf(bi),
                           hsv_c);
      count4(bins[q]);
    }
    vst(dst + x, pack_bins(bins[0], bins[1], bins[2], bins[3]));
    spu_loop(1);
  }
  for (; x < w; ++x) {
    sop(20);
    charge_odd(3);
    auto bin = static_cast<std::uint8_t>(
        img::rgb_to_bin(rgb[x * 3], rgb[x * 3 + 1], rgb[x * 3 + 2]));
    dst[x] = bin;
    count1(bin);
  }
}

/// Quantizes one RGB row into ring-row bins (the CC kernel's converter).
inline void quantize_row_simd(const std::uint8_t* rgb, int w,
                              std::uint8_t* dst, const HsvConstants& hsv_c) {
  quantize_row_counted(rgb, w, dst, hsv_c,
                       [](const cellport::spu::vec_int4&) {},
                       [](std::uint8_t) {});
}

/// gray = (77 r + 150 g + 29 b) >> 8, 8 pixels at a time in halfwords
/// (the products fit 16 bits), matching the integer reference exactly.
inline void gray_row_simd(const std::uint8_t* rgb, int w,
                          std::uint8_t* dst) {
  using namespace cellport::spu;
  // Gathering a channel of 8 interleaved pixels spans 24 bytes, so each
  // unpack shuffles across a pair of quadword loads (channel bytes into
  // the low 8 byte positions), then widens against the zero vector.
  static const auto make_gather = [](unsigned c) {
    vec_uchar16 p;
    for (unsigned lane = 0; lane < 8; ++lane) {
      p.v[lane] = static_cast<std::uint8_t>(c + 3 * lane);  // 0..23
    }
    for (unsigned i = 8; i < 16; ++i) p.v[i] = 0;
    return p;
  };
  static const vec_uchar16 gather_r = make_gather(0);
  static const vec_uchar16 gather_g = make_gather(1);
  static const vec_uchar16 gather_b = make_gather(2);
  static const vec_uchar16 widen = [] {
    vec_uchar16 p;
    for (unsigned lane = 0; lane < 8; ++lane) {
      p.v[2 * lane] = static_cast<std::uint8_t>(lane);
      p.v[2 * lane + 1] = 16;  // zero byte
    }
    return p;
  }();
  static const vec_uchar16 pack = [] {
    vec_uchar16 p;
    for (unsigned k = 0; k < 8; ++k) {
      p.v[k] = static_cast<std::uint8_t>(2 * k);       // low byte of lane k
      p.v[8 + k] = static_cast<std::uint8_t>(16 + 2 * k);
    }
    return p;
  }();
  const vec_uchar16 zero = spu_splats<vec_uchar16>(0);
  const vec_ushort8 wr = spu_splats<vec_ushort8>(77);
  const vec_ushort8 wg = spu_splats<vec_ushort8>(150);
  const vec_ushort8 wb = spu_splats<vec_ushort8>(29);

  auto unpack = [&](const vec_uchar16& lo, const vec_uchar16& hi,
                    const vec_uchar16& gather) {
    vec_uchar16 bytes = spu_shuffle(lo, hi, gather);
    return vec_cast<vec_ushort8>(spu_shuffle(bytes, zero, widen));
  };

  int x = 0;
  for (; x + 16 <= w; x += 16) {
    vec_uchar16 halves[2];
    for (int half = 0; half < 2; ++half) {
      const std::uint8_t* p = rgb + (x + 8 * half) * 3;
      vec_uchar16 lo = vld_unaligned(p);
      vec_uchar16 hi = vld_unaligned(p + 16);
      vec_ushort8 r = unpack(lo, hi, gather_r);
      vec_ushort8 g = unpack(lo, hi, gather_g);
      vec_ushort8 b = unpack(lo, hi, gather_b);
      vec_ushort8 acc = spu_add(spu_add(spu_mulhw(r, wr), spu_mulhw(g, wg)),
                                spu_mulhw(b, wb));
      acc = spu_sr(acc, 8);
      halves[half] = vec_cast<vec_uchar16>(acc);
    }
    vst(dst + x, spu_shuffle(halves[0], halves[1], pack));
    spu_loop(1);
  }
  for (; x < w; ++x) {
    sop(8);
    charge_odd(4);
    unsigned luma = 77u * rgb[x * 3] + 150u * rgb[x * 3 + 1] +
                    29u * rgb[x * 3 + 2];
    dst[x] = static_cast<std::uint8_t>(luma >> 8);
  }
}

}  // namespace cellport::kernels
