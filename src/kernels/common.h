// Shared SPE-side helpers: bulk DMA, multi-buffered row streaming,
// unaligned vector loads.
#pragma once

#include <cstdint>

#include "spu/spu.h"

namespace cellport::kernels {

/// DMAs `bytes` from main memory into the local store, splitting into
/// <= 16 KiB MFC commands on one tag (both addresses must be 16-byte
/// aligned and bytes a multiple of 16).
void dma_in(void* ls, std::uint64_t ea, std::uint32_t bytes, unsigned tag);

/// DMAs `bytes` from the local store out to main memory (same rules).
void dma_out(const void* ls, std::uint64_t ea, std::uint32_t bytes,
             unsigned tag);

/// Fetches a POD wrapper struct (the first DMA of every kernel call).
template <typename T>
void fetch_msg(T* ls_msg, std::uint64_t ea) {
  constexpr std::uint32_t bytes =
      static_cast<std::uint32_t>((sizeof(T) + 15) & ~std::size_t{15});
  dma_in(ls_msg, ea, bytes, 0);
  cellport::sim::mfc_write_tag_mask(1u << 0);
  cellport::sim::mfc_read_tag_status_all();
}

/// Emits a kernel's result buffer (the closing DMA of every kernel call).
/// Per-call dispatch puts on tag 0 and waits — exactly the historical
/// dma_out + tag-mask + tag-status tail. Under ring dispatch (the
/// SpeContext carries a deferred-output tag) the put is issued on that
/// tag and NOT waited for: the dispatcher fences the tag once per drained
/// batch, so this request's output transfer overlaps the next request's
/// input DMA. Functionally safe either way — the simulated MFC copies
/// data at issue time (hardware would double-buffer the output area).
void emit_result(const void* ls, std::uint64_t ea, std::uint32_t bytes);

/// Multi-buffered streaming of consecutive image rows through the local
/// store — the paper's "double and triple buffering" optimization. With
/// depth 1 the kernel stalls on every block (the naive ports); with depth
/// 2-3 the next block's DMA overlaps the current block's compute.
class RowStreamer {
 public:
  /// Streams rows [row_begin, row_end) of an image whose rows start at
  /// `base_ea + row * stride`. Each block holds `rows_per_block` rows.
  /// `depth` buffers are allocated from the local store.
  RowStreamer(std::uint64_t base_ea, std::uint32_t stride, int row_begin,
              int row_end, int rows_per_block, int depth);

  struct Block {
    const std::uint8_t* data;  // rows_in_block rows, `stride` apart
    int first_row;
    int rows;
  };

  /// True while blocks remain.
  bool has_next() const { return next_row_ < row_end_; }

  /// Waits for the oldest in-flight block and kicks off the next prefetch.
  Block next();

 private:
  void issue(int slot);

  std::uint64_t base_ea_;
  std::uint32_t stride_;
  int row_end_;
  int rows_per_block_;
  int depth_;
  int next_row_;       // next row to produce to the caller
  int next_fetch_;     // next row to start fetching
  std::uint8_t* buf_[3] = {};
  int buf_first_[3] = {};
  int buf_rows_[3] = {};
  int head_ = 0;       // slot of the oldest in-flight block
  int prev_slot_ = -1;  // slot consumed by the previous next() call
};

/// Unaligned 16-byte load emulated the SPU way: two aligned quadword
/// loads plus one shuffle.
cellport::spu::vec_uchar16 vld_unaligned(const std::uint8_t* p);

}  // namespace cellport::kernels
