// Wrapper-structure definitions shared between the PPE stubs and the SPE
// kernels (the paper's Section 3.3 "common data structure" / Listing 4's
// FILL_MSG_FROM_COLORIMAGE pattern).
//
// Every struct is a 16-byte-padded POD: its address travels through the
// mailbox, the kernel DMAs the struct first, then the buffers it points
// to. Output buffers are included in the wrapper, "for simplicity", as in
// the paper.
#pragma once

#include <cstdint>

namespace cellport::kernels {

/// Opcodes of the MARVEL kernels (Listing 1's SPU_Run_*). One module may
/// register several related functions (the paper clusters methods into
/// kernels); the optimized and naive entry points share a module.
inline constexpr std::uint32_t SPU_Run = 1;        // optimized kernel body
inline constexpr std::uint32_t SPU_Run_Naive = 2;  // pre-optimization port
/// CH only: the lookup-table variant ("change the algorithm for better
/// vectorization"): a 32 KiB 5-bit-per-channel bin table resident in the
/// LS replaces the per-pixel HSV arithmetic entirely, at the cost of
/// quantization fidelity. bench_ablation measures both sides.
inline constexpr std::uint32_t SPU_Run_Lut = 3;
/// cellfeed ingest (registered in every extract module so feed rows ride
/// whatever SPEs the scenario already scheduled): DMA-list gather of
/// packed P6 pixel rows, LS unpack to the aligned row stride, DMA-list
/// scatter of finished rows — triple-buffered per tile. (Opcode 4 is
/// taken by ConceptDet's kNN entry point.)
inline constexpr std::uint32_t SPU_Run_Feed = 5;
/// cellfuse single-pass extraction (registered in every extract module so
/// fused lanes ride whatever SPEs the scenario already scheduled): one
/// triple-buffered pass over the row range, one RGB->HSV and one RGB->gray
/// conversion per pixel, emitting ALL FOUR raw-partial layouts (CH/CC/EH
/// count words then per-tile TX moment doubles — see the kFused* layout
/// below) in a single invocation. The PPE reduces fused partials with the
/// same fixed-order merges as cellshard, so fused runs stay bit-exact
/// with the per-feature kernels.
inline constexpr std::uint32_t SPU_Run_Fused = 6;

/// DMA buffering depth for the optimized kernels (ablation knob; the
/// paper quotes "double and triple buffering of DMA transfers").
enum BufferingDepth : std::int32_t {
  kSingleBuffer = 1,
  kDoubleBuffer = 2,
  kTripleBuffer = 3,
};

/// Image-input message used by the four feature-extraction kernels.
struct alignas(16) ImageMsg {
  std::uint64_t pixels_ea = 0;  // interleaved RGB8 rows
  std::int32_t width = 0;
  std::int32_t height = 0;
  std::int32_t stride = 0;      // bytes between rows (16-byte multiple)
  std::int32_t buffering = kDoubleBuffer;
  std::uint64_t out_ea = 0;     // float output buffer
  std::int32_t out_count = 0;   // number of floats expected
  /// Rows per DMA block for streaming kernels; 0 picks the kernel's
  /// default (ablation knob: LS pressure vs DMA count).
  std::int32_t block_rows = 0;
  /// cellshard: row range [row_begin, row_end) this invocation covers.
  /// row_end == 0 means the whole image (legacy full-frame call, final
  /// normalized output). row_end > 0 selects shard mode: the kernel
  /// processes only its range and emits a RAW PARTIAL (integer bin
  /// counts / per-tile moments, see shard/partials.h) to out_ea; the PPE
  /// reduces partials and applies the shared normalization.
  std::int32_t row_begin = 0;
  std::int32_t row_end = 0;
};

/// cellfeed ingest message (SPU_Run_Feed): the kernel gathers the packed
/// w*3-byte pixel rows of a binary P6 stream straight out of main memory
/// with one DMA-list element per row (source rows are byte-packed, so
/// each element covers the enclosing 16-byte-aligned window and the
/// kernel shifts by the in-quadword offset), unpacks them to the
/// destination image's 16-byte row stride in the LS, and scatters whole
/// finished rows back with a second DMA list. Tiles of rows are
/// multi-buffered: get tile w+2 / unpack tile w+1 / put tile w.
struct alignas(16) FeedMsg {
  std::uint64_t src_ea = 0;     // first pixel byte of the P6 stream
  std::uint64_t dst_ea = 0;     // row 0 of the destination RgbImage
  std::int32_t width = 0;
  std::int32_t height = 0;
  std::int32_t dst_stride = 0;  // bytes between dest rows (16B multiple)
  std::int32_t buffering = kTripleBuffer;
  /// Row range [row_begin, row_end) this invocation ingests (cellshard
  /// splits an image's rows across the scenario's SPEs).
  std::int32_t row_begin = 0;
  std::int32_t row_end = 0;
  /// Rows per DMA-list tile; 0 picks the kernel default (LS-clamped).
  std::int32_t rows_per_tile = 0;
  std::int32_t pad_ = 0;
};

/// Concept-detection message: one feature vector against one model set.
struct alignas(16) DetectMsg {
  std::uint64_t feature_ea = 0;   // float[dim], 16-byte aligned
  std::int32_t dim = 0;
  std::int32_t num_models = 0;
  std::uint64_t models_ea = 0;    // DetectModelDesc[num_models]
  std::uint64_t scores_ea = 0;    // double[num_models] output
  std::int32_t buffering = kDoubleBuffer;
  /// cellshard: first model of this invocation's concept block. The
  /// kernel reads descriptors starting at
  /// `models_ea + model_begin * sizeof(DetectModelDesc)` and scores
  /// `num_models` of them into scores_ea (the PPE points scores_ea at a
  /// per-shard staging buffer and concatenates). 0 = legacy full set.
  std::int32_t model_begin = 0;
};

/// kNN concept-detection message (the alternative classifier Section 5.1
/// lists next to SVMs). Exemplars are packed rows in main memory, labels
/// a parallel int array; the kernel streams exemplars and outputs one
/// score per label: 2*(k-neighbor fraction) - 1 in [-1, 1].
struct alignas(16) KnnMsg {
  std::uint64_t feature_ea = 0;    // float[dim], 16-byte aligned
  std::int32_t dim = 0;
  std::int32_t k = 0;
  std::int32_t num_exemplars = 0;
  std::int32_t num_labels = 0;     // labels are 0..num_labels-1
  std::uint64_t exemplars_ea = 0;  // float[num_exemplars * stride]
  std::uint64_t labels_ea = 0;     // int32[num_exemplars] (16B padded)
  std::uint64_t scores_ea = 0;     // double[num_labels] output
  std::int32_t stride = 0;         // floats per exemplar row (16B mult.)
  std::int32_t buffering = kDoubleBuffer;
  std::int32_t pad_[2] = {};
};

// ---- cellshard: raw-partial layout shared between SPE kernels and the
// PPE reducer (shard::Reducer). A shard invocation (ImageMsg.row_end > 0)
// writes these to out_ea instead of the normalized float output. ----

/// CH partial: uint32[kShardChWords] raw bin counts (168 = kHsvBins
/// rounded up to 4; pads stay zero).
inline constexpr std::int32_t kShardChWords = 168;
/// CC partial: uint32[kShardCcWords] — same[168] then possible[168],
/// contiguous.
inline constexpr std::int32_t kShardCcWords = 336;
/// EH partial: uint32[kShardEhWords] raw (angle, magnitude) bin counts.
inline constexpr std::int32_t kShardEhWords = 64;
/// TX partials are PER 16-INPUT-ROW TILE, not per shard: 12 doubles per
/// tile (4 Haar levels x {lh, hl, hh} detail energies). Tile-granular
/// partials keep the double summation order independent of the shard
/// plan, so sharded and unsharded runs are bit-exact. Shard row ranges
/// for TX must start on a tile boundary.
inline constexpr std::int32_t kTxTileRows = 16;
inline constexpr std::int32_t kTxTileDoubles = 12;
/// Tiles covering input rows [0, 2*(h/2)) — the even-height region every
/// Haar level consumes.
inline constexpr std::int32_t tx_num_tiles(std::int32_t h) {
  return (2 * (h / 2) + kTxTileRows - 1) / kTxTileRows;
}

// ---- cellfuse: fused raw-partial layout (SPU_Run_Fused). One invocation
// emits every feature's partial for its row range as a single contiguous
// block so the PPE reduces a fused lane exactly like four shard lanes. ----

/// Word offsets of the count-typed sections inside the fused partial
/// (uint32 words): CH bins, then CC same/possible, then EH bins.
inline constexpr std::int32_t kFusedChWords = kShardChWords;              // 0..167
inline constexpr std::int32_t kFusedCcOffset = kShardChWords;             // 168
inline constexpr std::int32_t kFusedEhOffset = kShardChWords + kShardCcWords;  // 504
inline constexpr std::int32_t kFusedCountWords =
    kShardChWords + kShardCcWords + kShardEhWords;  // 568
/// Bytes of the count block. 568 words * 4 = 2272 bytes, a 16-byte
/// multiple, so the TX tile doubles that follow stay 16-byte aligned.
inline constexpr std::int32_t kFusedCountBytes = kFusedCountWords * 4;

/// TX tile doubles follow the count block at byte offset kFusedCountBytes
/// (kTxTileDoubles per covered tile, same layout as a TX shard partial).
/// Images narrower or shorter than one Haar tile (w < 16 or h < 16) carry
/// no texture output — the fused partial is then just the count block.
inline constexpr std::int32_t fused_tx_doubles(std::int32_t w, std::int32_t h,
                                               std::int32_t row_begin,
                                               std::int32_t row_end) {
  if (w < kTxTileRows || h < kTxTileRows) return 0;
  const std::int32_t heff = 2 * (h / 2);
  const std::int32_t in_end = row_end < heff ? row_end : heff;
  if (in_end <= row_begin) return 0;
  const std::int32_t t0 = row_begin / kTxTileRows;
  const std::int32_t t1 = (in_end + kTxTileRows - 1) / kTxTileRows;
  return (t1 - t0) * kTxTileDoubles;
}

/// Total fused-partial bytes for a lane covering [row_begin, row_end).
inline constexpr std::int32_t fused_partial_bytes(std::int32_t w, std::int32_t h,
                                                  std::int32_t row_begin,
                                                  std::int32_t row_end) {
  return kFusedCountBytes + fused_tx_doubles(w, h, row_begin, row_end) * 8;
}

/// Per-model descriptor the detection kernel walks (built by the PPE stub
/// from the SvmModel set; support vectors stay in main memory and are
/// streamed by DMA).
struct alignas(16) DetectModelDesc {
  std::uint64_t sv_ea = 0;     // float[num_sv * sv_stride]
  std::uint64_t coef_ea = 0;   // float[num_sv] (16-byte padded)
  std::int32_t num_sv = 0;
  std::int32_t sv_stride = 0;  // floats per SV row (16-byte multiple)
  float gamma = 0.0f;
  float rho = 0.0f;
  std::int32_t kernel_type = 1;  // SvmKernelType
  std::int32_t pad_[3] = {};
};

}  // namespace cellport::kernels
