#include "kernels/cc_kernel.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "features/color_correlogram.h"
#include "img/color.h"
#include "img/slice.h"
#include "kernels/common.h"
#include "kernels/feed_kernel.h"
#include "kernels/hsv_simd.h"
#include "kernels/messages.h"
#include "spu/spu.h"
#include "support/aligned.h"

namespace cellport::kernels {

namespace {

using namespace cellport::sim;
using namespace cellport::spu;

constexpr int kR = features::kCorrWindowRadius;  // 8
constexpr int kBlockRows = 12;
constexpr int kRingRows = 2 * kR + 1 + kBlockRows;  // window + one block
/// First real pixel column inside a ring row (16-byte aligned; columns
/// 8..15 hold the left sentinel band).
constexpr int kRowOrigin = 16;
constexpr std::uint8_t kSentinel = 0xFF;

vec_uchar16 channel_pattern(unsigned c) {
  vec_uchar16 p;
  for (unsigned lane = 0; lane < 4; ++lane) {
    p.v[4 * lane] = static_cast<std::uint8_t>(c + 3 * lane);
    p.v[4 * lane + 1] = 16;
    p.v[4 * lane + 2] = 16;
    p.v[4 * lane + 3] = 16;
  }
  return p;
}

/// Packs the low bytes of four int4s into 16 bytes (3 shuffles).
vec_uchar16 pack_bins(const vec_int4& a, const vec_int4& b,
                      const vec_int4& c, const vec_int4& d) {
  vec_uchar16 word_low;
  for (unsigned k = 0; k < 4; ++k) {
    word_low.v[k] = static_cast<std::uint8_t>(4 * k);            // from a
    word_low.v[4 + k] = static_cast<std::uint8_t>(16 + 4 * k);   // from b
    word_low.v[8 + k] = static_cast<std::uint8_t>(4 * k);        // from c
    word_low.v[12 + k] = static_cast<std::uint8_t>(16 + 4 * k);  // from d
  }
  vec_uchar16 ab = spu_shuffle(vec_cast<vec_uchar16>(a),
                               vec_cast<vec_uchar16>(b), word_low);
  vec_uchar16 cd = spu_shuffle(vec_cast<vec_uchar16>(c),
                               vec_cast<vec_uchar16>(d), word_low);
  vec_uchar16 combine;
  for (unsigned k = 0; k < 8; ++k) {
    combine.v[k] = static_cast<std::uint8_t>(k);
    combine.v[8 + k] = static_cast<std::uint8_t>(16 + 8 + k);
  }
  return spu_shuffle(ab, cd, combine);
}

/// Quantizes one RGB row into ring-row bins (SIMD body + scalar tail).
void quantize_row_simd(const std::uint8_t* rgb, int w, std::uint8_t* dst,
                       const HsvConstants& hsv_c) {
  static const vec_uchar16 pat_r = channel_pattern(0);
  static const vec_uchar16 pat_g = channel_pattern(1);
  static const vec_uchar16 pat_b = channel_pattern(2);
  const vec_uchar16 zero = spu_splats<vec_uchar16>(0);

  int x = 0;
  for (; x + 16 <= w; x += 16) {
    vec_int4 bins[4];
    for (int q = 0; q < 4; ++q) {
      vec_uchar16 raw = vld_unaligned(rgb + (x + 4 * q) * 3);
      vec_int4 ri = vec_cast<vec_int4>(spu_shuffle(raw, zero, pat_r));
      vec_int4 gi = vec_cast<vec_int4>(spu_shuffle(raw, zero, pat_g));
      vec_int4 bi = vec_cast<vec_int4>(spu_shuffle(raw, zero, pat_b));
      bins[q] = hsv_bins_4(spu_convtf(ri), spu_convtf(gi), spu_convtf(bi),
                           hsv_c);
    }
    vst(dst + x, pack_bins(bins[0], bins[1], bins[2], bins[3]));
    spu_loop(1);
  }
  for (; x < w; ++x) {
    sop(20);
    charge_odd(3);
    dst[x] = static_cast<std::uint8_t>(
        img::rgb_to_bin(rgb[x * 3], rgb[x * 3 + 1], rgb[x * 3 + 2]));
  }
}

/// Widens the low/high byte halves of a byte vector into halfwords and
/// accumulates (2 shuffles + 2 adds).
void widen_accumulate(const vec_uchar16& bytes, vec_ushort8& lo,
                      vec_ushort8& hi) {
  static const vec_uchar16 pat_lo = [] {
    vec_uchar16 p;
    for (unsigned k = 0; k < 8; ++k) {
      p.v[2 * k] = static_cast<std::uint8_t>(k);  // low byte (LE)
      p.v[2 * k + 1] = 16;                        // zero
    }
    return p;
  }();
  static const vec_uchar16 pat_hi = [] {
    vec_uchar16 p;
    for (unsigned k = 0; k < 8; ++k) {
      p.v[2 * k] = static_cast<std::uint8_t>(8 + k);
      p.v[2 * k + 1] = 16;
    }
    return p;
  }();
  const vec_uchar16 zero = spu_splats<vec_uchar16>(0);
  lo = spu_add(lo, vec_cast<vec_ushort8>(spu_shuffle(bytes, zero, pat_lo)));
  hi = spu_add(hi, vec_cast<vec_ushort8>(spu_shuffle(bytes, zero, pat_hi)));
}

struct CcState {
  std::uint8_t* ring[kRingRows];
  int row_bytes = 0;
  std::uint32_t* same;
  std::uint32_t* possible;
  std::uint16_t* cols_clamped;  // per-x clamped window width
};

/// Shuffle patterns extracting the 16 bytes at offset dx in [-kR, kR]
/// from a pair of adjacent quadwords.
const vec_uchar16& shift_pattern(int dx) {
  static const auto patterns = [] {
    std::array<vec_uchar16, 2 * kR + 1> out{};
    for (int d = -kR; d <= kR; ++d) {
      unsigned start = static_cast<unsigned>(d < 0 ? 16 + d : d);
      for (unsigned i = 0; i < 16; ++i) {
        out[static_cast<std::size_t>(d + kR)].v[i] =
            static_cast<std::uint8_t>(start + i);
      }
    }
    return out;
  }();
  return patterns[static_cast<std::size_t>(dx + kR)];
}

/// Produces one output row y from the ring buffer.
void produce_row(const CcState& st, int y, int w, int h) {
  const int y0 = std::max(0, y - kR);
  const int y1 = std::min(h - 1, y + kR);
  const std::uint8_t* center_row = st.ring[y % kRingRows] + kRowOrigin;

  for (int x0 = 0; x0 < w; x0 += 16) {
    vec_uchar16 centers =
        vld<vec_uchar16>(center_row + x0);  // kRowOrigin keeps this aligned
    vec_ushort8 acc_lo = spu_splats<vec_ushort8>(0);
    vec_ushort8 acc_hi = spu_splats<vec_ushort8>(0);
    for (int yy = y0; yy <= y1; ++yy) {
      const std::uint8_t* nrow = st.ring[yy % kRingRows] + kRowOrigin;
      // Three aligned quadwords cover the whole [x0-kR, x0+15+kR] span;
      // each window offset is one shuffle instead of an unaligned load.
      vec_uchar16 qm1 = vld<vec_uchar16>(nrow + x0 - 16);
      vec_uchar16 q0 = vld<vec_uchar16>(nrow + x0);
      vec_uchar16 q1 = vld<vec_uchar16>(nrow + x0 + 16);
      vec_uchar16 row_acc = spu_splats<vec_uchar16>(0);
      for (int dx = -kR; dx <= kR; ++dx) {
        vec_uchar16 neigh =
            dx < 0 ? spu_shuffle(qm1, q0, shift_pattern(dx))
                   : spu_shuffle(q0, q1, shift_pattern(dx));
        // Compare masks are 0xFF (= -1) per matching byte: subtracting
        // the mask adds 1 per match — no separate AND needed.
        row_acc = spu_sub(row_acc, spu_cmpeq(neigh, centers));
      }
      widen_accumulate(row_acc, acc_lo, acc_hi);
      spu_loop(1);
    }
    // Scalar finish per center: histogram scatter.
    const int rows_clamped = y1 - y0 + 1;
    const int lanes = std::min(16, w - x0);
    for (int lane = 0; lane < lanes; ++lane) {
      std::uint32_t cnt =
          lane < 8 ? spu_extract(acc_lo, static_cast<std::size_t>(lane))
                   : spu_extract(acc_hi, static_cast<std::size_t>(lane - 8));
      std::uint8_t bin = sload(&center_row[x0 + lane]);
      std::uint32_t area =
          static_cast<std::uint32_t>(rows_clamped) *
          sload(&st.cols_clamped[x0 + lane]);
      sop(2);
      sstore(&st.same[bin], sload(&st.same[bin]) + cnt - 1);
      sstore(&st.possible[bin], sload(&st.possible[bin]) + area - 1);
    }
    spu_loop(1);
  }
}

int cc_run(std::uint64_t ea) {
  auto* msg = static_cast<ImageMsg*>(spu_ls_alloc(sizeof(ImageMsg)));
  fetch_msg(msg, ea);
  const int w = msg->width;
  const int h = msg->height;

  CcState st;
  st.row_bytes = static_cast<int>(
      cellport::round_up(static_cast<std::size_t>(kRowOrigin + w + 24),
                         16));
  for (auto& r : st.ring) {
    r = static_cast<std::uint8_t*>(
        spu_ls_alloc(static_cast<std::size_t>(st.row_bytes), 16));
    // Sentinel bands: left columns 8..15, right columns w..end. 0xFF can
    // never equal a real bin (bins are 0..165), so border windows simply
    // fail to match — no branches in the SIMD loop.
    std::memset(r, kSentinel, static_cast<std::size_t>(st.row_bytes));
  }
  // same/possible live in ONE contiguous allocation so a shard partial
  // (both raw count arrays) is a single output DMA.
  const std::size_t hist_len =
      cellport::round_up(std::size_t{img::kHsvBins}, 4);
  auto* counts = spu_ls_alloc_array<std::uint32_t>(2 * hist_len);
  st.same = counts;
  st.possible = counts + hist_len;
  std::memset(counts, 0, 2 * hist_len * sizeof(std::uint32_t));
  st.cols_clamped = spu_ls_alloc_array<std::uint16_t>(
      cellport::round_up(static_cast<std::size_t>(w), 8));
  for (int x = 0; x < w; ++x) {
    sop(4);
    st.cols_clamped[x] = static_cast<std::uint16_t>(
        std::min(w - 1, x + kR) - std::max(0, x - kR) + 1);
  }

  // cellshard: a shard produces output rows [out_begin, out_end) and
  // fetches those rows plus the kR-row halo on each side; the window math
  // in produce_row already clamps to the true image edges, so a shard's
  // per-bin counts are exactly its slice of the full-image counts.
  const bool shard = msg->row_end > 0;
  const int out_begin = shard ? msg->row_begin : 0;
  const int out_end = shard ? msg->row_end : h;
  const int fetch_begin = std::max(0, out_begin - kR);
  const int fetch_end = std::min(h, out_end + kR);

  const HsvConstants hsv_c = HsvConstants::load();
  RowStreamer stream(msg->pixels_ea,
                     static_cast<std::uint32_t>(msg->stride), fetch_begin,
                     fetch_end, kBlockRows, msg->buffering);
  int computed_to = fetch_begin;  // bin rows finished (absolute, excl.)
  int produced = out_begin;       // next output row
  while (stream.has_next()) {
    RowStreamer::Block blk = stream.next();
    for (int r = 0; r < blk.rows; ++r) {
      int row_idx = blk.first_row + r;
      quantize_row_simd(
          blk.data + static_cast<std::size_t>(r) * msg->stride, w,
          st.ring[row_idx % kRingRows] + kRowOrigin, hsv_c);
      ++computed_to;
    }
    while (produced < out_end &&
           (produced + kR < computed_to || computed_to == fetch_end)) {
      produce_row(st, produced, w, h);
      ++produced;
    }
  }
  while (produced < out_end) {
    produce_row(st, produced, w, h);
    ++produced;
  }

  if (shard) {
    // Raw partial: same[hist_len] then possible[hist_len], one DMA.
    emit_result(counts, msg->out_ea,
                static_cast<std::uint32_t>(2 * hist_len *
                                           sizeof(std::uint32_t)));
    return 0;
  }

  // Ratios in double precision, exactly like the reference (166 divides
  // on the even pipe at the SPU's double-precision rate).
  auto* out = spu_ls_alloc_array<float>(hist_len);
  for (std::size_t i = 0; i < hist_len; ++i) {
    charge_double_op(8);  // dp divide sequence
    charge_odd(5);
    out[i] = st.possible[i] > 0
                 ? static_cast<float>(static_cast<double>(st.same[i]) /
                                      static_cast<double>(st.possible[i]))
                 : 0.0f;
  }
  emit_result(out, msg->out_ea,
              static_cast<std::uint32_t>(hist_len * sizeof(float)));
  return 0;
}

// ---- the pre-optimization straight C port (Section 5.3: 0.43x) ----

int cc_run_naive(std::uint64_t ea) {
  auto* msg = static_cast<ImageMsg*>(spu_ls_alloc(sizeof(ImageMsg)));
  fetch_msg(msg, ea);
  const int w = msg->width;
  const int h = msg->height;

  const std::size_t hist_len =
      cellport::round_up(std::size_t{img::kHsvBins}, 4);
  auto* same = spu_ls_alloc_array<std::uint32_t>(hist_len);
  auto* possible = spu_ls_alloc_array<std::uint32_t>(hist_len);
  std::memset(same, 0, hist_len * sizeof(std::uint32_t));
  std::memset(possible, 0, hist_len * sizeof(std::uint32_t));

  // Slice with a halo of kR rows; single-buffered fetches (the straight
  // port keeps the original's whole-image loop structure per slice).
  const int bin_stride =
      static_cast<int>(cellport::round_up(static_cast<std::size_t>(w), 16));
  const int fetch_budget = 64;
  img::SlicePlan plan(h, fetch_budget, kR);
  auto* bins = spu_ls_alloc_array<std::uint8_t>(
      static_cast<std::size_t>(fetch_budget) * bin_stride);

  for (std::size_t si = 0; si < plan.count(); ++si) {
    const img::Slice& s = plan[si];
    RowStreamer stream(msg->pixels_ea,
                       static_cast<std::uint32_t>(msg->stride),
                       s.fetch_begin, s.fetch_end, kBlockRows,
                       kSingleBuffer);
    while (stream.has_next()) {
      RowStreamer::Block blk = stream.next();
      for (int r = 0; r < blk.rows; ++r) {
        const std::uint8_t* rgb =
            blk.data + static_cast<std::size_t>(r) * msg->stride;
        std::uint8_t* dst =
            bins + static_cast<std::size_t>(blk.first_row + r -
                                            s.fetch_begin) *
                       bin_stride;
        for (int x = 0; x < w; ++x) {
          std::uint8_t pr = sload(&rgb[x * 3]);
          std::uint8_t pg = sload(&rgb[x * 3 + 1]);
          std::uint8_t pb = sload(&rgb[x * 3 + 2]);
          sop(52);  // scalar HSV conversion incl. two software divisions
          charge_odd(5);
          charge_branch_miss(2.5);
          dst[x] = static_cast<std::uint8_t>(img::rgb_to_bin(pr, pg, pb));
          charge_odd(3);
          spu_loop(1);
        }
      }
    }
    for (int y = s.y_begin; y < s.y_end; ++y) {
      const int y0 = std::max(0, y - kR);
      const int y1 = std::min(h - 1, y + kR);
      const std::uint8_t* crow =
          bins + static_cast<std::size_t>(y - s.fetch_begin) * bin_stride;
      for (int x = 0; x < w; ++x) {
        const int x0 = std::max(0, x - kR);
        const int x1 = std::min(w - 1, x + kR);
        std::uint8_t center = sload(&crow[x]);
        std::uint32_t count = 0;
        for (int yy = y0; yy <= y1; ++yy) {
          const std::uint8_t* nrow =
              bins +
              static_cast<std::size_t>(yy - s.fetch_begin) * bin_stride;
          for (int xx = x0; xx <= x1; ++xx) {
            // The straight port keeps the original's branchy inner
            // compare; a taken branch (a match) flushes the unhinted
            // SPU pipeline.
            bool match = sload(&nrow[xx]) == center;
            spu_branch(match, /*hint_correct=*/!match);
            if (match) {
              ++count;
              sop(1);
            }
          }
          spu_loop(1);
        }
        auto window = static_cast<std::uint32_t>((y1 - y0 + 1) *
                                                 (x1 - x0 + 1));
        sop(6);
        sstore(&same[center], sload(&same[center]) + count - 1);
        sstore(&possible[center], sload(&possible[center]) + window - 1);
        spu_loop(1);
      }
    }
  }

  auto* out = spu_ls_alloc_array<float>(hist_len);
  for (std::size_t i = 0; i < hist_len; ++i) {
    sop(22);  // scalar software division
    charge_odd(5);
    out[i] = possible[i] > 0 ? static_cast<float>(
                                   static_cast<double>(same[i]) /
                                   static_cast<double>(possible[i]))
                             : 0.0f;
  }
  emit_result(out, msg->out_ea,
              static_cast<std::uint32_t>(hist_len * sizeof(float)));
  return 0;
}

}  // namespace

port::KernelModule& cc_module() {
  // ~30 KiB code image: dispatcher + SIMD quantizer + two versions.
  static port::KernelModule module("CCExtract", 30 * 1024);
  static bool registered =
      (module.add_function(SPU_Run, &cc_run)
           .add_function(SPU_Run_Naive, &cc_run_naive),
       register_feed(module),
       true);
  (void)registered;
  return module;
}

}  // namespace cellport::kernels
