#include "kernels/cc_kernel.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "features/color_correlogram.h"
#include "img/color.h"
#include "img/slice.h"
#include "kernels/cc_window.h"
#include "kernels/common.h"
#include "kernels/feed_kernel.h"
#include "kernels/fused_kernel.h"
#include "kernels/hsv_simd.h"
#include "kernels/messages.h"
#include "kernels/row_convert.h"
#include "spu/spu.h"
#include "support/aligned.h"

namespace cellport::kernels {

namespace {

using namespace cellport::sim;
using namespace cellport::spu;

// The window machinery (CcState, shift patterns, cc_produce_row) and the
// row quantizer live in cc_window.h / row_convert.h, shared verbatim with
// the cellfuse single-pass kernel.
constexpr int kR = kCcRadius;  // 8
constexpr int kBlockRows = kCcBlockRows;
constexpr int kRowOrigin = kRingOrigin;
constexpr std::uint8_t kSentinel = kCcSentinel;

int cc_run(std::uint64_t ea) {
  auto* msg = static_cast<ImageMsg*>(spu_ls_alloc(sizeof(ImageMsg)));
  fetch_msg(msg, ea);
  const int w = msg->width;
  const int h = msg->height;

  CcState st;
  st.row_bytes = static_cast<int>(
      cellport::round_up(static_cast<std::size_t>(kRowOrigin + w + 24),
                         16));
  for (auto& r : st.ring) {
    r = static_cast<std::uint8_t*>(
        spu_ls_alloc(static_cast<std::size_t>(st.row_bytes), 16));
    // Sentinel bands: left columns 8..15, right columns w..end. 0xFF can
    // never equal a real bin (bins are 0..165), so border windows simply
    // fail to match — no branches in the SIMD loop.
    std::memset(r, kSentinel, static_cast<std::size_t>(st.row_bytes));
  }
  // same/possible live in ONE contiguous allocation so a shard partial
  // (both raw count arrays) is a single output DMA.
  const std::size_t hist_len =
      cellport::round_up(std::size_t{img::kHsvBins}, 4);
  auto* counts = spu_ls_alloc_array<std::uint32_t>(2 * hist_len);
  st.same = counts;
  st.possible = counts + hist_len;
  std::memset(counts, 0, 2 * hist_len * sizeof(std::uint32_t));
  st.cols_clamped = spu_ls_alloc_array<std::uint16_t>(
      cellport::round_up(static_cast<std::size_t>(w), 8));
  for (int x = 0; x < w; ++x) {
    sop(4);
    st.cols_clamped[x] = static_cast<std::uint16_t>(
        std::min(w - 1, x + kR) - std::max(0, x - kR) + 1);
  }

  // cellshard: a shard produces output rows [out_begin, out_end) and
  // fetches those rows plus the kR-row halo on each side; the window math
  // in produce_row already clamps to the true image edges, so a shard's
  // per-bin counts are exactly its slice of the full-image counts.
  const bool shard = msg->row_end > 0;
  const int out_begin = shard ? msg->row_begin : 0;
  const int out_end = shard ? msg->row_end : h;
  const int fetch_begin = std::max(0, out_begin - kR);
  const int fetch_end = std::min(h, out_end + kR);

  const HsvConstants hsv_c = HsvConstants::load();
  RowStreamer stream(msg->pixels_ea,
                     static_cast<std::uint32_t>(msg->stride), fetch_begin,
                     fetch_end, kBlockRows, msg->buffering);
  int computed_to = fetch_begin;  // bin rows finished (absolute, excl.)
  int produced = out_begin;       // next output row
  while (stream.has_next()) {
    RowStreamer::Block blk = stream.next();
    for (int r = 0; r < blk.rows; ++r) {
      int row_idx = blk.first_row + r;
      quantize_row_simd(
          blk.data + static_cast<std::size_t>(r) * msg->stride, w,
          st.ring[row_idx % kCcRingRows] + kRowOrigin, hsv_c);
      ++computed_to;
    }
    while (produced < out_end &&
           (produced + kR < computed_to || computed_to == fetch_end)) {
      cc_produce_row(st, produced, w, h);
      ++produced;
    }
  }
  while (produced < out_end) {
    cc_produce_row(st, produced, w, h);
    ++produced;
  }

  if (shard) {
    // Raw partial: same[hist_len] then possible[hist_len], one DMA.
    emit_result(counts, msg->out_ea,
                static_cast<std::uint32_t>(2 * hist_len *
                                           sizeof(std::uint32_t)));
    return 0;
  }

  // Ratios in double precision, exactly like the reference (166 divides
  // on the even pipe at the SPU's double-precision rate).
  auto* out = spu_ls_alloc_array<float>(hist_len);
  for (std::size_t i = 0; i < hist_len; ++i) {
    charge_double_op(8);  // dp divide sequence
    charge_odd(5);
    out[i] = st.possible[i] > 0
                 ? static_cast<float>(static_cast<double>(st.same[i]) /
                                      static_cast<double>(st.possible[i]))
                 : 0.0f;
  }
  emit_result(out, msg->out_ea,
              static_cast<std::uint32_t>(hist_len * sizeof(float)));
  return 0;
}

// ---- the pre-optimization straight C port (Section 5.3: 0.43x) ----

int cc_run_naive(std::uint64_t ea) {
  auto* msg = static_cast<ImageMsg*>(spu_ls_alloc(sizeof(ImageMsg)));
  fetch_msg(msg, ea);
  const int w = msg->width;
  const int h = msg->height;

  const std::size_t hist_len =
      cellport::round_up(std::size_t{img::kHsvBins}, 4);
  auto* same = spu_ls_alloc_array<std::uint32_t>(hist_len);
  auto* possible = spu_ls_alloc_array<std::uint32_t>(hist_len);
  std::memset(same, 0, hist_len * sizeof(std::uint32_t));
  std::memset(possible, 0, hist_len * sizeof(std::uint32_t));

  // Slice with a halo of kR rows; single-buffered fetches (the straight
  // port keeps the original's whole-image loop structure per slice).
  const int bin_stride =
      static_cast<int>(cellport::round_up(static_cast<std::size_t>(w), 16));
  const int fetch_budget = 64;
  img::SlicePlan plan(h, fetch_budget, kR);
  auto* bins = spu_ls_alloc_array<std::uint8_t>(
      static_cast<std::size_t>(fetch_budget) * bin_stride);

  for (std::size_t si = 0; si < plan.count(); ++si) {
    const img::Slice& s = plan[si];
    RowStreamer stream(msg->pixels_ea,
                       static_cast<std::uint32_t>(msg->stride),
                       s.fetch_begin, s.fetch_end, kBlockRows,
                       kSingleBuffer);
    while (stream.has_next()) {
      RowStreamer::Block blk = stream.next();
      for (int r = 0; r < blk.rows; ++r) {
        const std::uint8_t* rgb =
            blk.data + static_cast<std::size_t>(r) * msg->stride;
        std::uint8_t* dst =
            bins + static_cast<std::size_t>(blk.first_row + r -
                                            s.fetch_begin) *
                       bin_stride;
        for (int x = 0; x < w; ++x) {
          std::uint8_t pr = sload(&rgb[x * 3]);
          std::uint8_t pg = sload(&rgb[x * 3 + 1]);
          std::uint8_t pb = sload(&rgb[x * 3 + 2]);
          sop(52);  // scalar HSV conversion incl. two software divisions
          charge_odd(5);
          charge_branch_miss(2.5);
          dst[x] = static_cast<std::uint8_t>(img::rgb_to_bin(pr, pg, pb));
          charge_odd(3);
          spu_loop(1);
        }
      }
    }
    for (int y = s.y_begin; y < s.y_end; ++y) {
      const int y0 = std::max(0, y - kR);
      const int y1 = std::min(h - 1, y + kR);
      const std::uint8_t* crow =
          bins + static_cast<std::size_t>(y - s.fetch_begin) * bin_stride;
      for (int x = 0; x < w; ++x) {
        const int x0 = std::max(0, x - kR);
        const int x1 = std::min(w - 1, x + kR);
        std::uint8_t center = sload(&crow[x]);
        std::uint32_t count = 0;
        for (int yy = y0; yy <= y1; ++yy) {
          const std::uint8_t* nrow =
              bins +
              static_cast<std::size_t>(yy - s.fetch_begin) * bin_stride;
          for (int xx = x0; xx <= x1; ++xx) {
            // The straight port keeps the original's branchy inner
            // compare; a taken branch (a match) flushes the unhinted
            // SPU pipeline.
            bool match = sload(&nrow[xx]) == center;
            spu_branch(match, /*hint_correct=*/!match);
            if (match) {
              ++count;
              sop(1);
            }
          }
          spu_loop(1);
        }
        auto window = static_cast<std::uint32_t>((y1 - y0 + 1) *
                                                 (x1 - x0 + 1));
        sop(6);
        sstore(&same[center], sload(&same[center]) + count - 1);
        sstore(&possible[center], sload(&possible[center]) + window - 1);
        spu_loop(1);
      }
    }
  }

  auto* out = spu_ls_alloc_array<float>(hist_len);
  for (std::size_t i = 0; i < hist_len; ++i) {
    sop(22);  // scalar software division
    charge_odd(5);
    out[i] = possible[i] > 0 ? static_cast<float>(
                                   static_cast<double>(same[i]) /
                                   static_cast<double>(possible[i]))
                             : 0.0f;
  }
  emit_result(out, msg->out_ea,
              static_cast<std::uint32_t>(hist_len * sizeof(float)));
  return 0;
}

}  // namespace

port::KernelModule& cc_module() {
  // ~30 KiB code image (dispatcher + SIMD quantizer + two versions) plus
  // ~8 KiB for the fused body.
  static port::KernelModule module("CCExtract", 38 * 1024);
  static bool registered =
      (module.add_function(SPU_Run, &cc_run)
           .add_function(SPU_Run_Naive, &cc_run_naive),
       register_feed(module), register_fused(module),
       true);
  (void)registered;
  return module;
}

}  // namespace cellport::kernels
