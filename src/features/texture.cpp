#include "features/texture.h"

#include <cmath>

#include "img/color.h"
#include "img/wavelet.h"

namespace cellport::features {

namespace {
inline void chg(sim::ScalarContext* ctx, sim::OpClass c,
                std::uint64_t n = 1) {
  if (ctx != nullptr) ctx->charge(c, n);
}
}  // namespace

FeatureVector extract_texture(const img::RgbImage& image,
                              sim::ScalarContext* ctx) {
  img::GrayImage gray = img::rgb_to_gray(image, ctx);
  img::WaveletPyramid pyr = img::haar_decompose(gray, kTextureLevels, ctx);

  FeatureVector out;
  out.name = "texture";
  out.values.reserve(kTextureDim);
  for (const auto& level : pyr.levels) {
    for (const img::FloatImage* plane :
         {&level.lh, &level.hl, &level.hh}) {
      double e = img::subband_energy(*plane, ctx);
      // log(1+x) compresses the dynamic range (transcendental: charged
      // as a sqrt-class op).
      chg(ctx, sim::OpClass::kSqrt, 1);
      chg(ctx, sim::OpClass::kStore, 1);
      out.values.push_back(static_cast<float>(std::log1p(e)));
    }
  }
  return out;
}

}  // namespace cellport::features
