#include "features/edge_histogram.h"

#include <array>
#include <cmath>

#include "img/color.h"
#include "img/convolve.h"

namespace cellport::features {

namespace {

inline void chg(sim::ScalarContext* ctx, sim::OpClass c,
                std::uint64_t n = 1) {
  if (ctx != nullptr) ctx->charge(c, n);
}

constexpr float kTwoPi = 6.2831853071795864769f;

}  // namespace

FeatureVector extract_edge_histogram(const img::RgbImage& image,
                                     sim::ScalarContext* ctx) {
  // Filter 1: RGB -> gray (charged inside).
  img::GrayImage gray = img::rgb_to_gray(image, ctx);

  const img::Kernel3x3 gx_k = img::sobel_gx();
  const img::Kernel3x3 gy_k = img::sobel_gy();

  std::array<std::uint32_t, kEdgeAngleBins * kEdgeMagBins> counts{};
  const int w = gray.width();
  const int h = gray.height();

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      // Filters 2+3: both Sobel operators share one 3x3 neighborhood
      // (9 loads); each is ~14 integer adds/shifts.
      chg(ctx, sim::OpClass::kLoad, 9);
      chg(ctx, sim::OpClass::kIntAlu, 28);
      int gx = img::sobel_at(gray, x, y, gx_k, img::Border::kClamp);
      int gy = img::sobel_at(gray, x, y, gy_k, img::Border::kClamp);

      // Per-pixel magnitude: 2 multiplies, 1 add, 1 sqrt.
      chg(ctx, sim::OpClass::kMul, 2);
      chg(ctx, sim::OpClass::kFloatAlu, 2);
      chg(ctx, sim::OpClass::kSqrt, 1);
      float mag = std::sqrt(
          static_cast<float>(gx) * static_cast<float>(gx) +
          static_cast<float>(gy) * static_cast<float>(gy));

      chg(ctx, sim::OpClass::kBranch, 1);
      if (mag < kEdgeMagThreshold) continue;

      // Per-pixel angle: atan2 is the expensive transcendental of this
      // kernel (library call: argument reduction, long polynomial,
      // division — ~200 cycles on a NetBurst-class core).
      chg(ctx, sim::OpClass::kDiv, 2);
      chg(ctx, sim::OpClass::kSqrt, 3);
      chg(ctx, sim::OpClass::kFloatAlu, 25);
      chg(ctx, sim::OpClass::kIntAlu, 10);
      chg(ctx, sim::OpClass::kBranch, 4);
      float angle = std::atan2(static_cast<float>(gy),
                               static_cast<float>(gx));
      if (angle < 0.0f) angle += kTwoPi;

      // Quantization: angle bins are centered on the 8 compass
      // directions (boundaries at 22.5 + k*45 degrees, whose slopes are
      // irrational — no integer gradient pair lands exactly on one, so
      // the binning is robust to the SPE port's comparison-based
      // equivalent). Plus magnitude bin + histogram update.
      chg(ctx, sim::OpClass::kMul, 2);
      chg(ctx, sim::OpClass::kFloatAlu, 1);
      chg(ctx, sim::OpClass::kIntAlu, 6);
      chg(ctx, sim::OpClass::kBranch, 2);
      chg(ctx, sim::OpClass::kLoad, 1);
      chg(ctx, sim::OpClass::kStore, 1);
      int abin = static_cast<int>((angle + kTwoPi / 16.0f) *
                                  (kEdgeAngleBins / kTwoPi));
      if (abin >= kEdgeAngleBins) abin = 0;  // wrap of the last half-bin
      int mbin = static_cast<int>(mag * (kEdgeMagBins / kEdgeMagMax));
      if (mbin >= kEdgeMagBins) mbin = kEdgeMagBins - 1;
      counts[static_cast<std::size_t>(abin * kEdgeMagBins + mbin)] += 1;
    }
  }

  // Normalization over all pixels (so the vector also encodes edge
  // density; stable when an image has no edges at all).
  FeatureVector out;
  out.name = "edge_histogram";
  out.values.resize(counts.size());
  float inv = 1.0f / (static_cast<float>(w) * static_cast<float>(h));
  chg(ctx, sim::OpClass::kDiv, 1);
  chg(ctx, sim::OpClass::kMul, counts.size());
  chg(ctx, sim::OpClass::kStore, counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out.values[i] = static_cast<float>(counts[i]) * inv;
  }
  return out;
}

}  // namespace cellport::features
