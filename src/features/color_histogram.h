// CHExtract: 166-bin HSV color histogram (8% of per-image time on the PPE).
//
// "The color histogram of an image is computed by discretizing the colors
// within an image and counting the number of colors that fall into each
// bin. In MARVEL, the color histogram is computed on the HSV image
// representation, and quantized in 166 bins." (Section 5.2, kernel 1)
#pragma once

#include "features/feature.h"
#include "img/color.h"
#include "img/image.h"
#include "sim/scalar_context.h"

namespace cellport::features {

/// Reference (scalar C++) implementation; charges its op mix to `ctx`
/// when provided. The result is L1-normalized (bins sum to 1).
FeatureVector extract_color_histogram(const img::RgbImage& image,
                                      sim::ScalarContext* ctx = nullptr);

}  // namespace cellport::features
