// TXExtract: wavelet subband texture (6% of per-image time).
//
// "Texture refers to a visual pattern or spatial arrangement of the pixels
// in an image. In MARVEL, texture features are derived from the pattern of
// spatial-frequency energy across image subbands." (Section 5.2, kernel 3;
// Naphade/Lin/Smith's wavelet texture.)
//
// Implementation: 4-level 2D Haar pyramid over the luma plane; the feature
// is the log-energy of the 12 detail subbands (LH/HL/HH per level).
#pragma once

#include "features/feature.h"
#include "img/image.h"
#include "sim/scalar_context.h"

namespace cellport::features {

/// Decomposition depth (4 levels x 3 detail subbands = 12 dimensions).
inline constexpr int kTextureLevels = 4;

FeatureVector extract_texture(const img::RgbImage& image,
                              sim::ScalarContext* ctx = nullptr);

}  // namespace cellport::features
