#include "features/color_histogram.h"

#include <array>

namespace cellport::features {

namespace {
inline void chg(sim::ScalarContext* ctx, sim::OpClass c,
                std::uint64_t n = 1) {
  if (ctx != nullptr) ctx->charge(c, n);
}
}  // namespace

FeatureVector extract_color_histogram(const img::RgbImage& image,
                                      sim::ScalarContext* ctx) {
  std::array<std::uint32_t, img::kHsvBins> counts{};
  for (int y = 0; y < image.height(); ++y) {
    const std::uint8_t* row = image.row(y);
    for (int x = 0; x < image.width(); ++x) {
      chg(ctx, sim::OpClass::kLoad, 3);
      int bin = img::rgb_to_bin(row[x * 3], row[x * 3 + 1], row[x * 3 + 2],
                                ctx);
      // Histogram update: read-modify-write.
      chg(ctx, sim::OpClass::kLoad, 1);
      chg(ctx, sim::OpClass::kIntAlu, 1);
      chg(ctx, sim::OpClass::kStore, 1);
      counts[static_cast<std::size_t>(bin)] += 1;
    }
  }

  FeatureVector out;
  out.name = "color_histogram";
  out.values.resize(img::kHsvBins);
  float inv = 1.0f / (static_cast<float>(image.width()) * image.height());
  chg(ctx, sim::OpClass::kDiv, 1);
  chg(ctx, sim::OpClass::kMul, img::kHsvBins);
  chg(ctx, sim::OpClass::kStore, img::kHsvBins);
  for (int b = 0; b < img::kHsvBins; ++b) {
    out.values[static_cast<std::size_t>(b)] =
        static_cast<float>(counts[static_cast<std::size_t>(b)]) * inv;
  }
  return out;
}

}  // namespace cellport::features
