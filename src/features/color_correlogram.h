// CCExtract: HSV auto-correlogram, 17x17 window (54% of per-image time).
//
// "The color correlogram feature in MARVEL quantifies, over the whole
// image, the degree of clustering among pixels with the same quantized
// color value. For each pixel P, it counts how many pixels there are
// within a square window of size 17x17 around P belonging to the same
// histogram bin as P." (Section 5.2, kernel 2; Huang et al., CVPR'97)
//
// The feature is 166-dimensional: for every bin b, the ratio of same-bin
// neighbor counts to the maximum possible count for pixels of bin b. The
// pass includes its own HSV quantization of the image (part of the
// kernel's 54% coverage).
#pragma once

#include "features/feature.h"
#include "img/image.h"
#include "sim/scalar_context.h"

namespace cellport::features {

/// Half-width of the correlation window (17x17 => radius 8).
inline constexpr int kCorrWindowRadius = 8;

FeatureVector extract_color_correlogram(const img::RgbImage& image,
                                        sim::ScalarContext* ctx = nullptr);

}  // namespace cellport::features
