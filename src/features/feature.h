// Common feature-vector type shared by the extractors and the classifier.
#pragma once

#include <string>
#include <vector>

namespace cellport::features {

/// MARVEL's four visual features (Section 5.1: two color features, edge,
/// and texture) plus their published dimensionalities.
inline constexpr int kColorHistogramDim = 166;
inline constexpr int kColorCorrelogramDim = 166;
inline constexpr int kTextureDim = 12;
inline constexpr int kEdgeHistogramDim = 64;

struct FeatureVector {
  std::string name;
  std::vector<float> values;

  std::size_t dim() const { return values.size(); }
};

}  // namespace cellport::features
