#include "features/color_correlogram.h"

#include <algorithm>
#include <array>

#include "img/color.h"

namespace cellport::features {

namespace {
inline void chg(sim::ScalarContext* ctx, sim::OpClass c,
                std::uint64_t n = 1) {
  if (ctx != nullptr) ctx->charge(c, n);
}
}  // namespace

FeatureVector extract_color_correlogram(const img::RgbImage& image,
                                        sim::ScalarContext* ctx) {
  // Phase 1: per-pixel HSV bin map (charged inside quantize_image).
  img::GrayImage bins = img::quantize_image(image, ctx);

  // Phase 2: windowed same-bin counting.
  std::array<std::uint64_t, img::kHsvBins> same{};
  std::array<std::uint64_t, img::kHsvBins> possible{};

  const int w = image.width();
  const int h = image.height();
  constexpr int r = kCorrWindowRadius;

  for (int y = 0; y < h; ++y) {
    const int y0 = std::max(0, y - r);
    const int y1 = std::min(h - 1, y + r);
    for (int x = 0; x < w; ++x) {
      const int x0 = std::max(0, x - r);
      const int x1 = std::min(w - 1, x + r);
      const std::uint8_t center = bins.at(x, y);
      std::uint32_t count = 0;
      for (int yy = y0; yy <= y1; ++yy) {
        const std::uint8_t* row = bins.row(yy);
        for (int xx = x0; xx <= x1; ++xx) {
          // Inner loop: load neighbor bin, compare, branchless add.
          count += row[xx] == center;
        }
      }
      const auto window =
          static_cast<std::uint64_t>(y1 - y0 + 1) *
          static_cast<std::uint64_t>(x1 - x0 + 1);
      // The center pixel always matches itself; exclude it.
      same[center] += count - 1;
      possible[center] += window - 1;
      // Charge the window scan (1 load + 1 compare + 1 add per neighbor)
      // plus the per-pixel bookkeeping.
      chg(ctx, sim::OpClass::kLoad, window);
      chg(ctx, sim::OpClass::kIntAlu, 2 * window);
      chg(ctx, sim::OpClass::kIntAlu, 8);
      chg(ctx, sim::OpClass::kLoad, 3);
      chg(ctx, sim::OpClass::kStore, 2);
    }
  }

  FeatureVector out;
  out.name = "color_correlogram";
  out.values.resize(img::kHsvBins);
  chg(ctx, sim::OpClass::kDiv, img::kHsvBins);
  chg(ctx, sim::OpClass::kStore, img::kHsvBins);
  for (int b = 0; b < img::kHsvBins; ++b) {
    auto i = static_cast<std::size_t>(b);
    out.values[i] = possible[i] > 0
                        ? static_cast<float>(
                              static_cast<double>(same[i]) /
                              static_cast<double>(possible[i]))
                        : 0.0f;
  }
  return out;
}

}  // namespace cellport::features
