// EHExtract: Sobel edge histogram (28% of per-image time).
//
// "The edge histogram extraction is a sequence of filters applied in
// succession on the image: color conversion RGB to Gray, image edge
// detection with the Sobel operators, edge angle and magnitude computation
// per pixel, plus the quantization and normalization operations specific
// to histogram-like functions." (Section 5.2, kernel 4)
//
// The feature is 64-dimensional: 8 edge-direction bins x 8 magnitude bins,
// L1-normalized over all pixels whose gradient magnitude exceeds a small
// threshold (flat pixels carry no edge information).
#pragma once

#include "features/feature.h"
#include "img/image.h"
#include "sim/scalar_context.h"

namespace cellport::features {

inline constexpr int kEdgeAngleBins = 8;
inline constexpr int kEdgeMagBins = 8;
/// Sobel responses range in [-1020, 1020]; magnitudes up to ~1442.
inline constexpr float kEdgeMagMax = 1442.0f;
/// Gradient magnitudes below this are treated as flat (no edge).
inline constexpr float kEdgeMagThreshold = 8.0f;

FeatureVector extract_edge_histogram(const img::RgbImage& image,
                                     sim::ScalarContext* ctx = nullptr);

}  // namespace cellport::features
