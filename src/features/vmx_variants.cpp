#include "features/vmx_variants.h"

#include "features/color_correlogram.h"
#include "features/color_histogram.h"
#include "features/edge_histogram.h"
#include "img/color.h"

namespace cellport::features {

namespace {

using sim::OpClass;

// VMX charge helpers: one 128-bit op occupies one issue slot of the
// in-order PPE (charged as kFloatAlu / kIntAlu per vector op). The PPE's
// VMX has estimate-based division like the SPU (refined with a few
// multiply-adds) and no scatter: histogram updates stay scalar and go
// through the cache (kLoad/kStore).

/// Per 4 pixels: unpack (3 perms + 3 converts), HSV conversion with two
/// refined divisions, binning (the compare/select mix of hsv_simd.h).
void charge_ch_vmx_4px(sim::ScalarContext& ctx) {
  ctx.charge(OpClass::kLoad, 1);      // one 16B vector load
  ctx.charge(OpClass::kIntAlu, 6);    // perms + converts (vector slots)
  ctx.charge(OpClass::kFloatAlu, 30); // minmax, masks, selects, adds
  ctx.charge(OpClass::kMul, 12);      // scales + 2 refined divisions
  ctx.charge(OpClass::kIntAlu, 10);   // integer bin assembly
}

/// Per pixel: scalar histogram read-modify-write through the cache.
void charge_hist_scatter(sim::ScalarContext& ctx, std::uint64_t px) {
  ctx.charge(OpClass::kLoad, 2 * px);
  ctx.charge(OpClass::kIntAlu, px);
  ctx.charge(OpClass::kStore, px);
}

}  // namespace

FeatureVector extract_color_histogram_vmx(const img::RgbImage& image,
                                          sim::ScalarContext* ctx) {
  FeatureVector out = extract_color_histogram(image, nullptr);
  if (ctx != nullptr) {
    auto px = static_cast<std::uint64_t>(image.width()) * image.height();
    for (std::uint64_t p = 0; p + 4 <= px; p += 4) charge_ch_vmx_4px(*ctx);
    charge_hist_scatter(*ctx, px);
    ctx->charge(OpClass::kDiv, 1);                  // normalization
    ctx->charge(OpClass::kMul, img::kHsvBins / 4);  // 4-wide scale
    ctx->charge(OpClass::kStore, img::kHsvBins / 4);
  }
  return out;
}

FeatureVector extract_color_correlogram_vmx(const img::RgbImage& image,
                                            sim::ScalarContext* ctx) {
  FeatureVector out = extract_color_correlogram(image, nullptr);
  if (ctx != nullptr) {
    auto px = static_cast<std::uint64_t>(image.width()) * image.height();
    // Quantization pass (same as CH VMX).
    for (std::uint64_t p = 0; p + 4 <= px; p += 4) charge_ch_vmx_4px(*ctx);
    // Window counting: per pixel, 17 rows x 17 offsets 16-wide: per dy,
    // 3 vector loads + 17 (perm + cmpeq + sub) ops for 16 centers.
    constexpr std::uint64_t kRows = 17;
    std::uint64_t groups = (px + 15) / 16;
    ctx->charge(OpClass::kLoad, groups * kRows * 3);
    ctx->charge(OpClass::kIntAlu, groups * kRows * (17 * 3 + 4));
    // Per-center scalar scatter into same/possible.
    charge_hist_scatter(*ctx, 2 * px);
    ctx->charge(OpClass::kDiv, img::kHsvBins);
  }
  return out;
}

FeatureVector extract_edge_histogram_vmx(const img::RgbImage& image,
                                         sim::ScalarContext* ctx) {
  FeatureVector out = extract_edge_histogram(image, nullptr);
  if (ctx != nullptr) {
    auto px = static_cast<std::uint64_t>(image.width()) * image.height();
    std::uint64_t groups = (px + 7) / 8;
    // Gray conversion 8-wide + Sobel 8-wide + widen/square + branch-free
    // bins (the SPE port's structure, through VMX issue slots).
    ctx->charge(OpClass::kLoad, groups * 5);
    ctx->charge(OpClass::kIntAlu, groups * 40);
    ctx->charge(OpClass::kFloatAlu, groups * 30);
    ctx->charge(OpClass::kMul, groups * 10);
    charge_hist_scatter(*ctx, px);
    ctx->charge(OpClass::kDiv, 1);
  }
  return out;
}

}  // namespace cellport::features
