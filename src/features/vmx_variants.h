// PPE-VMX variants of the hottest extractors.
//
// The PPE carries a VMX (AltiVec) unit (Section 2), which raises the
// obvious alternative to the whole porting exercise: why not just
// vectorize the kernels on the PPE? These variants model that path: the
// same algorithms charged with a VMX op mix (4/16-way SIMD through the
// PPE's in-order pipeline, no divide instruction, LRU-cached memory
// instead of explicit DMA). bench_ablation compares them against both the
// scalar PPE baseline and the SPE ports — reproducing the ecosystem's
// actual answer (VMX helps ~2-4x; the SPEs' independent pipelines and
// explicit local stores go an order of magnitude further).
//
// Functional results are identical to the scalar reference extractors
// (same code path); only the charge model differs, in the same analytic
// style as the reference kernels themselves.
#pragma once

#include "features/feature.h"
#include "img/image.h"
#include "sim/scalar_context.h"

namespace cellport::features {

/// 166-bin HSV histogram with a VMX charge model (4-way float HSV,
/// scalar histogram scatter through the cache hierarchy).
FeatureVector extract_color_histogram_vmx(const img::RgbImage& image,
                                          sim::ScalarContext* ctx);

/// Auto-correlogram with a VMX charge model (16-way byte compares over
/// the bin map; the quantization pass shares the CH VMX model).
FeatureVector extract_color_correlogram_vmx(const img::RgbImage& image,
                                            sim::ScalarContext* ctx);

/// Sobel edge histogram with a VMX charge model (8-way halfword Sobel,
/// branch-free binning like the SPE port, scalar scatter).
FeatureVector extract_edge_histogram_vmx(const img::RgbImage& image,
                                         sim::ScalarContext* ctx);

}  // namespace cellport::features
