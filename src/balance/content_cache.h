// cellbalance: content-addressed LRU cache with a byte budget.
//
// Maps an image-bytes digest (balance::fnv1a64 over the ENCODED carrier)
// to the full analysis value the cold path produced, so repeated and
// duplicated uploads skip decode + extraction + detection entirely. The
// template keeps the cache below the engine in the dependency order: the
// engine instantiates it with its own result type and charges the
// simulated costs at its call sites.
//
// Eviction is strict LRU under a byte budget: inserting past the budget
// evicts least-recently-used entries first; a value larger than the whole
// budget is not cached at all. A budget of 0 disables the cache (every
// lookup misses, nothing is stored) so legacy paths stay untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace cellport::balance {

template <typename V>
class ContentCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  explicit ContentCache(std::size_t byte_budget) : budget_(byte_budget) {}

  bool enabled() const { return budget_ > 0; }
  std::size_t budget() const { return budget_; }
  std::size_t bytes() const { return bytes_; }
  std::size_t entries() const { return lru_.size(); }
  const Stats& stats() const { return stats_; }

  /// The cached value for `key`, freshened to most-recently-used, or null
  /// on a miss. The pointer stays valid until the next insert.
  const V* find(std::uint64_t key) {
    if (!enabled()) {
      ++stats_.misses;
      return nullptr;
    }
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    return &it->second->value;
  }

  /// Stores `value` under `key`, charging `cost` bytes against the
  /// budget and evicting LRU entries to make room. A re-insert under an
  /// existing key replaces the entry. Values over the whole budget are
  /// dropped (never worth evicting everything else for).
  void insert(std::uint64_t key, V value, std::size_t cost) {
    if (!enabled() || cost > budget_) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      bytes_ -= it->second->cost;
      lru_.erase(it->second);
      index_.erase(it);
    }
    while (bytes_ + cost > budget_ && !lru_.empty()) {
      index_.erase(lru_.back().key);
      bytes_ -= lru_.back().cost;
      lru_.pop_back();
      ++stats_.evictions;
    }
    lru_.push_front(Entry{key, std::move(value), cost});
    index_[key] = lru_.begin();
    bytes_ += cost;
  }

 private:
  struct Entry {
    std::uint64_t key;
    V value;
    std::size_t cost;
  };

  std::size_t budget_;
  std::size_t bytes_ = 0;
  Stats stats_;
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, typename std::list<Entry>::iterator>
      index_;
};

}  // namespace cellport::balance
