#include "balance/steal.h"

#include <algorithm>

#include "support/error.h"

namespace cellport::balance {

int task_count(int h, int lanes, int grain) {
  const int tiles = std::max(1, kernels::tx_num_tiles(h));
  return std::max(1, std::min(tiles, std::max(1, lanes * grain)));
}

std::vector<shard::Range> split_tasks(int h, int lanes, int grain) {
  return shard::split_fused(h, task_count(h, lanes, grain));
}

TaskQueue::TaskQueue(std::size_t tasks, std::size_t lanes)
    : tasks_(tasks),
      running_(lanes, kNone),
      armed_(lanes, false) {
  if (lanes == 0) {
    throw cellport::ConfigError("TaskQueue needs at least one lane");
  }
}

std::size_t TaskQueue::issue(std::size_t lane) {
  if (busy(lane)) {
    throw cellport::ConfigError(
        "TaskQueue::issue to a lane with a task in flight");
  }
  if (next_ == tasks_) return kNone;
  if (armed_[lane]) {
    ++steals_;
  } else {
    armed_[lane] = true;
    ++arms_;
  }
  running_[lane] = next_++;
  ++in_flight_;
  return running_[lane];
}

void TaskQueue::complete(std::size_t lane) {
  if (!busy(lane)) {
    throw cellport::ConfigError("TaskQueue::complete on an idle lane");
  }
  running_[lane] = kNone;
  --in_flight_;
}

std::size_t pick_earliest(const std::vector<sim::SimTime>& peek_ns,
                          const TaskQueue& q) {
  std::size_t best = TaskQueue::kNone;
  for (std::size_t k = 0; k < q.lanes(); ++k) {
    if (!q.busy(k)) continue;
    if (best == TaskQueue::kNone || peek_ns[k] < peek_ns[best]) best = k;
  }
  return best;
}

}  // namespace cellport::balance
