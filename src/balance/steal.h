// cellbalance: dynamic work-stealing over the fused extraction lanes.
//
// The cellshard planner picks one static partition per image; on
// heterogeneous traffic (mixed sizes, quarantined SPEs, partial cache
// hits) the busiest lane gates the batch while the others idle. The
// balanced dispatcher splits the image into MORE, smaller tile-aligned
// tasks than there are lanes, arms every lane with one task, and hands
// each lane the next task the moment its current one completes — chosen
// by a non-consuming peek of every in-flight lane's completion timestamp
// (SPEInterface::peek_completion_ns), so a slow or hung lane simply never
// wins the argmin and the work flows around it.
//
// Bit-exactness: tasks are shard::split_fused ranges, reduced by the
// cellshard fixed-order reducers in TASK order (== ascending row order),
// which is exactly the order a static fused plan reduces — stolen-work
// results are bit-identical to static plans and to the unsharded kernels.
#pragma once

#include <cstddef>
#include <vector>

#include "shard/partials.h"
#include "sim/time.h"

namespace cellport::balance {

/// Default steal granularity: target tasks per lane. More tasks give the
/// scheduler finer material to rebalance with, at one extra dispatch +
/// reduce section each; ~4 per lane recovers most of the imbalance on
/// the mixed-size corpus without measurable dispatch overhead.
inline constexpr int kDefaultGrain = 4;

/// Number of balanced tasks for an image of height `h` over `lanes`
/// lanes: min(available Haar tiles, lanes * grain), at least 1. Tasks
/// can never outnumber tiles (a task must stay tile-aligned for TX).
int task_count(int h, int lanes, int grain = kDefaultGrain);

/// The balanced task partition: task_count() tile-aligned row ranges
/// covering [0, h), every one non-empty, in ascending row order
/// (shard::split_fused over the task count, so the fused kernel and the
/// PPE mirrors agree on coverage).
std::vector<shard::Range> split_tasks(int h, int lanes,
                                      int grain = kDefaultGrain);

/// Bookkeeping for one steal-driven dispatch: which lane runs which task,
/// what is still unissued, and how many dispatches were initial arms vs
/// post-completion steals. The caller owns the actual sends/waits; this
/// class only sequences them deterministically.
class TaskQueue {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  TaskQueue(std::size_t tasks, std::size_t lanes);

  /// Assigns the next unissued task to `lane` (which must be idle).
  /// Returns the task index, or kNone when every task is issued. The
  /// first issue to a lane counts as an arm, later ones as steals.
  std::size_t issue(std::size_t lane);

  /// The task `lane` is currently running (kNone when idle).
  std::size_t task_of(std::size_t lane) const { return running_[lane]; }
  bool busy(std::size_t lane) const { return running_[lane] != kNone; }

  /// Marks `lane`'s current task complete and the lane idle.
  void complete(std::size_t lane);

  std::size_t in_flight() const { return in_flight_; }
  bool all_issued() const { return next_ == tasks_; }
  bool done() const { return all_issued() && in_flight_ == 0; }

  std::size_t tasks() const { return tasks_; }
  std::size_t lanes() const { return running_.size(); }
  std::size_t arms() const { return arms_; }
  std::size_t steals() const { return steals_; }

 private:
  std::size_t tasks_;
  std::size_t next_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t arms_ = 0;
  std::size_t steals_ = 0;
  std::vector<std::size_t> running_;  // lane -> task (kNone = idle)
  std::vector<bool> armed_;           // lane ever issued to
};

/// The steal decision: the busy lane whose peeked completion timestamp is
/// earliest, ties broken toward the lowest lane index (deterministic).
/// `peek_ns[k]` is ignored for idle lanes. Returns kNone when no lane is
/// busy. A hung lane's sim::kNeverNs peek loses to every live lane, so
/// the batch drains around it.
std::size_t pick_earliest(const std::vector<sim::SimTime>& peek_ns,
                          const TaskQueue& q);

}  // namespace cellport::balance
