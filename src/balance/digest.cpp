#include "balance/digest.h"

namespace cellport::balance {

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace cellport::balance
