// cellbalance: content addressing for the feature cache.
//
// The cache key is a digest of the ENCODED image bytes — computed before
// any decode, so a hit skips ingest and extraction entirely. FNV-1a is
// enough here: the cache is an optimization layered over a deterministic
// engine, and a (vanishingly unlikely) collision would surface instantly
// in the bit-exactness property tests that compare every cached result
// against the oracle.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cellport::balance {

/// 64-bit FNV-1a over `n` bytes.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n);

}  // namespace cellport::balance
