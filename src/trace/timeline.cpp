#include "trace/timeline.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

namespace cellport::trace {

namespace {

// Glyph priority: what to show when categories overlap in one bucket.
enum Level : int {
  kIdle = 0,
  kRuntimeLvl,
  kProfilerLvl,
  kMailboxLvl,
  kDmaWaitLvl,
  kDmaLvl,
  kKernelLvl,
};

char glyph(int level) {
  switch (level) {
    case kKernelLvl: return '#';
    case kDmaLvl: return '=';
    case kDmaWaitLvl: return '%';
    case kMailboxLvl: return '~';
    case kProfilerLvl: return 'p';
    case kRuntimeLvl: return '-';
    default: return '.';
  }
}

int level_for(const TraceEvent& e) {
  switch (e.cat) {
    case Category::kKernel: return kKernelLvl;
    case Category::kDma:
      return e.name == "dma_wait" ? kDmaWaitLvl : kDmaLvl;
    case Category::kMailbox: return kMailboxLvl;
    case Category::kProfiler: return kProfilerLvl;
    case Category::kRuntime: return kRuntimeLvl;
  }
  return kIdle;
}

struct Interval {
  sim::SimTime start;
  sim::SimTime end;
  int level;
};

/// Flattens a track's event stream into paintable intervals (pairing
/// begin/end spans via a stack; instants become zero-length marks).
std::vector<Interval> intervals_of(const TraceTrack& track) {
  std::vector<Interval> out;
  struct Open {
    sim::SimTime start;
    int level;
  };
  std::vector<Open> stack;
  for (const TraceEvent& e : track.events()) {
    switch (e.phase) {
      case TraceEvent::Phase::kBegin:
        stack.push_back(Open{e.ts, level_for(e)});
        break;
      case TraceEvent::Phase::kEnd:
        if (!stack.empty()) {
          out.push_back(Interval{stack.back().start, e.ts,
                                 stack.back().level});
          stack.pop_back();
        }
        break;
      case TraceEvent::Phase::kComplete:
        out.push_back(Interval{e.ts, e.ts + e.dur, level_for(e)});
        break;
      case TraceEvent::Phase::kInstant:
        out.push_back(Interval{e.ts, e.ts, level_for(e)});
        break;
    }
  }
  // Unclosed spans paint to their begin point only (a live trace).
  for (const Open& o : stack) out.push_back(Interval{o.start, o.start, o.level});
  return out;
}

void render_machine(std::ostringstream& os, const TraceSession& session,
                    int pid, const std::string& machine_name, int width) {
  // Time range across this machine's tracks.
  sim::SimTime t0 = 0;
  sim::SimTime t1 = 0;
  bool any = false;
  std::vector<const TraceTrack*> tracks;
  std::size_t label_width = 4;
  for (const auto& track : session.tracks()) {
    if (track->pid() != pid) continue;
    tracks.push_back(track.get());
    label_width = std::max(label_width, track->name().size());
    for (const Interval& iv : intervals_of(*track)) {
      if (!any) {
        t0 = iv.start;
        t1 = iv.end;
        any = true;
      } else {
        t0 = std::min(t0, iv.start);
        t1 = std::max(t1, iv.end);
      }
    }
  }
  if (!any || t1 <= t0) {
    os << machine_name << " (pid " << pid << "): no events\n";
    return;
  }

  char header[160];
  std::snprintf(header, sizeof(header),
                "%s (pid %d): %.3f .. %.3f ms simulated\n",
                machine_name.c_str(), pid, t0 / 1e6, t1 / 1e6);
  os << header;

  double span = t1 - t0;
  for (const TraceTrack* track : tracks) {
    std::vector<int> lane(static_cast<std::size_t>(width), kIdle);
    for (const Interval& iv : intervals_of(*track)) {
      double a = (iv.start - t0) / span * width;
      double b = (iv.end - t0) / span * width;
      int c0 = std::clamp(static_cast<int>(a), 0, width - 1);
      int c1 = std::clamp(static_cast<int>(b), 0, width - 1);
      for (int c = c0; c <= c1; ++c) {
        lane[static_cast<std::size_t>(c)] =
            std::max(lane[static_cast<std::size_t>(c)], iv.level);
      }
    }
    os << "  " << track->name()
       << std::string(label_width - track->name().size(), ' ') << " |";
    for (int v : lane) os << glyph(v);
    os << "|\n";
  }
}

}  // namespace

std::string render_timeline(const TraceSession& session,
                            const TimelineOptions& options) {
  std::ostringstream os;
  int width = std::max(16, options.width);
  const auto& machines = session.machines();
  for (std::size_t i = 0; i < machines.size(); ++i) {
    int pid = static_cast<int>(i) + 1;
    if (options.pid != 0 && options.pid != pid) continue;
    render_machine(os, session, pid, machines[i], width);
  }
  os << "  legend: '#' kernel  '=' dma  '%' dma wait  '~' mailbox wait  "
        "'p' ppe phase  '-' runtime  '.' idle\n";
  return os.str();
}

}  // namespace cellport::trace
