#include "trace/metrics.h"

#include <algorithm>
#include <sstream>

#include "support/json.h"
#include "support/stats.h"
#include "support/table.h"

namespace cellport::trace {

void Histogram::record(double v) {
  samples_.push_back(v);
  sum_ += v;
}

double Histogram::min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::mean() const {
  if (samples_.empty()) return 0;
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::percentile(double p) const {
  return cellport::percentile(samples_, p);
}

void Histogram::reset() {
  samples_.clear();
  sum_ = 0;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

double MetricsRegistry::value(const std::string& name) const {
  if (const Counter* c = find_counter(name)) {
    return static_cast<double>(c->value());
  }
  if (const Gauge* g = find_gauge(name)) return g->value();
  if (const Histogram* h = find_histogram(name)) return h->sum();
  return 0;
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::format_text() const {
  std::ostringstream os;
  Table scalars("Metrics");
  scalars.header({"Series", "Value"});
  for (const auto& [name, c] : counters_) {
    scalars.row({name, std::to_string(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    scalars.row({name, Table::num(g->value(), 3)});
  }
  os << scalars.str();
  if (!histograms_.empty()) {
    Table hist("Histograms");
    hist.header({"Series", "Count", "Mean", "p50", "p95", "p99", "Max"});
    for (const auto& [name, h] : histograms_) {
      hist.row({name, std::to_string(h->count()), Table::num(h->mean(), 1),
                Table::num(h->percentile(50), 1),
                Table::num(h->percentile(95), 1),
                Table::num(h->percentile(99), 1), Table::num(h->max(), 1)});
    }
    os << hist.str();
  }
  return os.str();
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(static_cast<std::uint64_t>(h->count()));
    w.key("sum").value(h->sum());
    w.key("min").value(h->min());
    w.key("max").value(h->max());
    w.key("mean").value(h->mean());
    w.key("p50").value(h->percentile(50));
    w.key("p95").value(h->percentile(95));
    w.key("p99").value(h->percentile(99));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

}  // namespace cellport::trace
