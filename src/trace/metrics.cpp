#include "trace/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "support/json.h"
#include "support/table.h"

namespace cellport::trace {

int Histogram::bucket_index(double v) {
  // Non-positive samples (idle occupancies, zero durations) share one
  // sentinel bucket below every finite-value bucket.
  if (v <= 0) return std::numeric_limits<int>::min();
  int e = 0;
  double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  int sub = static_cast<int>((m - 0.5) * (2 * kSubBuckets));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // m == 1 - epsilon edge
  return e * kSubBuckets + sub;
}

double Histogram::bucket_mid(int idx) {
  if (idx == std::numeric_limits<int>::min()) return 0;
  // Floor division so negative exponents (sub-1.0 samples) map back.
  int e = idx >= 0 ? idx / kSubBuckets : -((-idx + kSubBuckets - 1) / kSubBuckets);
  int sub = idx - e * kSubBuckets;
  double lo = std::ldexp(0.5 + static_cast<double>(sub) / (2 * kSubBuckets), e);
  double hi =
      std::ldexp(0.5 + static_cast<double>(sub + 1) / (2 * kSubBuckets), e);
  return (lo + hi) / 2;
}

void Histogram::record(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++buckets_[bucket_index(v)];
  ++count_;
  sum_ += v;
}

double Histogram::mean() const {
  if (count_ == 0) return 0;
  return sum_ / static_cast<double>(count_);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0) return min();
  if (p >= 100) return max();
  // Order-statistic rank, then walk the (sorted) bucket map.
  double target = p / 100.0 * static_cast<double>(count_ - 1);
  auto rank = static_cast<std::uint64_t>(target);
  std::uint64_t cum = 0;
  for (const auto& [idx, n] : buckets_) {
    cum += n;
    if (cum > rank) return std::clamp(bucket_mid(idx), min(), max());
  }
  return max();
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (const auto& [idx, n] : other.buckets_) buckets_[idx] += n;
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

double MetricsRegistry::value(const std::string& name) const {
  if (const Counter* c = find_counter(name)) {
    return static_cast<double>(c->value());
  }
  if (const Gauge* g = find_gauge(name)) return g->value();
  if (const Histogram* h = find_histogram(name)) return h->sum();
  return 0;
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::format_text() const {
  std::ostringstream os;
  Table scalars("Metrics");
  scalars.header({"Series", "Value"});
  for (const auto& [name, c] : counters_) {
    scalars.row({name, std::to_string(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    scalars.row({name, Table::num(g->value(), 3)});
  }
  os << scalars.str();
  if (!histograms_.empty()) {
    Table hist("Histograms");
    hist.header({"Series", "Count", "Mean", "p50", "p95", "p99", "p99.9",
                 "Max"});
    for (const auto& [name, h] : histograms_) {
      hist.row({name, std::to_string(h->count()), Table::num(h->mean(), 1),
                Table::num(h->percentile(50), 1),
                Table::num(h->percentile(95), 1),
                Table::num(h->percentile(99), 1),
                Table::num(h->percentile(99.9), 1),
                Table::num(h->max(), 1)});
    }
    os << hist.str();
  }
  return os.str();
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(static_cast<std::uint64_t>(h->count()));
    w.key("sum").value(h->sum());
    w.key("min").value(h->min());
    w.key("max").value(h->max());
    w.key("mean").value(h->mean());
    w.key("p50").value(h->percentile(50));
    w.key("p95").value(h->percentile(95));
    w.key("p99").value(h->percentile(99));
    w.key("p99_9").value(h->percentile(99.9));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

}  // namespace cellport::trace
