// Chrome trace-event / Perfetto export of a TraceSession.
//
// Emits the JSON Object Format ({"traceEvents": [...]}) understood by
// chrome://tracing and https://ui.perfetto.dev: "X" complete spans, "B"/"E"
// nested spans, "i" instants, "C" counters, and "M" metadata naming each
// machine (pid) and track (tid). Timestamps are *simulated* microseconds
// with fixed 3-digit precision, so identical simulated runs export
// byte-identical files.
#pragma once

#include <string>

#include "trace/trace.h"

namespace cellport::trace {

/// Renders the whole session as a Chrome trace JSON document. Events are
/// merged in the deterministic (ts, pid, tid, seq) order; an "EIB bytes"
/// counter track per machine accumulates DMA traffic so bus load is
/// visible as a graph above the lanes.
std::string chrome_trace_json(const TraceSession& session);

/// chrome_trace_json() to a file; throws IoError on failure.
void write_chrome_trace(const TraceSession& session, const std::string& path);

}  // namespace cellport::trace
