#include "trace/trace.h"

#include <algorithm>

#include "support/error.h"

namespace cellport::trace {

namespace {
// Thread-local so concurrent runs on different host threads (cellcheck
// --jobs installs a session per scenario) each see only their own
// session. Machines read the installed session at construction time, on
// the constructing thread, and hand contexts plain pointers after that.
thread_local TraceSession* g_current = nullptr;
}

const char* category_name(Category c) {
  switch (c) {
    case Category::kKernel: return "kernel";
    case Category::kDma: return "dma";
    case Category::kMailbox: return "mailbox";
    case Category::kProfiler: return "profiler";
    case Category::kRuntime: return "runtime";
  }
  return "?";
}

void TraceTrack::begin(Category cat, std::string name, sim::SimTime ts) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::kBegin;
  e.cat = cat;
  e.name = std::move(name);
  e.ts = ts;
  events_.push_back(std::move(e));
  ++depth_;
}

void TraceTrack::end(sim::SimTime ts) {
  if (!enabled()) return;
  if (depth_ <= 0) {
    throw Error("TraceTrack '" + name_ + "': end() without an open span");
  }
  TraceEvent e;
  e.phase = TraceEvent::Phase::kEnd;
  e.cat = Category::kRuntime;  // Chrome pairs E with the open B; cat unused
  e.ts = ts;
  events_.push_back(std::move(e));
  --depth_;
}

void TraceTrack::complete(Category cat, std::string name, sim::SimTime start,
                          sim::SimTime end, const char* arg0_name,
                          std::uint64_t arg0, const char* arg1_name,
                          std::uint64_t arg1) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::kComplete;
  e.cat = cat;
  e.name = std::move(name);
  e.ts = start;
  e.dur = std::max(0.0, end - start);
  e.arg0_name = arg0_name;
  e.arg0 = arg0;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  events_.push_back(std::move(e));
}

void TraceTrack::instant(Category cat, std::string name, sim::SimTime ts,
                         const char* arg0_name, std::uint64_t arg0) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::kInstant;
  e.cat = cat;
  e.name = std::move(name);
  e.ts = ts;
  e.arg0_name = arg0_name;
  e.arg0 = arg0;
  events_.push_back(std::move(e));
}

TraceSession::~TraceSession() {
  if (g_current == this) g_current = nullptr;
}

TraceSession* TraceSession::current() { return g_current; }

void TraceSession::install() {
  if (g_current != nullptr && g_current != this) {
    throw Error("a TraceSession is already installed");
  }
  g_current = this;
}

void TraceSession::uninstall() {
  if (g_current == this) g_current = nullptr;
}

int TraceSession::register_machine(const std::string& name) {
  machines_.push_back(name);
  return static_cast<int>(machines_.size());  // pids start at 1
}

TraceTrack* TraceSession::make_track(int pid, std::string name) {
  tracks_.push_back(std::unique_ptr<TraceTrack>(
      new TraceTrack(this, pid, next_tid_++, std::move(name))));
  return tracks_.back().get();
}

std::size_t TraceSession::event_count() const {
  std::size_t n = 0;
  for (const auto& t : tracks_) n += t->events().size();
  return n;
}

std::vector<TraceSession::OrderedEvent> TraceSession::ordered_events() const {
  std::vector<OrderedEvent> out;
  out.reserve(event_count());
  for (const auto& t : tracks_) {
    const auto& evs = t->events();
    for (std::size_t i = 0; i < evs.size(); ++i) {
      out.push_back(OrderedEvent{&evs[i], t.get(), i});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const OrderedEvent& a, const OrderedEvent& b) {
              if (a.event->ts != b.event->ts) return a.event->ts < b.event->ts;
              if (a.track->pid() != b.track->pid()) {
                return a.track->pid() < b.track->pid();
              }
              if (a.track->tid() != b.track->tid()) {
                return a.track->tid() < b.track->tid();
              }
              return a.seq < b.seq;
            });
  return out;
}

}  // namespace cellport::trace
