#include "trace/chrome_export.h"

#include <cstdio>
#include <map>
#include <string_view>

#include "support/error.h"
#include "support/json.h"

namespace cellport::trace {

namespace {

constexpr double kNsPerUs = 1000.0;

void event_args(JsonWriter& w, const TraceEvent& e) {
  if (e.arg0_name == nullptr && e.arg1_name == nullptr) return;
  w.key("args").begin_object();
  if (e.arg0_name != nullptr) w.key(e.arg0_name).value(e.arg0);
  if (e.arg1_name != nullptr) w.key(e.arg1_name).value(e.arg1);
  w.end_object();
}

void emit_event(JsonWriter& w, const TraceEvent& e, const TraceTrack& track) {
  w.begin_object();
  switch (e.phase) {
    case TraceEvent::Phase::kBegin:
      w.key("ph").value("B");
      w.key("name").value(e.name);
      w.key("cat").value(category_name(e.cat));
      break;
    case TraceEvent::Phase::kEnd:
      w.key("ph").value("E");
      break;
    case TraceEvent::Phase::kComplete:
      w.key("ph").value("X");
      w.key("name").value(e.name);
      w.key("cat").value(category_name(e.cat));
      break;
    case TraceEvent::Phase::kInstant:
      w.key("ph").value("i");
      w.key("name").value(e.name);
      w.key("cat").value(category_name(e.cat));
      w.key("s").value("t");  // thread-scoped instant
      break;
  }
  w.key("pid").value(track.pid());
  w.key("tid").value(track.tid());
  w.key("ts").value_fixed(e.ts / kNsPerUs, 3);
  if (e.phase == TraceEvent::Phase::kComplete) {
    w.key("dur").value_fixed(e.dur / kNsPerUs, 3);
  }
  event_args(w, e);
  w.end_object();
}

void emit_metadata(JsonWriter& w, const TraceSession& session) {
  const auto& machines = session.machines();
  for (std::size_t i = 0; i < machines.size(); ++i) {
    w.begin_object();
    w.key("ph").value("M");
    w.key("name").value("process_name");
    w.key("pid").value(static_cast<int>(i) + 1);
    w.key("tid").value(0);
    w.key("args").begin_object().key("name").value(machines[i]).end_object();
    w.end_object();
  }
  for (const auto& track : session.tracks()) {
    w.begin_object();
    w.key("ph").value("M");
    w.key("name").value("thread_name");
    w.key("pid").value(track->pid());
    w.key("tid").value(track->tid());
    w.key("args").begin_object().key("name").value(track->name()).end_object();
    w.end_object();
    // Lanes render in tid order, which is creation order (PPE first).
    w.begin_object();
    w.key("ph").value("M");
    w.key("name").value("thread_sort_index");
    w.key("pid").value(track->pid());
    w.key("tid").value(track->tid());
    w.key("args")
        .begin_object()
        .key("sort_index")
        .value(track->tid())
        .end_object();
    w.end_object();
  }
}

/// Per-machine cumulative DMA byte counters: one "C" event at each DMA
/// completion makes EIB load visible as a graph. The ordered-event merge
/// keeps this deterministic.
void emit_eib_counters(JsonWriter& w, const TraceSession& session) {
  std::map<int, std::uint64_t> cumulative;
  for (const auto& oe : session.ordered_events()) {
    const TraceEvent& e = *oe.event;
    if (e.cat != Category::kDma || e.arg0_name == nullptr) continue;
    if (e.phase != TraceEvent::Phase::kComplete) continue;
    if (std::string_view(e.arg0_name) != "bytes") continue;
    std::uint64_t& total = cumulative[oe.track->pid()];
    total += e.arg0;
    w.begin_object();
    w.key("ph").value("C");
    w.key("name").value("EIB bytes");
    w.key("pid").value(oe.track->pid());
    w.key("tid").value(0);
    w.key("ts").value_fixed((e.ts + e.dur) / kNsPerUs, 3);
    w.key("args").begin_object().key("cumulative").value(total).end_object();
    w.end_object();
  }
}

}  // namespace

std::string chrome_trace_json(const TraceSession& session) {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  emit_metadata(w, session);
  for (const auto& oe : session.ordered_events()) {
    emit_event(w, *oe.event, *oe.track);
  }
  emit_eib_counters(w, session);
  w.end_array();
  w.end_object();
  return w.str();
}

void write_chrome_trace(const TraceSession& session,
                        const std::string& path) {
  std::string doc = chrome_trace_json(session);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw cellport::IoError("cannot open trace output '" + path + "'");
  }
  std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    throw cellport::IoError("short write to trace output '" + path + "'");
  }
}

}  // namespace cellport::trace
