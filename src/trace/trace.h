// cellscope: deterministic event tracing over *simulated* time.
//
// A TraceSession owns one TraceTrack per processing element (the PPE and
// each SPE of every Machine constructed while the session is installed).
// Instrumentation hooks in the simulator and the porting framework record
// typed spans and instants keyed on simulated timestamps; because those
// timestamps are derived purely from the analytic timing model, two runs
// of the same experiment produce the *same* trace, byte for byte, no
// matter how the host schedules the SPE threads.
//
// Threading contract: each track is appended to only by the thread that
// owns its processing element (the app thread for PPE tracks, the SPE's
// host thread for SPE tracks), so recording needs no locks. Cross-track
// ordering is established at export time by sorting on
// (timestamp, track, sequence).
//
// Cost model: when no session is installed — or the installed session is
// disabled — every hook reduces to one pointer/flag test. Hooks never
// advance simulated clocks, so tracing cannot perturb the timing model.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.h"

namespace cellport::trace {

/// Event taxonomy; the Chrome exporter maps these to `cat` and the ASCII
/// timeline assigns one glyph per category.
enum class Category : std::uint8_t {
  kKernel,    // SPE kernel function execution (dispatch to completion)
  kDma,       // MFC transfers and tag-status waits
  kMailbox,   // mailbox reads/writes and the stalls they carry
  kProfiler,  // PPE-side Profiler scopes (application phases)
  kRuntime,   // spawn/join/send/wait bookkeeping
};

const char* category_name(Category c);

struct TraceEvent {
  enum class Phase : std::uint8_t {
    kBegin,     // opens a nested span (Chrome "B")
    kEnd,       // closes the innermost open span (Chrome "E")
    kComplete,  // a span known in full at record time (Chrome "X")
    kInstant,   // a point event (Chrome "i")
  };
  Phase phase = Phase::kInstant;
  Category cat = Category::kRuntime;
  std::string name;
  sim::SimTime ts = 0;   // simulated ns
  sim::SimTime dur = 0;  // kComplete only
  // Up to two numeric arguments (bytes, tags, opcodes — never host
  // addresses, which would break run-to-run byte identity).
  const char* arg0_name = nullptr;
  std::uint64_t arg0 = 0;
  const char* arg1_name = nullptr;
  std::uint64_t arg1 = 0;
};

class TraceSession;

/// One timeline lane: all events of one processing element. Single-writer;
/// see the threading contract above.
class TraceTrack {
 public:
  const std::string& name() const { return name_; }
  /// Chrome pid (one per Machine) / tid (one per track within a machine).
  int pid() const { return pid_; }
  int tid() const { return tid_; }

  /// True when the owning session currently records. Hooks check this
  /// once and skip all argument construction when off.
  bool enabled() const;

  void begin(Category cat, std::string name, sim::SimTime ts);
  void end(sim::SimTime ts);
  void complete(Category cat, std::string name, sim::SimTime start,
                sim::SimTime end, const char* arg0_name = nullptr,
                std::uint64_t arg0 = 0, const char* arg1_name = nullptr,
                std::uint64_t arg1 = 0);
  void instant(Category cat, std::string name, sim::SimTime ts,
               const char* arg0_name = nullptr, std::uint64_t arg0 = 0);

  const std::vector<TraceEvent>& events() const { return events_; }
  /// Open begin/end nesting depth (0 when balanced).
  int open_depth() const { return depth_; }

 private:
  friend class TraceSession;
  TraceTrack(TraceSession* session, int pid, int tid, std::string name)
      : session_(session), pid_(pid), tid_(tid), name_(std::move(name)) {}

  TraceSession* session_;
  int pid_;
  int tid_;
  std::string name_;
  std::vector<TraceEvent> events_;
  int depth_ = 0;
};

/// RAII span over an explicit clock callback: records a begin event at
/// construction and the matching end at destruction. Inert when `track`
/// is null or the session is disabled.
class TraceSpan {
 public:
  using ClockFn = sim::SimTime (*)(void*);

  TraceSpan() = default;
  TraceSpan(TraceTrack* track, Category cat, std::string name, ClockFn clock,
            void* clock_ctx)
      : clock_(clock), clock_ctx_(clock_ctx) {
    if (track != nullptr && track->enabled()) {
      track_ = track;
      track_->begin(cat, std::move(name), clock_(clock_ctx_));
    }
  }
  ~TraceSpan() {
    if (track_ != nullptr) track_->end(clock_(clock_ctx_));
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceTrack* track_ = nullptr;
  ClockFn clock_ = nullptr;
  void* clock_ctx_ = nullptr;
};

class TraceSession {
 public:
  TraceSession() = default;
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The installed session that new Machines attach their tracks to
  /// (nullptr when tracing is off). Exactly one session may be installed.
  static TraceSession* current();
  void install();
  void uninstall();

  /// Runtime switch: a disabled session keeps its tracks but records
  /// nothing. Readable from any thread.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Registers one simulated machine; returns its pid for track creation.
  /// Called from the app thread (Machine construction).
  int register_machine(const std::string& name);
  /// Creates a new track under `pid`. Called from the app thread before
  /// any SPE thread starts.
  TraceTrack* make_track(int pid, std::string name);

  const std::vector<std::unique_ptr<TraceTrack>>& tracks() const {
    return tracks_;
  }
  const std::vector<std::string>& machines() const { return machines_; }

  std::size_t event_count() const;

  /// All events merged in the deterministic order
  /// (ts, pid, tid, per-track sequence); the exporters' input.
  struct OrderedEvent {
    const TraceEvent* event;
    const TraceTrack* track;
    std::size_t seq;  // index within the track
  };
  std::vector<OrderedEvent> ordered_events() const;

 private:
  std::atomic<bool> enabled_{true};
  std::vector<std::string> machines_;
  std::vector<std::unique_ptr<TraceTrack>> tracks_;
  int next_tid_ = 1;
};

inline bool TraceTrack::enabled() const { return session_->enabled(); }

}  // namespace cellport::trace
