// MetricsRegistry: named counters, gauges, and duration histograms over
// simulated time.
//
// The registry subsumes the ad-hoc counters MachineReport used to gather
// by hand: the simulator publishes per-SPE busy time, DMA traffic, stall
// distributions, mailbox occupancy, and EIB utilization as named series,
// and sim::snapshot() is reimplemented as a read of those series. Series
// names are dotted paths ("spe0.dma.bytes", "eib.utilization") so JSON
// consumers can group them.
//
// Threading contract: series creation and scalar reads happen on the app
// thread; a Histogram/Counter pointer handed to an SPE context is only
// written by that SPE's thread. Storage is std::map so iteration order —
// and therefore every rendered report — is deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cellport {
class JsonWriter;
}

namespace cellport::trace {

/// Monotonically increasing integer series.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins scalar series.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  double value_ = 0;
};

/// Sample distribution (simulated durations, occupancies) kept as an
/// HDR-style log-bucketed histogram: each power-of-two octave is split
/// into kSubBuckets linear sub-buckets, so storage is O(occupied
/// buckets) no matter how many samples arrive and per-thread histograms
/// merge exactly (bucket counts add; merge order never changes the
/// result). Quantiles come from the bucket midpoints, clamped to the
/// exact [min, max], giving a relative error of at most
/// 1/(2*kSubBuckets) ~ 1.6% — plenty for p50/p95/p99 over simulated
/// durations. count/sum/min/max stay exact.
class Histogram {
 public:
  /// Linear sub-buckets per power-of-two octave. 32 bounds the relative
  /// quantile error at ~1.6% while keeping bucket maps tiny.
  static constexpr int kSubBuckets = 32;

  void record(double v);

  std::size_t count() const { return static_cast<std::size_t>(count_); }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }
  double mean() const;
  /// p in [0, 100]. p<=0 returns the exact min, p>=100 the exact max;
  /// interior quantiles are bucket midpoints (<=1.6% relative error),
  /// monotone in p and always within [min, max].
  double percentile(double p) const;
  /// Adds `other`'s samples to this histogram. Exact: merging N
  /// per-thread histograms equals recording all samples into one.
  void merge(const Histogram& other);
  void reset();

  /// Occupied (bucket index -> sample count); exposed for tests.
  const std::map<int, std::uint64_t>& buckets() const { return buckets_; }

 private:
  static int bucket_index(double v);
  static double bucket_mid(int idx);

  std::map<int, std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

class MetricsRegistry {
 public:
  /// Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Scalar read across kinds: counter value, gauge value, or histogram
  /// sum — 0 when the series does not exist.
  double value(const std::string& name) const;

  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms()
      const {
    return histograms_;
  }

  /// Zeroes every series (keeps the registrations and handed-out
  /// pointers valid).
  void reset();

  /// Aligned text rendering: counters and gauges, then histograms with
  /// count/mean/p50/p95/p99/p99.9.
  std::string format_text() const;

  /// Emits one JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {count, sum, min, max, mean, p50, p95, p99,
  ///                          p99_9}}}
  void write_json(JsonWriter& w) const;
  /// write_json() to a standalone document string.
  std::string to_json() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace cellport::trace
