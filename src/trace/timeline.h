// Terminal rendering of a TraceSession: one ASCII lane per track over
// simulated time.
//
// Good enough to *see* scheduling at a glance — e.g. that with double
// buffering the DMA glyphs disappear under kernel glyphs (latency hidden),
// or that the MultiSPE scenario's four extraction lanes run concurrently
// where SingleSPE serializes them. Each column is a time bucket; the glyph
// is the highest-priority category active in that bucket:
//   '#' kernel   '=' DMA transfer   '%' DMA wait   '~' mailbox wait
//   'p' profiler phase   '-' runtime   '.' idle
#pragma once

#include <string>

#include "trace/trace.h"

namespace cellport::trace {

struct TimelineOptions {
  /// Characters per lane (time resolution).
  int width = 96;
  /// Restrict to one machine pid (0 = all machines, stacked).
  int pid = 0;
};

std::string render_timeline(const TraceSession& session,
                            const TimelineOptions& options = {});

}  // namespace cellport::trace
