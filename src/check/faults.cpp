#include "check/faults.h"

#include "sim/spu_mfcio.h"
#include "support/error.h"

namespace cellport::check {

namespace {

int faulting_kernel(std::uint64_t ea) {
  auto* msg = reinterpret_cast<FaultMsg*>(ea);
  switch (msg->which) {
    case kFaultMisalignedDma: {
      auto* buf = sim::spu_ls_alloc(64, 16);
      sim::mfc_get(static_cast<std::uint8_t*>(buf) + 4, msg->ea, 32, 0);
      return 0;
    }
    case kFaultLsOverflow: {
      sim::spu_ls_alloc(300 * 1024, 16);
      return 0;
    }
    case kFaultOversizedTransfer: {
      auto* buf = sim::spu_ls_alloc(32 * 1024, 16);
      sim::mfc_get(buf, msg->ea, 20 * 1024, 0);
      return 0;
    }
    case kFaultBadTag: {
      auto* buf = sim::spu_ls_alloc(64, 16);
      sim::mfc_get(buf, msg->ea, 64, 40);
      return 0;
    }
    case kFaultDuringDma: {
      // A legal transfer goes in flight on tag 2; before waiting for it
      // the kernel issues a misaligned command on the same tag. The MFC
      // must reject the second command precisely while the first one is
      // outstanding, and the machine must stay usable afterwards.
      auto* buf = static_cast<std::uint8_t*>(sim::spu_ls_alloc(128, 16));
      sim::mfc_get(buf, msg->ea, 64, 2);
      sim::mfc_get(buf + 68, msg->ea, 32, 2);
      sim::mfc_write_tag_mask(1u << 2);
      sim::mfc_read_tag_status_all();
      return 0;
    }
    default:
      return 0;
  }
}

}  // namespace

port::KernelModule& fault_module() {
  static port::KernelModule m("faulty", 2048);
  static bool init = (m.add_function(1, &faulting_kernel), true);
  (void)init;
  return m;
}

const char* fault_kind_name(int kind) {
  static const char* const kNames[kNumFaultKinds] = {
      "misaligned_dma", "ls_overflow", "oversized_transfer", "bad_tag",
      "fault_during_dma"};
  if (kind < 0 || kind >= kNumFaultKinds) {
    throw cellport::ConfigError("unknown fault kind " +
                                std::to_string(kind));
  }
  return kNames[kind];
}

const char* fault_kind_rule(int kind) {
  static const char* const kRules[kNumFaultKinds] = {
      "mfc.alignment", "ls.capacity.data", "mfc.size", "mfc.tag",
      "mfc.alignment"};
  if (kind < 0 || kind >= kNumFaultKinds) {
    throw cellport::ConfigError("unknown fault kind " +
                                std::to_string(kind));
  }
  return kRules[kind];
}

}  // namespace cellport::check
