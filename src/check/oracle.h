// The differential oracle: equivalence predicates between the Cell port
// and the reference implementation, with the same tolerances the paper's
// validation used (color features bit-exact, edge/texture within the
// float-vs-double accumulation bound, detection scores within the model
// Lipschitz amplification of the feature error).
#pragma once

#include <string>

#include "features/feature.h"
#include "marvel/result.h"

namespace cellport::check {

/// Per-feature comparison; returns "" on match, else a one-line
/// diagnostic naming the first offending element.
std::string compare_ch(const features::FeatureVector& cell,
                       const features::FeatureVector& ref);
std::string compare_cc(const features::FeatureVector& cell,
                       const features::FeatureVector& ref);
std::string compare_eh(const features::FeatureVector& cell,
                       const features::FeatureVector& ref);
std::string compare_tx(const features::FeatureVector& cell,
                       const features::FeatureVector& ref);
std::string compare_detect(const std::string& name,
                           const std::vector<double>& cell,
                           const std::vector<double>& ref);

/// Full-result comparison (all four features + all four score sets).
/// Returns "" when equivalent.
std::string compare_results(const marvel::AnalysisResult& cell,
                            const marvel::AnalysisResult& ref);

/// Canonical byte-stable serialization of a result (exact float/double
/// values via shortest-round-trip formatting). Two runs are considered
/// bit-identical iff their canonical forms are byte-equal.
std::string canonical_result_json(const marvel::AnalysisResult& r);

}  // namespace cellport::check
