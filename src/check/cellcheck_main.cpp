// cellcheck — property-based scenario fuzzing for the simulated Cell
// port, with a differential oracle against the reference implementation.
//
//   cellcheck --scenarios 500 --seed 1      # a fuzzing run
//   cellcheck --replay 77305              # one scenario by seed
//   cellcheck --replay-file failure.json    # a minimized repro
//
// Scenario i of a run uses seed SplitMix64(base_seed, i), so any failing
// scenario is reproducible from the run's base seed alone. On failure
// the scenario is greedily shrunk and the minimized spec written as JSON
// (--out, default cellcheck.failure.json). All stdout is derived from
// seeds and simulated time only — two identical invocations print
// byte-identical logs.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "check/faults.h"
#include "check/runner.h"
#include "check/scenario.h"
#include "check/shrink.h"
#include "learn/model_store.h"
#include "sim/invariants.h"
#include "sim/observe.h"
#include "support/error.h"

namespace {

using cellport::check::RunConfig;
using cellport::check::RunOutcome;
using cellport::check::ScenarioSpec;

struct Options {
  int scenarios = 100;
  std::uint64_t seed = 1;
  bool have_replay_seed = false;
  std::uint64_t replay_seed = 0;
  std::string replay_file;
  std::string out_path = "cellcheck.failure.json";
  std::string library_path;
  std::size_t shrink_budget = 200;
  bool verbose = false;
  bool fail_fast = true;
  bool guard_matrix = false;
  bool serve_matrix = false;
  bool balance_matrix = false;
  int jobs = 0;  // scenario threads; 0 = hardware_concurrency
};

/// Scenario seeds are decorrelated from the (often tiny) base seed with
/// the SplitMix64 finalizer, the same construction support/rng.h uses.
std::uint64_t scenario_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

int usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --scenarios N      number of scenarios to run (default 100)\n"
      "  --seed S           base seed for the run (default 1)\n"
      "  --replay SEED      run exactly one scenario by its seed\n"
      "  --replay-file F    run the scenario spec in JSON file F\n"
      "  --out F            minimized-failure output path\n"
      "                     (default cellcheck.failure.json)\n"
      "  --library F        model library path (default: generated in "
      "/tmp)\n"
      "  --guard-matrix     generate guarded engine scenarios with\n"
      "                     scheduled SPE faults (hang/slow/dma-error)\n"
      "  --serve-matrix     generate multi-tenant broker scenarios\n"
      "                     (admission, deadlines, degrade/shed ladder)\n"
      "  --balance-matrix   generate steal-scheduled scenarios with the\n"
      "                     content cache armed (duplicate-heavy corpora,\n"
      "                     guard faults, streamed windows)\n"
      "  --jobs N           scenario threads (default: all host cores);\n"
      "                     results and logs are independent of N\n"
      "  --no-shrink        keep the original failing scenario\n"
      "  --keep-going       run all scenarios even after a failure\n"
      "  --verbose          log every scenario, not just failures\n",
      argv0);
  return 2;
}

bool parse_u64(const char* s, std::uint64_t* out) {
  try {
    *out = std::stoull(s);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw cellport::IoError("cannot open " + path);
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

/// One-line scenario summary: everything needed to eyeball what ran,
/// derived only from the spec (no clocks, no pointers).
std::string describe(const ScenarioSpec& spec) {
  std::string s = std::string(cellport::check::mode_name(spec.mode)) +
                  " spes=" + std::to_string(spec.num_spes);
  if (spec.mode == cellport::check::Mode::kTaskPool) {
    s += " workers=" + std::to_string(spec.pool_workers);
  }
  if (spec.kernel >= 0) s += " kernel=" + std::to_string(spec.kernel);
  s += " images=" + std::to_string(spec.images.size());
  if (spec.fault_kind >= 0) {
    s += std::string(" fault=") +
         cellport::check::fault_kind_name(spec.fault_kind);
  }
  if (spec.sharded) s += " sharded";
  if (spec.feed) s += " feed";
  if (spec.fused) s += " fused";
  if (spec.balanced) s += " balanced";
  if (spec.cache_kb > 0) s += " cache=" + std::to_string(spec.cache_kb) + "k";
  if (spec.replay_twice) s += " replay2";
  if (spec.scaling_probe) s += " scaling";
  if (spec.pipelined_batch) s += " pipelined";
  if (spec.stream_batch > 0) {
    s += " stream=" + std::to_string(spec.stream_batch);
  }
  if (spec.serve) {
    s += " serve tenants=" + std::to_string(spec.serve_tenants) +
         " budget=" + std::to_string(spec.serve_budget) +
         " sbatch=" + std::to_string(spec.serve_batch);
    if (spec.serve_tight) s += " tight";
  }
  if (spec.guarded) {
    s += " guarded";
    if (spec.sched_fault >= 0) {
      s += std::string(" sched=") +
           cellport::check::sched_fault_name(spec.sched_fault) + "@spe" +
           std::to_string(spec.sched_spe) + "+" +
           std::to_string(spec.sched_at);
    }
  }
  return s;
}

/// Runs, shrinks, and reports one failing scenario; returns the shrunk
/// spec's JSON (also written to opts.out_path).
void report_failure(const ScenarioSpec& spec, const RunOutcome& outcome,
                    const RunConfig& cfg, const Options& opts) {
  std::printf("FAIL seed=%llu property=%s\n",
              static_cast<unsigned long long>(spec.seed),
              outcome.property.c_str());
  std::printf("  %s\n", outcome.message.c_str());
  std::printf("  scenario: %s\n", describe(spec).c_str());

  ScenarioSpec minimized = spec;
  if (opts.shrink_budget > 0) {
    auto still_fails = [&](const ScenarioSpec& candidate) {
      RunOutcome again = cellport::check::run_scenario(candidate, cfg);
      return !again.ok && again.property == outcome.property;
    };
    cellport::check::ShrinkResult shrunk = cellport::check::shrink_scenario(
        spec, still_fails, opts.shrink_budget);
    minimized = shrunk.spec;
    std::printf("  shrink: %zu reductions in %zu runs -> %s\n",
                shrunk.accepted, shrunk.evaluations,
                describe(minimized).c_str());
  }
  std::string json = cellport::check::spec_to_json(minimized);
  cellport::sim::ObserveGuard::write_text_file(opts.out_path, json + "\n");
  std::printf("  minimized scenario written to %s\n",
              opts.out_path.c_str());
  std::printf("  replay: cellcheck --replay-file %s\n",
              opts.out_path.c_str());
}

int run(const Options& opts) {
  RunConfig cfg;
  cfg.library_path = opts.library_path;
  if (cfg.library_path.empty()) {
    // A reduced library (2 extra inactive concepts instead of 34) keeps
    // per-scenario model-load cost small without changing the active
    // model set the oracle compares against.
    cfg.library_path = "/tmp/cellcheck_models.bin";
    cellport::learn::save_library(cfg.library_path,
                                  cellport::learn::make_marvel_models(),
                                  /*extra_concepts_per_feature=*/2);
  }

  auto generate = [&opts](std::uint64_t s) {
    if (opts.balance_matrix) {
      return cellport::check::generate_balance_scenario(s);
    }
    if (opts.serve_matrix) return cellport::check::generate_serve_scenario(s);
    if (opts.guard_matrix) return cellport::check::generate_guard_scenario(s);
    return cellport::check::generate_scenario(s);
  };
  const char* matrix = opts.balance_matrix ? "balance-matrix "
                       : opts.serve_matrix ? "serve-matrix "
                       : opts.guard_matrix ? "guard-matrix "
                                           : "";
  std::vector<ScenarioSpec> specs;
  if (!opts.replay_file.empty()) {
    specs.push_back(
        cellport::check::spec_from_json(read_file(opts.replay_file)));
    std::printf("[cellcheck] replaying %s\n", opts.replay_file.c_str());
  } else if (opts.have_replay_seed) {
    specs.push_back(generate(opts.replay_seed));
    std::printf("[cellcheck] replaying seed %llu%s\n",
                static_cast<unsigned long long>(opts.replay_seed),
                opts.balance_matrix ? " (balance matrix)"
                : opts.serve_matrix ? " (serve matrix)"
                : opts.guard_matrix ? " (guard matrix)"
                                    : "");
  } else {
    std::printf("[cellcheck] %d %sscenarios, base seed %llu\n",
                opts.scenarios, matrix,
                static_cast<unsigned long long>(opts.seed));
    for (int i = 0; i < opts.scenarios; ++i) {
      specs.push_back(
          generate(scenario_seed(opts.seed, static_cast<std::uint64_t>(i))));
    }
  }

  // Run phase: scenarios are independent (each builds its own simulated
  // machine, and the sim keeps per-thread trace/invariant state), so
  // they fan out over host threads. Outcomes are collected by index and
  // reported in order below, which keeps stdout — and, under
  // --fail-fast, the *first* failing scenario — byte-identical to a
  // serial run: a worker that sees a failure at index i only skips
  // indices beyond i, never one that could become the earlier failure.
  int jobs = opts.jobs > 0
                 ? opts.jobs
                 : static_cast<int>(std::thread::hardware_concurrency());
  jobs = std::max(1, std::min(jobs, static_cast<int>(specs.size())));
  std::vector<RunOutcome> outcomes(specs.size());
  std::vector<char> ran(specs.size(), 0);
  if (jobs == 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      outcomes[i] = cellport::check::run_scenario(specs[i], cfg);
      ran[i] = 1;
      if (!outcomes[i].ok && opts.fail_fast) break;
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> first_fail{specs.size()};
    auto worker = [&]() {
      cellport::sim::InvariantChannel channel;
      cellport::sim::ScopedInvariantChannel scope(&channel);
      for (;;) {
        std::size_t i = next.fetch_add(1);
        if (i >= specs.size()) return;
        if (opts.fail_fast && i > first_fail.load()) continue;
        outcomes[i] = cellport::check::run_scenario(specs[i], cfg);
        ran[i] = 1;
        if (!outcomes[i].ok) {
          std::size_t cur = first_fail.load();
          while (i < cur && !first_fail.compare_exchange_weak(cur, i)) {
          }
        }
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  // Report phase (serial, in index order; shrinking re-runs scenarios on
  // this thread).
  int failures = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!ran[i]) continue;
    const ScenarioSpec& spec = specs[i];
    const RunOutcome& outcome = outcomes[i];
    if (opts.verbose && outcome.ok) {
      std::printf("ok seed=%llu %s\n",
                  static_cast<unsigned long long>(spec.seed),
                  describe(spec).c_str());
    }
    if (!outcome.ok) {
      ++failures;
      report_failure(spec, outcome, cfg, opts);
      if (opts.fail_fast) break;
    }
  }
  if (failures == 0) {
    std::printf("[cellcheck] all %zu scenario(s) passed\n", specs.size());
    return 0;
  }
  std::printf("[cellcheck] %d failing scenario(s)\n", failures);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(arg, "--scenarios") == 0 && (v = next()) != nullptr) {
      opts.scenarios = std::atoi(v);
      if (opts.scenarios <= 0) return usage(argv[0]);
    } else if (std::strcmp(arg, "--seed") == 0 && (v = next()) != nullptr) {
      if (!parse_u64(v, &opts.seed)) return usage(argv[0]);
    } else if (std::strcmp(arg, "--replay") == 0 &&
               (v = next()) != nullptr) {
      if (!parse_u64(v, &opts.replay_seed)) return usage(argv[0]);
      opts.have_replay_seed = true;
    } else if (std::strcmp(arg, "--replay-file") == 0 &&
               (v = next()) != nullptr) {
      opts.replay_file = v;
    } else if (std::strcmp(arg, "--out") == 0 && (v = next()) != nullptr) {
      opts.out_path = v;
    } else if (std::strcmp(arg, "--library") == 0 &&
               (v = next()) != nullptr) {
      opts.library_path = v;
    } else if (std::strcmp(arg, "--jobs") == 0 && (v = next()) != nullptr) {
      opts.jobs = std::atoi(v);
      if (opts.jobs <= 0) return usage(argv[0]);
    } else if (std::strcmp(arg, "--guard-matrix") == 0) {
      opts.guard_matrix = true;
    } else if (std::strcmp(arg, "--serve-matrix") == 0) {
      opts.serve_matrix = true;
    } else if (std::strcmp(arg, "--balance-matrix") == 0) {
      opts.balance_matrix = true;
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      opts.shrink_budget = 0;
    } else if (std::strcmp(arg, "--keep-going") == 0) {
      opts.fail_fast = false;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      opts.verbose = true;
    } else {
      return usage(argv[0]);
    }
  }
  try {
    return run(opts);
  } catch (const cellport::Error& e) {
    std::fprintf(stderr, "[cellcheck] fatal: %s\n", e.what());
    return 2;
  }
}
