// Greedy scenario shrinking: given a failing spec and a predicate that
// re-checks "does this still fail?", repeatedly applies the simplest
// applicable reduction (drop property riders, drop the fault, drop
// images, halve dimensions, neutralize knobs, shrink the machine,
// simplify the mode) until no reduction keeps the failure alive or the
// evaluation budget runs out. The result is the spec `cellcheck
// --replay-file` reproduces.
#pragma once

#include <cstddef>
#include <functional>

#include "check/scenario.h"

namespace cellport::check {

struct ShrinkResult {
  ScenarioSpec spec;            // smallest still-failing spec found
  std::size_t evaluations = 0;  // predicate calls spent
  std::size_t accepted = 0;     // reductions that kept the failure
};

/// `still_fails` must return true when the candidate spec reproduces the
/// original failure. `budget` caps predicate evaluations (each one is a
/// full scenario run).
ShrinkResult shrink_scenario(
    const ScenarioSpec& failing,
    const std::function<bool(const ScenarioSpec&)>& still_fails,
    std::size_t budget = 200);

}  // namespace cellport::check
