#include "check/shrink.h"

#include <algorithm>
#include <vector>

namespace cellport::check {

namespace {

/// Dimension floor a candidate must respect: every mode that runs the
/// texture kernel needs >= 16 on both axes.
int dim_floor(const ScenarioSpec& spec) {
  bool tx_free =
      spec.mode == Mode::kKernelDirect && spec.kernel != kKernelTx;
  return tx_free ? 1 : 16;
}

/// Smallest machine the spec's mode (plus a fault's spare SPE) accepts.
int min_spes(const ScenarioSpec& spec) {
  switch (spec.mode) {
    case Mode::kKernelDirect: return spec.fault_kind >= 0 ? 2 : 1;
    case Mode::kEngineSingle:
    case Mode::kEngineMulti: return spec.fault_kind >= 0 ? 6 : 5;
    case Mode::kEngineMulti2: return 8;
    case Mode::kTaskPool: return std::max(1, spec.pool_workers);
  }
  return 8;
}

/// One-step reductions, simplest first. Every candidate is a valid spec.
std::vector<ScenarioSpec> candidates(const ScenarioSpec& spec) {
  std::vector<ScenarioSpec> out;
  auto push = [&out](ScenarioSpec next) { out.push_back(std::move(next)); };

  if (spec.scaling_probe) {
    ScenarioSpec next = spec;
    next.scaling_probe = false;
    push(next);
  }
  if (spec.replay_twice) {
    ScenarioSpec next = spec;
    next.replay_twice = false;
    push(next);
  }
  if (spec.pipelined_batch) {
    ScenarioSpec next = spec;
    next.pipelined_batch = false;
    push(next);
  }
  if (spec.stream_batch > 0) {
    // Dropping the stream rider entirely is the bigger simplification;
    // failing that, a one-image window still exercises the ring protocol
    // with the smallest possible schedule.
    ScenarioSpec next = spec;
    next.stream_batch = 0;
    push(next);
    if (spec.stream_batch > 1) {
      next = spec;
      next.stream_batch = 1;
      push(next);
    }
  }
  if (spec.sharded) {
    // Restoring the mode's static schedule is the bigger simplification;
    // it localizes a failure to the shard split/reduction layer.
    ScenarioSpec next = spec;
    next.sharded = false;
    push(next);
  }
  if (spec.feed) {
    // Collapsing SPE ingest back to the PPE byte loop (the corpus
    // reverts to SIC streams with it) localizes a failure to the
    // cellfeed DMA-list path.
    ScenarioSpec next = spec;
    next.feed = false;
    push(next);
  }
  if (spec.fused) {
    // Restoring the per-feature extraction schedule localizes a failure
    // to the cellfuse single-pass kernel / fused reduction layer.
    ScenarioSpec next = spec;
    next.fused = false;
    push(next);
  }
  if (spec.balanced) {
    // Restoring the static fused split localizes a failure to the
    // cellbalance steal queue / cross-image task pool.
    ScenarioSpec next = spec;
    next.balanced = false;
    push(next);
  }
  if (spec.cache_kb > 0) {
    // Disarming the content cache localizes a failure to the digest /
    // hit-serve / eviction layer.
    ScenarioSpec next = spec;
    next.cache_kb = 0;
    push(next);
  }
  if (spec.serve) {
    // Dropping the broker entirely (back to a plain engine run)
    // localizes a failure to the serve layer; failing that, relax its
    // knobs one at a time toward the calmest broker: far deadlines, one
    // tenant, serial windows, an uncontended budget.
    ScenarioSpec next = spec;
    next.serve = false;
    next.serve_tenants = 1;
    next.serve_budget = 8;
    next.serve_batch = 2;
    next.serve_tight = false;
    push(next);
    if (spec.serve_tight) {
      next = spec;
      next.serve_tight = false;
      push(next);
    }
    if (spec.serve_tenants > 1) {
      next = spec;
      next.serve_tenants = 1;
      push(next);
    }
    if (spec.serve_batch > 1) {
      next = spec;
      next.serve_batch = 1;
      push(next);
    }
    if (spec.serve_budget < 8) {
      next = spec;
      next.serve_budget = 8;
      push(next);
    }
  }
  if (spec.fault_kind >= 0) {
    ScenarioSpec next = spec;
    next.fault_kind = -1;
    push(next);
  }
  if (spec.sched_fault >= 0) {
    ScenarioSpec next = spec;
    next.sched_fault = -1;
    next.sched_spe = 0;
    next.sched_at = 0;
    push(next);
  }
  if (spec.guarded && spec.sched_fault < 0) {
    // A scheduled fault needs the guard; only a fault-free spec can
    // drop it.
    ScenarioSpec next = spec;
    next.guarded = false;
    push(next);
  }
  if (spec.sched_fault >= 0 && (spec.sched_spe != 0 || spec.sched_at != 0)) {
    ScenarioSpec next = spec;
    next.sched_spe = 0;
    next.sched_at = 0;
    push(next);
  }
  if (spec.images.size() > 1) {
    for (std::size_t i = 0; i < spec.images.size(); ++i) {
      ScenarioSpec next = spec;
      next.images.erase(next.images.begin() +
                        static_cast<std::ptrdiff_t>(i));
      push(next);
    }
  }
  int floor = dim_floor(spec);
  for (std::size_t i = 0; i < spec.images.size(); ++i) {
    if (spec.images[i].width > floor) {
      ScenarioSpec next = spec;
      next.images[i].width = std::max(floor, spec.images[i].width / 2);
      push(next);
    }
    if (spec.images[i].height > floor) {
      ScenarioSpec next = spec;
      next.images[i].height = std::max(floor, spec.images[i].height / 2);
      push(next);
    }
    if (spec.images[i].kind != 0 || spec.images[i].quality != 85 ||
        spec.images[i].seed != 1) {
      ScenarioSpec next = spec;
      next.images[i].kind = 0;
      next.images[i].quality = 85;
      next.images[i].seed = 1;
      push(next);
    }
  }
  if (spec.block_rows != 0 || spec.buffering != 2 || spec.use_naive) {
    ScenarioSpec next = spec;
    next.block_rows = 0;
    next.buffering = 2;
    next.use_naive = false;
    push(next);
  }
  if (spec.mode == Mode::kTaskPool && spec.pool_workers > 1) {
    ScenarioSpec next = spec;
    next.pool_workers = 1;
    push(next);
  }
  if (spec.num_spes > min_spes(spec)) {
    ScenarioSpec next = spec;
    next.num_spes = min_spes(spec);
    push(next);
  }
  // A still-sharded failure shrinks to the planner's 5-SPE floor, where
  // the plan degenerates to one shard per kernel. kEngineMulti2's mode
  // floor is 8 SPEs, so the downgrade to kEngineMulti rides along to
  // keep the candidate valid if the sharded rider is dropped later.
  if (spec.sharded && spec.num_spes > 5 && spec.fault_kind < 0) {
    ScenarioSpec next = spec;
    next.num_spes = 5;
    if (next.mode == Mode::kEngineMulti2) next.mode = Mode::kEngineMulti;
    push(next);
  }
  // Mode simplification within the engine family: the richer schedules
  // subsume the simpler ones, so a bug that survives the downgrade gets
  // a much smaller machine/schedule to debug against.
  if (spec.mode == Mode::kEngineMulti2) {
    ScenarioSpec next = spec;
    next.mode = Mode::kEngineMulti;
    next.fault_kind = -1;  // multi2 never carries one; keep it that way
    push(next);
  } else if (spec.mode == Mode::kEngineMulti) {
    ScenarioSpec next = spec;
    next.mode = Mode::kEngineSingle;
    next.pipelined_batch = false;
    push(next);
  }
  return out;
}

}  // namespace

ShrinkResult shrink_scenario(
    const ScenarioSpec& failing,
    const std::function<bool(const ScenarioSpec&)>& still_fails,
    std::size_t budget) {
  ShrinkResult result;
  result.spec = failing;
  bool progressed = true;
  while (progressed && result.evaluations < budget) {
    progressed = false;
    for (const ScenarioSpec& candidate : candidates(result.spec)) {
      if (result.evaluations >= budget) break;
      ++result.evaluations;
      if (still_fails(candidate)) {
        result.spec = candidate;
        ++result.accepted;
        progressed = true;
        break;  // restart from the simplified spec
      }
    }
  }
  return result;
}

}  // namespace cellport::check
