#include "check/runner.h"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "check/faults.h"
#include "check/oracle.h"
#include "guard/policy.h"
#include "features/color_correlogram.h"
#include "features/color_histogram.h"
#include "features/edge_histogram.h"
#include "features/texture.h"
#include "img/codec.h"
#include "img/synth.h"
#include "kernels/cc_kernel.h"
#include "kernels/cd_kernel.h"
#include "kernels/ch_kernel.h"
#include "kernels/eh_kernel.h"
#include "kernels/messages.h"
#include "kernels/tx_kernel.h"
#include "marvel/cell_engine.h"
#include "marvel/reference_engine.h"
#include "port/message.h"
#include "port/spe_interface.h"
#include "port/taskpool.h"
#include "probe/attribution.h"
#include "serve/broker.h"
#include "serve/request.h"
#include "sim/invariants.h"
#include "sim/machine.h"
#include "support/aligned.h"
#include "support/error.h"
#include "support/json.h"
#include "support/rng.h"
#include "trace/chrome_export.h"
#include "trace/trace.h"

namespace cellport::check {

namespace {

RunOutcome fail(std::string property, std::string message) {
  RunOutcome out;
  out.ok = false;
  out.property = std::move(property);
  out.message = std::move(message);
  return out;
}

/// Renders the scenario's synthetic images (and, for codec-consuming
/// modes, their SIC streams).
struct Inputs {
  std::vector<img::RgbImage> pixels;
  std::vector<img::SicEncoded> encoded;
};

Inputs make_inputs(const ScenarioSpec& spec, bool through_codec) {
  Inputs in;
  for (const ImageSpec& s : spec.images) {
    img::RgbImage img = img::synth_image(static_cast<img::SceneKind>(s.kind),
                                         s.seed, s.width, s.height);
    if (through_codec) {
      // The feed rider swaps the lossy SIC streams for lossless P6 PPM
      // carriers: the engine's SPE ingest and the oracle's PPE decode
      // then consume the exact same bytes, so the comparison stays
      // bit-for-bit.
      in.encoded.push_back(spec.feed ? img::ppm_encode(img)
                                     : img::sic_encode(img, s.quality));
    } else {
      in.pixels.push_back(std::move(img));
    }
  }
  return in;
}

/// Sends each fault kind through `iface` and checks the full contract:
/// the call throws, the expected invariant rule (and only it) was
/// reported, and a benign follow-up call still works.
std::string run_fault_probe(port::SPEInterface& iface, int kind) {
  cellport::AlignedBuffer<std::uint8_t> host(1024);
  port::WrappedMessage<FaultMsg> msg;
  msg->ea = reinterpret_cast<std::uint64_t>(host.data());
  msg->which = kind;

  bool threw = false;
  try {
    iface.SendAndWait(1, msg.ea());
  } catch (const cellport::Error&) {
    threw = true;
  }
  if (!threw) {
    return std::string("fault '") + fault_kind_name(kind) +
           "' did not surface as an exception";
  }
  auto violations = sim::InvariantChannel::instance().drain();
  const char* rule = fault_kind_rule(kind);
  bool found = false;
  for (const auto& v : violations) {
    if (v.rule == rule) {
      found = true;
    } else {
      return "fault '" + std::string(fault_kind_name(kind)) +
             "' reported unexpected rule '" + v.rule + "' (" + v.message +
             ")";
    }
  }
  if (!found) {
    return "fault '" + std::string(fault_kind_name(kind)) +
           "' was not reported to the InvariantChannel (expected rule '" +
           rule + "')";
  }
  // The machine survives: an unknown fault kind is a no-op returning 0.
  msg->which = 99;
  if (iface.SendAndWait(1, msg.ea()) != 0) {
    return "machine did not survive fault '" +
           std::string(fault_kind_name(kind)) + "'";
  }
  return "";
}

/// Post-workload hygiene shared by every mode: the channel must be empty
/// (faults drained it already) and the machine-level aggregate rules
/// (EIB byte conservation, mailbox accounting, LS peaks) must hold.
RunOutcome check_clean(sim::Machine& machine) {
  auto leftovers = sim::InvariantChannel::instance().drain();
  if (!leftovers.empty()) {
    return fail("invariants.channel-clean",
                "workload reported " + std::to_string(leftovers.size()) +
                    " violation(s); first: " + to_string(leftovers[0]));
  }
  auto aggregate = sim::check_machine_invariants(machine);
  sim::InvariantChannel::instance().drain();  // reported above, too
  if (!aggregate.empty()) {
    return fail("invariants.machine", to_string(aggregate[0]));
  }
  return RunOutcome{};
}

// ---- kernel-direct mode ----

struct KernelDesc {
  port::KernelModule* module;
  int dim;
  std::string (*compare)(const features::FeatureVector&,
                         const features::FeatureVector&);
  features::FeatureVector (*reference)(const img::RgbImage&,
                                       sim::ScalarContext*);
  const char* name;
};

KernelDesc kernel_desc(int kernel) {
  switch (kernel) {
    case kKernelCh:
      return {&kernels::ch_module(), features::kColorHistogramDim,
              &compare_ch, &features::extract_color_histogram, "ch"};
    case kKernelCc:
      return {&kernels::cc_module(), features::kColorCorrelogramDim,
              &compare_cc, &features::extract_color_correlogram, "cc"};
    case kKernelEh:
      return {&kernels::eh_module(), features::kEdgeHistogramDim,
              &compare_eh, &features::extract_edge_histogram, "eh"};
    case kKernelTx:
      return {&kernels::tx_module(), features::kTextureDim, &compare_tx,
              &features::extract_texture, "tx"};
    default:
      throw cellport::ConfigError("scenario: bad kernel index " +
                                  std::to_string(kernel));
  }
}

RunOutcome run_kernel_direct(const ScenarioSpec& spec, const RunConfig&,
                             std::string* canonical) {
  Inputs in = make_inputs(spec, /*through_codec=*/false);
  KernelDesc k = kernel_desc(spec.kernel);

  sim::Machine machine(sim::Machine::Config{spec.num_spes});
  port::SPEInterface iface(*k.module);
  std::unique_ptr<port::SPEInterface> fault_if;
  if (spec.fault_kind >= 0) {
    fault_if = std::make_unique<port::SPEInterface>(fault_module());
  }

  JsonWriter digest;
  digest.begin_array();
  int opcode = static_cast<int>(
      spec.use_naive ? kernels::SPU_Run_Naive : kernels::SPU_Run);
  for (std::size_t i = 0; i < in.pixels.size(); ++i) {
    const img::RgbImage& pixels = in.pixels[i];
    cellport::AlignedBuffer<float> out(
        cellport::round_up(static_cast<std::size_t>(k.dim), 8));
    port::WrappedMessage<kernels::ImageMsg> msg;
    msg->pixels_ea = reinterpret_cast<std::uint64_t>(pixels.data());
    msg->width = pixels.width();
    msg->height = pixels.height();
    msg->stride = pixels.stride();
    msg->buffering = spec.buffering;
    msg->block_rows = spec.block_rows;
    msg->out_ea = reinterpret_cast<std::uint64_t>(out.data());
    msg->out_count = k.dim;

    double t0 = machine.ppe().now_ns();
    iface.SendAndWait(opcode, msg.ea());
    if (!(machine.ppe().now_ns() > t0)) {
      return fail("timing.progress",
                  "kernel call did not advance simulated time");
    }

    features::FeatureVector cell;
    cell.name = k.name;
    cell.values.assign(out.data(), out.data() + k.dim);
    features::FeatureVector ref = k.reference(pixels, nullptr);
    std::string err = k.compare(cell, ref);
    if (!err.empty()) {
      return fail(std::string("oracle.") + k.name,
                  err + " (image " + std::to_string(i) + ", " +
                      std::to_string(pixels.width()) + "x" +
                      std::to_string(pixels.height()) + ")");
    }
    for (float v : cell.values) digest.value(static_cast<double>(v));
  }
  digest.end_array();
  if (canonical != nullptr) *canonical = digest.str();

  if (fault_if != nullptr) {
    RunOutcome pre = check_clean(machine);
    if (!pre.ok) return pre;
    std::string err = run_fault_probe(*fault_if, spec.fault_kind);
    if (!err.empty()) return fail("fault.contract", err);
  }
  return check_clean(machine);
}

// ---- engine modes ----

marvel::Scenario engine_scenario(Mode mode) {
  switch (mode) {
    case Mode::kEngineSingle: return marvel::Scenario::kSingleSPE;
    case Mode::kEngineMulti: return marvel::Scenario::kMultiSPE;
    case Mode::kEngineMulti2: return marvel::Scenario::kMultiSPE2;
    default:
      throw cellport::ConfigError("not an engine mode");
  }
}

/// Simulated-time per-call deadline for guarded scenario runs: far above
/// any legitimate kernel time on the generator's image sizes, far below
/// the kNeverNs stamp a hung completion carries.
constexpr sim::SimTime kGuardDeadlineNs = 500e6;  // 500 ms simulated

/// Translates a scenario's scheduled fault into the sim layer's
/// injection knobs.
sim::FaultInjection sched_injection(const ScenarioSpec& spec) {
  sim::FaultInjection f;
  switch (spec.sched_fault) {
    case kSchedHangTransient:
      f.hang_after = spec.sched_at;
      f.hang_sticky = false;
      break;
    case kSchedHangPersistent:
      f.hang_after = spec.sched_at;
      f.hang_sticky = true;
      f.clears_on_restart = false;
      break;
    case kSchedSlow:
      f.slow_after = spec.sched_at;
      f.slow_ns = 4 * kGuardDeadlineNs;
      break;
    default:
      f.dma_error_after = spec.sched_at;
      break;
  }
  return f;
}

RunOutcome run_engine(const ScenarioSpec& spec, const RunConfig& cfg,
                      std::string* canonical) {
  Inputs in = make_inputs(spec, /*through_codec=*/true);
  // The sharded rider replaces the mode's static schedule wholesale:
  // same machine, same images, same oracle — different SPE plan.
  marvel::Scenario scen = spec.sharded ? marvel::Scenario::kSharded
                                       : engine_scenario(spec.mode);

  guard::GuardPolicy policy;
  if (spec.guarded) {
    policy.enabled = true;
    policy.retry.deadline_ns = kGuardDeadlineNs;
  }

  sim::Machine machine(sim::Machine::Config{spec.num_spes});
  marvel::CellEngine engine(
      machine, cfg.library_path, scen,
      static_cast<kernels::BufferingDepth>(spec.buffering), spec.use_naive,
      policy);
  engine.set_feed(spec.feed);
  engine.set_fused(spec.fused);
  engine.set_balanced(spec.balanced);
  if (spec.cache_kb > 0) {
    engine.set_cache(static_cast<std::size_t>(spec.cache_kb) * 1024);
  }
  // The scheduled fault arms after engine construction so it fires
  // during analysis, not during the module-open handshakes.
  bool injected = false;
  if (spec.guarded && spec.sched_fault >= 0 &&
      spec.sched_spe < spec.num_spes) {
    machine.spe(spec.sched_spe).inject_fault(sched_injection(spec));
    injected = true;
  }
  marvel::ReferenceEngine ref(sim::cell_ppe(), cfg.library_path);

  // cellprobe rides every engine scenario. The oracle comparisons below
  // then run against *probed* output, so any probe that perturbed
  // results or timing would fail the equivalence checks, not just the
  // partition property.
  probe::Attribution attr;
  engine.set_probe(&attr);

  std::vector<marvel::AnalysisResult> cell;
  marvel::StreamStats stream_stats;
  double t0 = machine.ppe().now_ns();
  if (spec.stream_batch > 0) {
    cell = engine.analyze_stream(in.encoded, {spec.stream_batch},
                                 &stream_stats);
  } else if (spec.pipelined_batch && scen != marvel::Scenario::kSingleSPE) {
    cell = engine.analyze_batch_pipelined(in.encoded);
  } else {
    for (const auto& enc : in.encoded) cell.push_back(engine.analyze(enc));
  }
  double elapsed_ns = machine.ppe().now_ns() - t0;
  if (!(machine.ppe().now_ns() > t0)) {
    return fail("timing.progress",
                "engine run did not advance simulated time");
  }

  // Partition property: each request's exclusive per-phase spans
  // telescope to its elapsed time, so the aggregate covered time equals
  // the aggregate request time up to double rounding.
  if (attr.requests() == 0) {
    return fail("probe.coverage", "engine run emitted no request traces");
  }
  if (std::abs(attr.covered_ns() - attr.request_elapsed_ns()) >
      1e-6 * std::max(1.0, attr.request_elapsed_ns())) {
    return fail("probe.partition",
                "attribution covers " + std::to_string(attr.covered_ns()) +
                    " ns of " + std::to_string(attr.request_elapsed_ns()) +
                    " ns of request time");
  }
  if (attr.request_elapsed_ns() > elapsed_ns * (1 + 1e-9)) {
    return fail("probe.partition",
                "request time exceeds the run's elapsed time");
  }
  if (cell.size() != in.encoded.size()) {
    return fail("oracle.engine",
                "result count " + std::to_string(cell.size()) + " for " +
                    std::to_string(in.encoded.size()) + " images");
  }

  std::string digest;
  for (std::size_t i = 0; i < in.encoded.size(); ++i) {
    marvel::AnalysisResult expected = ref.analyze(in.encoded[i]);
    std::string err = compare_results(cell[i], expected);
    if (!err.empty()) {
      return fail("oracle.engine",
                  err + " (image " + std::to_string(i) + ")");
    }
    digest += canonical_result_json(cell[i]);
    digest += '\n';
  }
  if (canonical != nullptr) *canonical = digest;

  if (spec.fault_kind >= 0) {
    RunOutcome pre = check_clean(machine);
    if (!pre.ok) return pre;
    // The engine pinned SPEs 0-4 (0-7 for kMultiSPE2, which the
    // generator excludes from fault scenarios); the probe takes the
    // next free SPE and must not disturb the engine's results.
    port::SPEInterface fault_if(fault_module());
    std::string err = run_fault_probe(fault_if, spec.fault_kind);
    if (!err.empty()) return fail("fault.contract", err);
    marvel::AnalysisResult after = engine.analyze(in.encoded[0]);
    err = compare_results(after, ref.analyze(in.encoded[0]));
    if (!err.empty()) {
      return fail("fault.isolation",
                  "engine results changed after a spare-SPE fault: " + err);
    }
    cell.push_back(std::move(after));  // keep guard accounting exact
  }

  RunOutcome clean = check_clean(machine);
  if (!clean.ok) return clean;

  if (spec.guarded) {
    // Degradation accounting: what the results report must equal what
    // the runtime counted — a fallback that goes unreported (or a
    // phantom report) is exactly the silent-wrongness the guard exists
    // to rule out.
    std::size_t degraded_total = 0;
    for (const auto& r : cell) degraded_total += r.degraded.size();
    std::uint64_t fallbacks =
        machine.metrics().counter("guard.ppe_fallbacks").value();
    if (degraded_total != fallbacks) {
      return fail("guard.accounting",
                  "results report " + std::to_string(degraded_total) +
                      " degraded stage(s) but guard.ppe_fallbacks is " +
                      std::to_string(fallbacks));
    }
    std::uint64_t timeouts =
        machine.metrics().counter("guard.timeouts").value();
    std::uint64_t retries =
        machine.metrics().counter("guard.retries").value();
    if (injected) {
      // A streamed run may resolve the fault at the ring layer (batch
      // timeout / per-request re-run) before the guard's own counters
      // see it; any of the recovery layers counts as a trace. A `slow`
      // fault can also be *absorbed*: the streamed deadline budget is
      // per-request-deadline x batch-size, so a single 4x-deadline stall
      // inside a large enough batch completes legally — in which case
      // the stall must be visible in the run's simulated elapsed time.
      std::size_t stream_recoveries = stream_stats.request_retries +
                                      stream_stats.batch_timeouts +
                                      stream_stats.fallbacks;
      bool slow_absorbed = spec.stream_batch > 0 &&
                           spec.sched_fault == kSchedSlow &&
                           elapsed_ns >= 4 * kGuardDeadlineNs;
      // A schedule can also go off the end of the run without firing:
      // a streamed window retires a whole batch of requests behind one
      // doorbell, so the faulted SPE may see fewer completions than the
      // scheduled trigger index. No fired fault, no required trace.
      bool fired =
          machine.spe(spec.sched_spe).fault_injection_fired();
      if (fired &&
          timeouts + retries + fallbacks + stream_recoveries == 0 &&
          !slow_absorbed) {
        return fail("guard.not-exercised",
                    std::string("scheduled fault '") +
                        sched_fault_name(spec.sched_fault) + "' on spe" +
                        std::to_string(spec.sched_spe) +
                        " left no trace in the guard counters");
      }
    } else {
      if (degraded_total != 0) {
        return fail("guard.spurious-degrade",
                    "fault-free guarded run degraded " +
                        std::to_string(degraded_total) + " stage(s)");
      }
      // Transparency: a fault-free guarded run must produce the exact
      // results of an unguarded run, within 2% on simulated time (by
      // construction the deadline read charges identically, so this
      // normally holds with equality).
      sim::Machine m2(sim::Machine::Config{spec.num_spes});
      marvel::CellEngine plain(
          m2, cfg.library_path, scen,
          static_cast<kernels::BufferingDepth>(spec.buffering),
          spec.use_naive);
      plain.set_feed(spec.feed);
      plain.set_fused(spec.fused);
      plain.set_balanced(spec.balanced);
      if (spec.cache_kb > 0) {
        plain.set_cache(static_cast<std::size_t>(spec.cache_kb) * 1024);
      }
      std::vector<marvel::AnalysisResult> cell2;
      double u0 = m2.ppe().now_ns();
      if (spec.stream_batch > 0) {
        // Guarded streams retire windows sequentially; force the same
        // schedule on the unguarded engine so the 2% bound compares the
        // guard's overhead, not the pipelining it forgoes.
        cell2 = plain.analyze_stream(
            in.encoded, {spec.stream_batch, /*sequential=*/true}, nullptr);
      } else if (spec.pipelined_batch && scen != marvel::Scenario::kSingleSPE) {
        cell2 = plain.analyze_batch_pipelined(in.encoded);
      } else {
        for (const auto& enc : in.encoded) {
          cell2.push_back(plain.analyze(enc));
        }
      }
      double unguarded_ns = m2.ppe().now_ns() - u0;
      for (std::size_t i = 0; i < in.encoded.size(); ++i) {
        if (canonical_result_json(cell[i]) !=
            canonical_result_json(cell2[i])) {
          return fail("guard.transparency",
                      "guarded result differs from unguarded (image " +
                          std::to_string(i) + ")");
        }
      }
      if (!(elapsed_ns <= unguarded_ns * 1.02)) {
        return fail("guard.overhead",
                    "guarded run took " + std::to_string(elapsed_ns) +
                        " ns vs unguarded " +
                        std::to_string(unguarded_ns) + " ns (> 2%)");
      }
      sim::InvariantChannel::instance().drain();  // probe machine's dust
    }
  }

  if (spec.scaling_probe) {
    auto per_image_ns = [&](marvel::Scenario s) {
      sim::Machine m(sim::Machine::Config{8});
      marvel::CellEngine e(m, cfg.library_path, s,
                           static_cast<kernels::BufferingDepth>(
                               spec.buffering),
                           spec.use_naive);
      e.set_feed(spec.feed);
      e.set_fused(spec.fused);
      e.set_balanced(spec.balanced);
      if (spec.cache_kb > 0) {
        e.set_cache(static_cast<std::size_t>(spec.cache_kb) * 1024);
      }
      double probe_t0 = m.ppe().now_ns();
      e.analyze(in.encoded[0]);
      return m.ppe().now_ns() - probe_t0;
    };
    double single = per_image_ns(marvel::Scenario::kSingleSPE);
    double multi = per_image_ns(marvel::Scenario::kMultiSPE);
    if (!(multi <= single)) {
      return fail("scaling.multi-not-slower",
                  "kMultiSPE " + std::to_string(multi) +
                      " ns > kSingleSPE " + std::to_string(single) + " ns");
    }
    if (spec.mode == Mode::kEngineMulti2) {
      double multi2 = per_image_ns(marvel::Scenario::kMultiSPE2);
      if (!(multi2 <= multi * 1.02)) {
        return fail("scaling.multi2-regression",
                    "kMultiSPE2 " + std::to_string(multi2) +
                        " ns > 1.02 * kMultiSPE " + std::to_string(multi) +
                        " ns");
      }
    }
    sim::InvariantChannel::instance().drain();  // probe machines' dust
  }
  return RunOutcome{};
}

// ---- cellserve mode ----

/// Far deadline for the serve matrix: above any legitimate service time
/// including guard recovery (a `slow` fault stalls 4x the 500 ms guard
/// deadline), so a miss under it is a real scheduling bug. The tight
/// deadline sits below any service time, so misses are expected and the
/// property set checks their accounting instead of their absence.
constexpr sim::SimTime kServeFarDeadlineNs = 20'000'000'000;  // 20 s
constexpr sim::SimTime kServeTightDeadlineNs = 2'000'000;     // 2 ms

RunOutcome run_serve(const ScenarioSpec& spec, const RunConfig& cfg) {
  Inputs in = make_inputs(spec, /*through_codec=*/true);
  marvel::Scenario scen = spec.sharded ? marvel::Scenario::kSharded
                                       : engine_scenario(spec.mode);
  guard::GuardPolicy policy;
  if (spec.guarded) {
    policy.enabled = true;
    policy.retry.deadline_ns = kGuardDeadlineNs;
  }
  sim::Machine machine(sim::Machine::Config{spec.num_spes});
  marvel::CellEngine engine(
      machine, cfg.library_path, scen,
      static_cast<kernels::BufferingDepth>(spec.buffering), spec.use_naive,
      policy);
  engine.set_feed(spec.feed);
  engine.set_fused(spec.fused);
  engine.set_balanced(spec.balanced);
  if (spec.cache_kb > 0) {
    engine.set_cache(static_cast<std::size_t>(spec.cache_kb) * 1024);
  }
  if (spec.guarded && spec.sched_fault >= 0 &&
      spec.sched_spe < spec.num_spes) {
    machine.spe(spec.sched_spe).inject_fault(sched_injection(spec));
  }
  marvel::ReferenceEngine ref(sim::cell_ppe(), cfg.library_path);

  serve::ServeConfig scfg;
  for (int t = 0; t < spec.serve_tenants; ++t) {
    serve::TenantConfig tc;
    tc.name = "t" + std::to_string(t);
    tc.weight = 1 + t % 2;
    tc.queue_cap = 4;  // small enough that a lopsided burst can reject
    scfg.tenants.push_back(tc);
  }
  scfg.batch = spec.serve_batch;
  scfg.cycle_windows = 1;
  scfg.global_budget = static_cast<std::size_t>(spec.serve_budget);
  scfg.default_deadline_ns =
      spec.serve_tight ? kServeTightDeadlineNs : kServeFarDeadlineNs;

  // One request per image, all arriving as a single burst (maximum
  // contention for the budget). Tenant and priority come from a
  // decorrelated sub-stream drawn per index, so shrinking the corpus
  // keeps the surviving requests' assignments.
  Rng rng(spec.seed ^ 0x5e57e11aull);
  std::vector<serve::ServeRequest> requests;
  for (const auto& enc : in.encoded) {
    serve::ServeRequest r;
    r.tenant = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(spec.serve_tenants)));
    r.priority = static_cast<serve::Priority>(rng.next_below(3));
    r.image = enc;
    requests.push_back(r);
  }

  serve::ServeBroker broker(engine, scfg);
  std::vector<serve::ServeResponse> rs = broker.run(requests);
  if (rs.size() != requests.size()) {
    return fail("serve.responses",
                "broker returned " + std::to_string(rs.size()) +
                    " responses for " + std::to_string(requests.size()) +
                    " requests");
  }

  // Property (c): every request terminates in exactly one terminal
  // status and the serve.* accounting agrees — stats vs responses vs
  // metric counters, globally and per tenant.
  const serve::ServeStats& st = broker.stats();
  std::uint64_t ok = 0, degraded = 0, shed = 0, missed = 0, rejected = 0;
  for (const auto& r : rs) {
    switch (r.status) {
      case serve::ServeStatus::kOk: ++ok; break;
      case serve::ServeStatus::kDegraded: ++degraded; break;
      case serve::ServeStatus::kShed: ++shed; break;
      case serve::ServeStatus::kDeadlineMissed: ++missed; break;
      case serve::ServeStatus::kRejected: ++rejected; break;
      case serve::ServeStatus::kQueued:
        return fail("serve.terminal",
                    "a response is still kQueued after run()");
    }
  }
  auto counter_of = [&](const std::string& name) {
    const auto& counters = machine.metrics().counters();
    auto it = counters.find(name);
    return it == counters.end() ? std::uint64_t{0} : it->second->value();
  };
  if (st.admitted != st.ok + st.degraded + st.shed + st.deadline_missed ||
      st.admitted + st.rejected != rs.size()) {
    return fail("serve.accounting",
                "admitted " + std::to_string(st.admitted) + " != ok " +
                    std::to_string(st.ok) + " + degraded " +
                    std::to_string(st.degraded) + " + shed " +
                    std::to_string(st.shed) + " + missed " +
                    std::to_string(st.deadline_missed) + " (rejected " +
                    std::to_string(st.rejected) + ", requests " +
                    std::to_string(rs.size()) + ")");
  }
  if (st.ok != ok || st.degraded != degraded || st.shed != shed ||
      st.deadline_missed != missed || st.rejected != rejected) {
    return fail("serve.accounting",
                "stats disagree with the response statuses");
  }
  if (counter_of("serve.admitted") != st.admitted ||
      counter_of("serve.ok") != st.ok ||
      counter_of("serve.degraded") != st.degraded ||
      counter_of("serve.shed") != st.shed ||
      counter_of("serve.deadline_missed") != st.deadline_missed ||
      counter_of("serve.rejected") != st.rejected) {
    return fail("serve.accounting",
                "serve.* counters disagree with broker stats");
  }
  std::uint64_t tenant_admitted = 0;
  for (std::size_t t = 0; t < st.tenants.size(); ++t) {
    const serve::TenantStats& ts = st.tenants[t];
    if (ts.admitted != ts.ok + ts.degraded + ts.shed + ts.deadline_missed) {
      return fail("serve.accounting",
                  "tenant " + std::to_string(t) +
                      " admitted != sum of terminal statuses");
    }
    const std::string p = "serve.t" + std::to_string(t) + ".";
    if (counter_of(p + "admitted") != ts.admitted ||
        counter_of(p + "rejected") != ts.rejected ||
        counter_of(p + "shed") != ts.shed) {
      return fail("serve.accounting",
                  "serve.t" + std::to_string(t) +
                      ".* counters disagree with tenant stats");
    }
    tenant_admitted += ts.admitted;
  }
  if (tenant_admitted != st.admitted) {
    return fail("serve.accounting",
                "per-tenant admitted do not sum to the global count");
  }

  // Property (a): with far deadlines nothing may starve — every
  // admitted-and-not-shed request is served, and shedding is always
  // explicit (a shed response never carries a result).
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const auto& r = rs[i];
    if (r.status == serve::ServeStatus::kShed && r.served) {
      return fail("serve.no-starvation",
                  "request " + std::to_string(i) +
                      " is both shed and served");
    }
    if (!spec.serve_tight) {
      if (r.status == serve::ServeStatus::kDeadlineMissed) {
        return fail("serve.no-starvation",
                    "request " + std::to_string(i) +
                        " missed a far (20 s) deadline");
      }
      if ((r.status == serve::ServeStatus::kOk ||
           r.status == serve::ServeStatus::kDegraded) &&
          !r.served) {
        return fail("serve.no-starvation",
                    "request " + std::to_string(i) +
                        " reports success without service");
      }
    }
  }

  // Property (b): tenant isolation — every served result is the
  // bit-exact (within the oracle's tolerances) prefix of the reference
  // result at its degrade level, no matter what faults or neighbours
  // the run carried.
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const auto& r = rs[i];
    if (!r.served) continue;
    marvel::AnalysisResult expected = ref.analyze(in.encoded[i]);
    const int clamp = broker.level_max_models(r.degrade_level);
    auto clip = [&](std::vector<double>* v) {
      if (clamp > 0 && v->size() > static_cast<std::size_t>(clamp)) {
        v->resize(static_cast<std::size_t>(clamp));
      }
    };
    clip(&expected.ch_detect.values);
    clip(&expected.cc_detect.values);
    clip(&expected.tx_detect.values);
    clip(&expected.eh_detect.values);
    std::string err = compare_results(r.result, expected);
    if (!err.empty()) {
      return fail("serve.isolation",
                  err + " (request " + std::to_string(i) + ", tenant " +
                      std::to_string(r.tenant) + ", level " +
                      std::to_string(r.degrade_level) + ")");
    }
    if (!spec.guarded) {
      // Unguarded runs may only carry the broker's own degrade records.
      for (const std::string& rec : r.result.degraded) {
        if (rec.rfind("serve:", 0) != 0) {
          return fail("serve.isolation",
                      "unguarded request " + std::to_string(i) +
                          " carries non-serve degrade record '" + rec +
                          "'");
        }
      }
    }
  }
  sim::InvariantChannel::instance().drain();  // reference engine's dust
  return check_clean(machine);
}

// ---- TaskPool mode ----

RunOutcome run_taskpool(const ScenarioSpec& spec, const RunConfig& cfg) {
  Inputs in = make_inputs(spec, /*through_codec=*/true);
  learn::MarvelModels models = learn::load_library(cfg.library_path);

  // Per-image task state, the bench_dynamic layout: four extraction
  // wrappers plus their dependent detection wrappers.
  struct Feature {
    port::KernelModule* module = nullptr;
    int dim = 0;
    const learn::ConceptModelSet* set = nullptr;
    port::WrappedMessage<kernels::ImageMsg> msg;
    port::WrappedMessage<kernels::DetectMsg> detect_msg;
    cellport::AlignedBuffer<float> out;
    cellport::AlignedBuffer<kernels::DetectModelDesc> descs;
    cellport::AlignedBuffer<double> scores;
  };
  struct ImageTasks {
    img::RgbImage pixels;
    std::vector<Feature> features;
  };
  const struct {
    port::KernelModule* module;
    int dim;
    const learn::ConceptModelSet* set;
  } config[4] = {
      {&kernels::ch_module(), features::kColorHistogramDim,
       &models.color_histogram},
      {&kernels::cc_module(), features::kColorCorrelogramDim,
       &models.color_correlogram},
      {&kernels::tx_module(), features::kTextureDim, &models.texture},
      {&kernels::eh_module(), features::kEdgeHistogramDim,
       &models.edge_histogram},
  };

  std::vector<ImageTasks> images(in.encoded.size());
  for (std::size_t i = 0; i < in.encoded.size(); ++i) {
    images[i].pixels = img::sic_decode(in.encoded[i]);
    images[i].features.resize(4);
    for (int f = 0; f < 4; ++f) {
      Feature& ft = images[i].features[static_cast<std::size_t>(f)];
      ft.module = config[f].module;
      ft.dim = config[f].dim;
      ft.set = config[f].set;
      ft.out = cellport::AlignedBuffer<float>(
          cellport::round_up(static_cast<std::size_t>(ft.dim), 8));
      ft.msg->pixels_ea =
          reinterpret_cast<std::uint64_t>(images[i].pixels.data());
      ft.msg->width = images[i].pixels.width();
      ft.msg->height = images[i].pixels.height();
      ft.msg->stride = images[i].pixels.stride();
      ft.msg->buffering = spec.buffering;
      ft.msg->block_rows = spec.block_rows;
      ft.msg->out_ea = reinterpret_cast<std::uint64_t>(ft.out.data());
      ft.msg->out_count = ft.dim;
      ft.descs = cellport::AlignedBuffer<kernels::DetectModelDesc>(
          ft.set->models.size());
      for (std::size_t m = 0; m < ft.set->models.size(); ++m) {
        const learn::SvmModel& model = ft.set->models[m];
        ft.descs[m].sv_ea =
            reinterpret_cast<std::uint64_t>(model.sv_data());
        ft.descs[m].coef_ea =
            reinterpret_cast<std::uint64_t>(model.coef().data());
        ft.descs[m].num_sv = model.num_sv();
        ft.descs[m].sv_stride = model.sv_stride();
        ft.descs[m].gamma = model.gamma();
        ft.descs[m].rho = model.rho();
        ft.descs[m].kernel_type = static_cast<std::int32_t>(model.kernel());
      }
      ft.scores = cellport::AlignedBuffer<double>(
          cellport::round_up(ft.set->models.size(), 2));
      ft.detect_msg->feature_ea =
          reinterpret_cast<std::uint64_t>(ft.out.data());
      ft.detect_msg->dim = ft.dim;
      ft.detect_msg->num_models =
          static_cast<std::int32_t>(ft.set->models.size());
      ft.detect_msg->models_ea =
          reinterpret_cast<std::uint64_t>(ft.descs.data());
      ft.detect_msg->scores_ea =
          reinterpret_cast<std::uint64_t>(ft.scores.data());
      ft.detect_msg->buffering = spec.buffering;
    }
  }

  cellport::AlignedBuffer<std::uint8_t> fault_host(1024);
  port::WrappedMessage<FaultMsg> fault_msg;
  fault_msg->ea = reinterpret_cast<std::uint64_t>(fault_host.data());
  if (spec.fault_kind >= 0) fault_msg->which = spec.fault_kind;

  auto run_pool = [&](int workers, port::TaskPool::Stats* stats,
                      bool inject_fault) -> std::string {
    sim::Machine machine(sim::Machine::Config{spec.num_spes});
    port::TaskPool pool(machine, workers);
    std::vector<port::TaskPool::TaskId> all;
    port::TaskPool::TaskId fault_id = 0;
    bool have_fault = false;
    for (auto& image : images) {
      for (auto& ft : image.features) {
        auto extract =
            pool.submit(*ft.module, kernels::SPU_Run, ft.msg.ea());
        auto detect = pool.submit(kernels::cd_module(), kernels::SPU_Run,
                                  ft.detect_msg.ea(), {extract});
        all.push_back(extract);
        all.push_back(detect);
      }
      if (inject_fault && !have_fault) {
        fault_id = pool.submit(fault_module(), 1, fault_msg.ea());
        have_fault = true;
      }
    }
    pool.wait_all();
    *stats = pool.stats();

    std::size_t expected =
        all.size() + static_cast<std::size_t>(have_fault);
    if (stats->tasks_run != expected) {
      return "tasks_run " + std::to_string(stats->tasks_run) + " != " +
             std::to_string(expected) + " submitted";
    }
    if (stats->worker_busy_ns.size() !=
        static_cast<std::size_t>(workers)) {
      return "worker_busy_ns has " +
             std::to_string(stats->worker_busy_ns.size()) + " entries for " +
             std::to_string(workers) + " workers";
    }
    if (!(stats->makespan_ns > 0)) return "makespan is not positive";
    if (stats->faults != static_cast<std::size_t>(have_fault)) {
      return "stats.faults " + std::to_string(stats->faults) +
             ", expected " + std::to_string(have_fault ? 1 : 0);
    }
    for (port::TaskPool::TaskId id : all) {
      if (pool.task_failed(id)) {
        return "healthy task " + std::to_string(id) +
               " reported failed: " + pool.task_error(id);
      }
    }
    if (have_fault) {
      if (!pool.task_failed(fault_id)) {
        return "fault task did not report failure";
      }
      if (pool.task_error(fault_id).empty()) {
        return "fault task has an empty error message";
      }
      auto violations = sim::InvariantChannel::instance().drain();
      const char* rule = fault_kind_rule(spec.fault_kind);
      bool found = false;
      for (const auto& v : violations) {
        if (v.rule == rule) found = true;
      }
      if (!found) {
        return std::string("worker fault '") +
               fault_kind_name(spec.fault_kind) +
               "' was not reported to the InvariantChannel";
      }
    }
    RunOutcome clean = check_clean(machine);
    if (!clean.ok) return clean.property + ": " + clean.message;
    return "";
  };

  port::TaskPool::Stats stats;
  std::string err =
      run_pool(spec.pool_workers, &stats, spec.fault_kind >= 0);
  if (!err.empty()) return fail("taskpool.accounting", err);

  // The differential oracle: every extraction and detection the pool ran
  // must match the reference engine on the same encoded images.
  marvel::ReferenceEngine ref(sim::cell_ppe(), cfg.library_path);
  for (std::size_t i = 0; i < in.encoded.size(); ++i) {
    marvel::AnalysisResult expected = ref.analyze(in.encoded[i]);
    marvel::AnalysisResult got;
    auto take = [](const Feature& ft, features::FeatureVector* fv,
                   marvel::DetectionScores* sc) {
      fv->values.assign(ft.out.data(), ft.out.data() + ft.dim);
      sc->values.assign(ft.scores.data(),
                        ft.scores.data() + ft.set->models.size());
    };
    take(images[i].features[0], &got.color_histogram, &got.ch_detect);
    take(images[i].features[1], &got.color_correlogram, &got.cc_detect);
    take(images[i].features[2], &got.texture, &got.tx_detect);
    take(images[i].features[3], &got.edge_histogram, &got.eh_detect);
    std::string oracle_err = compare_results(got, expected);
    if (!oracle_err.empty()) {
      return fail("oracle.taskpool",
                  oracle_err + " (image " + std::to_string(i) + ")");
    }
  }
  sim::InvariantChannel::instance().drain();  // reference engine is clean

  // Parallel sanity: the W-worker makespan must not be pathologically
  // worse than the one-worker serial schedule of the same task graph
  // (Graham-style bound with a generous allowance for extra code
  // switches across workers).
  if (spec.pool_workers > 1 && spec.fault_kind < 0) {
    port::TaskPool::Stats serial;
    err = run_pool(1, &serial, false);
    if (!err.empty()) return fail("taskpool.accounting", err);
    double bound = serial.makespan_ns * 1.25 + 5e6;
    if (!(stats.makespan_ns <= bound)) {
      return fail("taskpool.scaling",
                  std::to_string(spec.pool_workers) + "-worker makespan " +
                      std::to_string(stats.makespan_ns) +
                      " ns exceeds serial bound " + std::to_string(bound) +
                      " ns");
    }
  }
  return RunOutcome{};
}

/// Installs a TraceSession for the duration of one run (exception-safe).
struct SessionGuard {
  trace::TraceSession session;
  SessionGuard() { session.install(); }
  ~SessionGuard() { session.uninstall(); }
};

RunOutcome run_once(const ScenarioSpec& spec, const RunConfig& cfg,
                    std::string* canonical) {
  switch (spec.mode) {
    case Mode::kKernelDirect:
      return run_kernel_direct(spec, cfg, canonical);
    case Mode::kEngineSingle:
    case Mode::kEngineMulti:
    case Mode::kEngineMulti2:
      return spec.serve ? run_serve(spec, cfg)
                        : run_engine(spec, cfg, canonical);
    case Mode::kTaskPool:
      return run_taskpool(spec, cfg);
  }
  throw cellport::ConfigError("unknown scenario mode");
}

}  // namespace

RunOutcome run_scenario(const ScenarioSpec& spec, const RunConfig& cfg) {
  sim::InvariantChannel::instance().drain();  // stale reports, if any
  try {
    if (spec.replay_twice && spec.mode != Mode::kTaskPool) {
      // Determinism property: the same scenario, run twice under fresh
      // trace sessions, must produce byte-identical canonical results
      // and byte-identical Chrome traces (simulated time is carried by
      // message timestamps, so host scheduling must not leak in).
      std::string canonical1, canonical2, trace1, trace2;
      {
        SessionGuard guard;
        RunOutcome out = run_once(spec, cfg, &canonical1);
        if (!out.ok) return out;
        trace1 = trace::chrome_trace_json(guard.session);
      }
      sim::InvariantChannel::instance().drain();
      {
        SessionGuard guard;
        RunOutcome out = run_once(spec, cfg, &canonical2);
        if (!out.ok) return out;
        trace2 = trace::chrome_trace_json(guard.session);
      }
      if (canonical1 != canonical2) {
        return fail("determinism.result",
                    "rerun produced different canonical results (" +
                        std::to_string(canonical1.size()) + " vs " +
                        std::to_string(canonical2.size()) + " bytes)");
      }
      if (trace1 != trace2) {
        return fail("determinism.trace",
                    "rerun produced different traces (" +
                        std::to_string(trace1.size()) + " vs " +
                        std::to_string(trace2.size()) + " bytes)");
      }
      return RunOutcome{};
    }
    return run_once(spec, cfg, nullptr);
  } catch (const cellport::Error& e) {
    return fail("exception", e.what());
  }
}

}  // namespace cellport::check
