// Scenario model for cellcheck: a fully-specified randomized test case
// derived deterministically from one 64-bit seed.
//
// A scenario fixes everything a run needs — machine shape, image corpus,
// execution mode (static engine scheduling vs TaskPool dynamic
// scheduling vs a single kernel driven directly), buffering knobs, an
// optional fault injection — so that (a) equal seeds always produce
// byte-identical runs and (b) a failing case can be serialized, shrunk,
// and replayed (`cellcheck --replay`). Generation is constraint-aware:
// it only produces configurations the engine accepts (e.g. the static
// engine's pinned layout needs 5 SPEs, kMultiSPE2 needs all 8, the
// texture kernel needs both image dimensions >= 16).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cellport::check {

/// Execution modes a scenario can exercise.
enum class Mode {
  kKernelDirect,   // one kernel via SPEInterface vs features::extract_*
  kEngineSingle,   // CellEngine kSingleSPE vs ReferenceEngine
  kEngineMulti,    // CellEngine kMultiSPE vs ReferenceEngine
  kEngineMulti2,   // CellEngine kMultiSPE2 vs ReferenceEngine
  kTaskPool,       // the MARVEL task graph on the dynamic scheduler
};

const char* mode_name(Mode m);
Mode mode_from_name(const std::string& name);

/// One synthetic input image. `kind` indexes img::SceneKind; `quality`
/// is the SIC codec quality (engine/TaskPool modes; kernel-direct feeds
/// raw pixels and ignores it).
struct ImageSpec {
  int kind = 0;
  std::uint64_t seed = 0;
  int width = 64;
  int height = 48;
  int quality = 85;
};

/// Kernel index for kKernelDirect scenarios.
inline constexpr int kKernelCh = 0;
inline constexpr int kKernelCc = 1;
inline constexpr int kKernelEh = 2;
inline constexpr int kKernelTx = 3;

/// Scheduled runtime-fault kinds for guarded scenarios (sched_fault).
/// Unlike check::kFault* (hardware-rule violations probed on a spare
/// SPE), these hit an SPE the workload actually uses, and the cellguard
/// runtime must recover: retry, restart, quarantine, or PPE fallback.
inline constexpr int kSchedHangTransient = 0;   // one completion never lands
inline constexpr int kSchedHangPersistent = 1;  // SPE never answers again
inline constexpr int kSchedSlow = 2;            // one DMA wait stalls huge
inline constexpr int kSchedDmaError = 3;        // one DMA command faults
inline constexpr int kNumSchedFaults = 4;

const char* sched_fault_name(int kind);

struct ScenarioSpec {
  std::uint64_t seed = 0;
  Mode mode = Mode::kKernelDirect;
  int num_spes = 8;        // machine shape (1..8)
  int pool_workers = 1;    // kTaskPool only
  int buffering = 2;       // DMA buffering depth 1..3
  int block_rows = 0;      // rows per DMA block (0 = kernel default)
  bool use_naive = false;  // pre-optimization kernel variants
  bool pipelined_batch = false;  // engine multi modes: Figure 4c batch
  int kernel = -1;         // kKernelDirect: kKernelCh..kKernelTx
  int fault_kind = -1;     // -1 none, else check::kFault* on a spare SPE
  /// Engine modes: run behind the cellguard runtime (GuardedInterface +
  /// PPE fallback). The guarded property: the run either matches the
  /// oracle or reports exactly which kernels degraded — never crashes,
  /// hangs, or goes silently wrong.
  bool guarded = false;
  int sched_fault = -1;  // -1 none, else kSched* on a pinned SPE
  int sched_spe = 0;     // which SPE the scheduled fault lands on
  int sched_at = 0;      // fire on the Nth completion / DMA op
  /// Engine modes: drive the corpus through CellEngine::analyze_stream
  /// (the cellstream command rings) with this window size instead of
  /// per-call analyze(). 0 = off. The streamed property: results are
  /// bit-exact with the reference oracle, same as every other engine run.
  int stream_batch = 0;
  /// Engine modes: swap the mode's static schedule for the cellshard
  /// kSharded plan over the same machine (the plan itself is derived
  /// deterministically from num_spes by shard::plan_shards, so it needs
  /// no separate serialization). The sharded property: results stay
  /// bit-exact with the reference oracle — including under scheduled
  /// faults, where a faulted shard retries or falls back alone and the
  /// reduction still reproduces the unsharded output.
  bool sharded = false;
  /// Engine modes: carry the corpus as P6 PPM streams (img::ppm_encode)
  /// and ingest them through the cellfeed SPE kernels — DMA-list gather
  /// of packed pixel rows, triple-buffered LS unpack, DMA-list scatter —
  /// instead of the PPE byte loop. The feed property: results stay
  /// bit-exact with the reference oracle (which decodes the same carrier
  /// bytes on the PPE), including under scheduled faults, where a failed
  /// feed lane retries behind the guard or degrades to a PPE row-range
  /// fallback reported as "feed:ingest".
  bool feed = false;
  /// Engine modes: replace the per-feature extraction schedule with the
  /// cellfuse single-pass fused lanes (CellEngine::set_fused) — one
  /// SPU_Run_Fused invocation per lane emits all four raw-partial
  /// layouts, reduced on the PPE with the cellshard merges. The fused
  /// property: results stay bit-exact with the reference oracle,
  /// including under scheduled faults, where an exhausted lane degrades
  /// to the PPE mirror partials reported as "fuse:<feature>" (all four
  /// features of that lane). Skipped when any corpus image is below the
  /// 16x16 wavelet floor — fused extraction always carries the texture.
  bool fused = false;
  /// Engine modes: swap the fused lanes' static row split for the
  /// cellbalance steal-driven task queue (CellEngine::set_balanced) —
  /// tile-aligned descriptors pulled by whichever lane finishes first.
  /// The balanced property: results stay bit-exact with the reference
  /// oracle whatever the steal order, including under scheduled faults
  /// (a quarantined lane's tasks migrate to live lanes; an exhausted
  /// task degrades to the PPE mirror like a fused lane would). Same
  /// 16x16 floor as the fused rider — balanced dispatch rides the fused
  /// kernel.
  bool balanced = false;
  /// Engine modes: arm the engine's content-addressed feature cache
  /// with this byte budget in KiB (CellEngine::set_cache; 0 = off). The
  /// cache property: a hit is bit-identical to the cold run the oracle
  /// models, so repeated corpus images change nothing the differential
  /// check can see.
  int cache_kb = 0;
  /// Engine modes: drive the corpus through the cellserve ServeBroker
  /// (one request per image, tenants/priorities derived from the seed)
  /// instead of per-call analyze(). The serve properties: every admitted
  /// request terminates in exactly one of {ok, degraded, shed,
  /// deadline_missed} with matching serve.* accounting; no tenant
  /// starves (with far deadlines, every admitted-and-not-shed request is
  /// served); and every served result is the bit-exact prefix of the
  /// reference oracle at its degrade level — including under scheduled
  /// guard faults, whose recovery stays scoped to the owning request.
  bool serve = false;
  int serve_tenants = 1;  // 1..3 tenants sharing the broker
  int serve_budget = 8;   // ServeConfig::global_budget
  int serve_batch = 2;    // ServeConfig::batch (cycle_windows stays 1)
  /// Tight per-request deadlines (2 ms): deadline misses are expected
  /// and the property set drops no-starvation, keeping accounting and
  /// result-prefix checks.
  bool serve_tight = false;
  /// Re-run the whole scenario and require byte-identical results and
  /// traces (static modes only; TaskPool timing is host-order dependent).
  bool replay_twice = false;
  /// Engine modes: additionally measure per-image time under kSingleSPE
  /// vs kMultiSPE (vs kMultiSPE2) and require the parallel group never
  /// to be slower.
  bool scaling_probe = false;
  std::vector<ImageSpec> images;
};

/// Derives the full scenario for `seed`. Pure function of the seed.
ScenarioSpec generate_scenario(std::uint64_t seed);

/// Derives a guarded engine scenario for `seed` (the `--guard-matrix`
/// generator): always an engine mode behind cellguard, usually with a
/// scheduled fault on a pinned SPE. Pure function of the seed.
ScenarioSpec generate_guard_scenario(std::uint64_t seed);

/// Derives a multi-tenant broker scenario for `seed` (the
/// `--serve-matrix` generator): always an engine mode behind the
/// cellserve broker, with seed-derived tenant counts, budgets, and
/// deadline pressure, often composed with the guard/shard/feed riders.
/// Pure function of the seed.
ScenarioSpec generate_serve_scenario(std::uint64_t seed);

/// Derives a cellbalance scenario for `seed` (the `--balance-matrix`
/// generator): always an engine mode with steal-driven balanced
/// dispatch, usually with a content cache armed and a duplicate-heavy
/// corpus, often composed with the guard/stream/shard/feed/serve
/// riders. Pure function of the seed.
ScenarioSpec generate_balance_scenario(std::uint64_t seed);

/// Serializes a spec as a JSON object (deterministic byte output).
std::string spec_to_json(const ScenarioSpec& spec);

/// Parses spec_to_json output back; throws cellport::Error on bad input.
ScenarioSpec spec_from_json(const std::string& text);

}  // namespace cellport::check
