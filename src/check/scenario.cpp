#include "check/scenario.h"

#include <stdexcept>

#include "check/faults.h"
#include "support/error.h"
#include "support/json.h"
#include "support/rng.h"

namespace cellport::check {

namespace {

/// Minimum dims the texture extractor accepts (4-level Haar needs 2^4
/// pixels on each axis), and hence the floor for any scenario that runs
/// all four kernels.
constexpr int kMinTxDim = 16;

/// Scene kinds available to the generator (img::SceneKind count).
constexpr int kNumSceneKinds = 5;

int pick_quality(Rng& rng) {
  constexpr int kQualities[] = {60, 85, 95};
  return kQualities[rng.next_below(3)];
}

int pick_block_rows(Rng& rng) {
  // Mostly the kernel default; occasionally stress small/large blocks.
  constexpr int kChoices[] = {0, 0, 0, 1, 2, 5, 16};
  return kChoices[rng.next_below(7)];
}

/// A size with interesting row geometry. Odd widths produce rows whose
/// payload is not a 16-byte multiple (the stride still is — the property
/// the kernels' row DMA depends on).
ImageSpec pick_image(Rng& rng, bool allow_degenerate) {
  ImageSpec img;
  img.kind = static_cast<int>(rng.next_below(kNumSceneKinds));
  img.seed = rng.next_u64();
  img.quality = pick_quality(rng);
  std::uint64_t shape = rng.next_below(100);
  if (allow_degenerate && shape < 20) {
    // Degenerate geometry: 1xN, Nx1, tiny squares.
    switch (rng.next_below(4)) {
      case 0: img.width = 1; img.height = 1; break;
      case 1:
        img.width = 1;
        img.height = 1 + static_cast<int>(rng.next_below(240));
        break;
      case 2:
        img.width = 1 + static_cast<int>(rng.next_below(352));
        img.height = 1;
        break;
      default:
        img.width = 2 + static_cast<int>(rng.next_below(14));
        img.height = 2 + static_cast<int>(rng.next_below(14));
        break;
    }
  } else if (shape < 45) {
    // Full MARVEL frame.
    img.width = 352;
    img.height = 240;
  } else {
    img.width = kMinTxDim + static_cast<int>(rng.next_below(113));
    img.height = kMinTxDim + static_cast<int>(rng.next_below(81));
    if (rng.next_below(2) == 0) img.width |= 1;  // non-16B-multiple rows
    if (rng.next_below(2) == 0) img.height |= 1;
  }
  return img;
}

/// Whether the corpus can take the cellfuse rider: fused extraction
/// always carries the 4-level wavelet texture, so every image must be at
/// least one Haar tile in both dimensions.
bool fits_fused(const ScenarioSpec& spec) {
  for (const auto& img : spec.images) {
    if (img.width < 16 || img.height < 16) return false;
  }
  return true;
}

}  // namespace

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kKernelDirect: return "kernel-direct";
    case Mode::kEngineSingle: return "engine-single";
    case Mode::kEngineMulti: return "engine-multi";
    case Mode::kEngineMulti2: return "engine-multi2";
    case Mode::kTaskPool: return "taskpool";
  }
  throw cellport::ConfigError("unknown mode");
}

const char* sched_fault_name(int kind) {
  switch (kind) {
    case kSchedHangTransient: return "hang-transient";
    case kSchedHangPersistent: return "hang-persistent";
    case kSchedSlow: return "slow";
    case kSchedDmaError: return "dma-error";
    default: return "none";
  }
}

Mode mode_from_name(const std::string& name) {
  for (Mode m : {Mode::kKernelDirect, Mode::kEngineSingle,
                 Mode::kEngineMulti, Mode::kEngineMulti2,
                 Mode::kTaskPool}) {
    if (name == mode_name(m)) return m;
  }
  throw cellport::ConfigError("unknown mode name '" + name + "'");
}

ScenarioSpec generate_scenario(std::uint64_t seed) {
  Rng rng(seed);
  ScenarioSpec spec;
  spec.seed = seed;

  std::uint64_t roll = rng.next_below(100);
  if (roll < 35) {
    spec.mode = Mode::kKernelDirect;
  } else if (roll < 50) {
    spec.mode = Mode::kEngineSingle;
  } else if (roll < 65) {
    spec.mode = Mode::kEngineMulti;
  } else if (roll < 75) {
    spec.mode = Mode::kEngineMulti2;
  } else {
    spec.mode = Mode::kTaskPool;
  }

  spec.buffering = 1 + static_cast<int>(rng.next_below(3));
  spec.block_rows = pick_block_rows(rng);

  // Machine shape, constrained by what each mode can place: the static
  // engine pins CH/CC/TX/EH/CD on SPEs 0-4 and kMultiSPE2 replicates
  // detection on 5-7.
  switch (spec.mode) {
    case Mode::kKernelDirect:
      spec.num_spes = 1 + static_cast<int>(rng.next_below(8));
      spec.kernel = static_cast<int>(rng.next_below(4));
      spec.use_naive =
          spec.kernel != kKernelTx && rng.next_below(4) == 0;
      break;
    case Mode::kEngineSingle:
    case Mode::kEngineMulti:
      spec.num_spes = 5 + static_cast<int>(rng.next_below(4));
      spec.use_naive = rng.next_below(100) < 15;
      break;
    case Mode::kEngineMulti2:
      spec.num_spes = 8;
      spec.use_naive = rng.next_below(100) < 15;
      break;
    case Mode::kTaskPool:
      spec.num_spes = 1 + static_cast<int>(rng.next_below(8));
      spec.pool_workers = 1 + static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(spec.num_spes)));
      break;
  }

  // Image corpus. Degenerate geometry is only reachable where every
  // kernel that will see the image accepts it: the texture extractor
  // (and hence every full-engine/TaskPool run) needs both dims >= 16.
  bool degenerate_ok =
      spec.mode == Mode::kKernelDirect && spec.kernel != kKernelTx;
  int num_images = 1 + static_cast<int>(rng.next_below(
                           spec.mode == Mode::kKernelDirect ? 3 : 2));
  for (int i = 0; i < num_images; ++i) {
    spec.images.push_back(pick_image(rng, degenerate_ok));
  }

  // Fault injection needs a spare SPE beyond what the workload pins:
  // the static engine leaves one only on 6+-SPE machines (and none in
  // kMultiSPE2, which pins all 8), kernel-direct needs a second SPE,
  // and TaskPool faults ride a worker, so any shape qualifies.
  bool fault_ok = false;
  switch (spec.mode) {
    case Mode::kKernelDirect: fault_ok = spec.num_spes >= 2; break;
    case Mode::kEngineSingle:
    case Mode::kEngineMulti: fault_ok = spec.num_spes >= 6; break;
    case Mode::kEngineMulti2: fault_ok = false; break;
    case Mode::kTaskPool: fault_ok = true; break;
  }
  if (fault_ok && rng.next_below(100) < 20) {
    spec.fault_kind = static_cast<int>(rng.next_below(kNumFaultKinds));
  }

  // Property riders. Replay determinism excludes TaskPool (its task ->
  // worker assignment follows host event arrival order); the scaling
  // probe compares engine scheduling scenarios, so it needs the 5-SPE
  // layouts and a frame big enough for kernel time to dwarf protocol
  // costs.
  bool is_static = spec.mode != Mode::kTaskPool;
  spec.replay_twice = is_static && rng.next_below(4) == 0;
  bool engine_mode = spec.mode == Mode::kEngineSingle ||
                     spec.mode == Mode::kEngineMulti ||
                     spec.mode == Mode::kEngineMulti2;
  if (spec.mode == Mode::kEngineMulti || spec.mode == Mode::kEngineMulti2) {
    spec.pipelined_batch = rng.next_below(100) < 40;
  }
  if (engine_mode && spec.fault_kind < 0 && rng.next_below(5) == 0) {
    spec.scaling_probe = true;
    spec.images[0].width = 176;
    spec.images[0].height = 120;
  }

  // cellguard rider (appended last so it never perturbs the draws
  // above): engine modes only, and not alongside the spare-SPE fault
  // probe (which wants the spare SPEs the guard uses as retry targets)
  // or the scaling probe (whose probe machines run unguarded).
  if (engine_mode && spec.fault_kind < 0 && !spec.scaling_probe &&
      rng.next_below(100) < 25) {
    spec.guarded = true;
    if (rng.next_below(100) < 70) {
      spec.sched_fault = static_cast<int>(rng.next_below(kNumSchedFaults));
      int pinned = spec.mode == Mode::kEngineMulti2 ? 8 : 5;
      spec.sched_spe = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(pinned)));
      spec.sched_at = static_cast<int>(
          rng.next_below(spec.images.size()));
    }
  }

  // cellstream rider (also appended last): engine modes sometimes stream
  // the corpus through the command rings instead of per-call analyze().
  // The oracle and every downstream property are unchanged; windows
  // larger than the corpus exercise the short-final-window path.
  if (engine_mode && rng.next_below(100) < 30) {
    spec.stream_batch = 1 + static_cast<int>(rng.next_below(4));
  }

  // cellshard rider (also appended last): ~30% of engine scenarios swap
  // the mode's static schedule for the kSharded plan over the same
  // machine (every engine shape has the planner's 5-SPE floor). The
  // differential oracle is unchanged — sharded results are bit-exact —
  // and scheduled guard faults compose (a faulted shard recovers alone).
  // The spare-SPE fault probe is excluded: the shard plan packs every
  // SPE, leaving no spare for the probe interface. So is the scaling
  // probe, which compares the unsharded schedules on its own machines.
  if (engine_mode && spec.fault_kind < 0 && !spec.scaling_probe &&
      rng.next_below(100) < 30) {
    spec.sharded = true;
  }

  // cellfeed rider (also appended last): ~30% of engine scenarios carry
  // the corpus as PPM streams ingested by the SPE feed kernels instead
  // of the PPE byte loop. Feed rows ride the interfaces the scenario
  // already scheduled (no extra SPEs), so it composes with every other
  // rider — guard faults, streaming, sharding, the spare-SPE fault
  // probe — and the differential oracle is unchanged.
  if (engine_mode && rng.next_below(100) < 30) {
    spec.feed = true;
  }

  // cellfuse rider (also appended last): ~30% of engine scenarios swap
  // the per-feature extraction for the single-pass fused lanes. Fused
  // lanes ride the interfaces the scenario already scheduled, so it
  // composes with every other rider; the differential oracle is
  // unchanged (fused results are bit-exact). Skipped when any corpus
  // image is below the 16x16 wavelet floor — fused extraction always
  // carries the texture, so the engine rejects smaller frames.
  if (engine_mode && fits_fused(spec) && rng.next_below(100) < 30) {
    spec.fused = true;
  }

  // cellbalance riders (also appended last): ~25% of engine scenarios
  // swap the fused lanes' static row split for the steal-driven task
  // queue (same 16x16 floor — balanced dispatch rides the fused
  // kernel), and ~25% independently arm the content cache with a small
  // budget so both the hit and the eviction paths see coverage.
  if (engine_mode && fits_fused(spec) && rng.next_below(100) < 25) {
    spec.balanced = true;
  }
  if (engine_mode && rng.next_below(100) < 25) {
    constexpr int kBudgetsKb[] = {2, 16, 64};
    spec.cache_kb = kBudgetsKb[rng.next_below(3)];
  }
  return spec;
}

ScenarioSpec generate_guard_scenario(std::uint64_t seed) {
  Rng rng(seed);
  ScenarioSpec spec;
  spec.seed = seed;
  switch (rng.next_below(3)) {
    case 0: spec.mode = Mode::kEngineSingle; break;
    case 1: spec.mode = Mode::kEngineMulti; break;
    default: spec.mode = Mode::kEngineMulti2; break;
  }
  spec.buffering = 1 + static_cast<int>(rng.next_below(3));
  spec.num_spes = spec.mode == Mode::kEngineMulti2
                      ? 8
                      : 5 + static_cast<int>(rng.next_below(4));
  spec.use_naive = rng.next_below(100) < 15;
  int num_images = 1 + static_cast<int>(rng.next_below(2));
  for (int i = 0; i < num_images; ++i) {
    spec.images.push_back(pick_image(rng, /*allow_degenerate=*/false));
  }
  if (spec.mode != Mode::kEngineSingle) {
    spec.pipelined_batch = rng.next_below(100) < 40;
  }
  spec.guarded = true;
  if (rng.next_below(100) < 85) {
    spec.sched_fault = static_cast<int>(rng.next_below(kNumSchedFaults));
    int pinned = spec.mode == Mode::kEngineMulti2 ? 8 : 5;
    spec.sched_spe = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(pinned)));
    spec.sched_at =
        static_cast<int>(rng.next_below(spec.images.size()));
  }
  spec.replay_twice = rng.next_below(4) == 0;
  // Guarded streaming: scheduled faults land mid-batch and the stream
  // engine must recover per-request (retry via the guard, then PPE
  // fallback) without disturbing the window's other images.
  if (rng.next_below(100) < 35) {
    spec.stream_batch = 1 + static_cast<int>(rng.next_below(4));
  }
  // Sharded fault matrix (appended last): the faulted shard must retry
  // or fall back alone and the PPE reduction must still be bit-exact.
  if (rng.next_below(100) < 30) {
    spec.sharded = true;
  }
  // Feed fault matrix (appended last): scheduled faults land on lanes
  // that also carry ingest rows, and the run must still match the
  // oracle bit-for-bit — retried rows via the guard, exhausted lanes as
  // "feed:ingest" PPE fallbacks.
  if (rng.next_below(100) < 30) {
    spec.feed = true;
  }
  // Fused fault matrix (appended last): a scheduled fault on a fused
  // lane takes all four features' partials with it, and the run must
  // still match the oracle bit-for-bit — retried lanes via the guard,
  // exhausted lanes as four "fuse:<feature>" PPE fallbacks.
  if (fits_fused(spec) && rng.next_below(100) < 30) {
    spec.fused = true;
  }
  // Balanced fault matrix (appended last): a scheduled fault lands
  // while lanes are stealing tasks, and the run must still match the
  // oracle bit-for-bit — the faulted lane's queue slot retries behind
  // the guard or degrades to the PPE mirror while the other lanes drain
  // the remaining descriptors.
  if (fits_fused(spec) && rng.next_below(100) < 25) {
    spec.balanced = true;
  }
  if (rng.next_below(100) < 20) {
    constexpr int kBudgetsKb[] = {2, 16, 64};
    spec.cache_kb = kBudgetsKb[rng.next_below(3)];
  }
  return spec;
}

ScenarioSpec generate_serve_scenario(std::uint64_t seed) {
  Rng rng(seed);
  ScenarioSpec spec;
  spec.seed = seed;
  switch (rng.next_below(3)) {
    case 0: spec.mode = Mode::kEngineSingle; break;
    case 1: spec.mode = Mode::kEngineMulti; break;
    default: spec.mode = Mode::kEngineMulti2; break;
  }
  spec.buffering = 1 + static_cast<int>(rng.next_below(3));
  spec.num_spes = spec.mode == Mode::kEngineMulti2
                      ? 8
                      : 5 + static_cast<int>(rng.next_below(4));
  spec.use_naive = rng.next_below(100) < 10;
  // One request per image: enough corpus for multi-tenant contention
  // without blowing per-scenario runtime.
  int num_images = 2 + static_cast<int>(rng.next_below(4));
  for (int i = 0; i < num_images; ++i) {
    spec.images.push_back(pick_image(rng, /*allow_degenerate=*/false));
  }
  spec.serve = true;
  spec.serve_tenants = 1 + static_cast<int>(rng.next_below(3));
  // Budgets from "everything queues" down to "most of the burst sheds",
  // so the degrade ladder and the shed path both see coverage.
  spec.serve_budget = 2 + static_cast<int>(rng.next_below(8));
  spec.serve_batch = 1 + static_cast<int>(rng.next_below(3));
  spec.serve_tight = rng.next_below(100) < 25;
  // cellguard rider: half the matrix serves behind the guard, usually
  // with a scheduled fault — tenant isolation under faults is the
  // property this matrix exists for.
  if (rng.next_below(100) < 50) {
    spec.guarded = true;
    if (rng.next_below(100) < 60) {
      spec.sched_fault = static_cast<int>(rng.next_below(kNumSchedFaults));
      int pinned = spec.mode == Mode::kEngineMulti2 ? 8 : 5;
      spec.sched_spe = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(pinned)));
      spec.sched_at =
          static_cast<int>(rng.next_below(spec.images.size()));
    }
  }
  // cellshard / cellfeed riders compose with the broker the same way
  // they compose with analyze_stream (the broker serves through
  // StreamEngine windows).
  if (rng.next_below(100) < 25) {
    spec.sharded = true;
  }
  if (rng.next_below(100) < 25) {
    spec.feed = true;
  }
  if (fits_fused(spec) && rng.next_below(100) < 25) {
    spec.fused = true;
  }
  // cellbalance riders (appended last): broker traffic over balanced
  // lanes, and the content cache the level-0 stream consults.
  if (fits_fused(spec) && rng.next_below(100) < 25) {
    spec.balanced = true;
  }
  if (rng.next_below(100) < 25) {
    constexpr int kBudgetsKb[] = {2, 16, 64};
    spec.cache_kb = kBudgetsKb[rng.next_below(3)];
  }
  return spec;
}

ScenarioSpec generate_balance_scenario(std::uint64_t seed) {
  Rng rng(seed);
  ScenarioSpec spec;
  spec.seed = seed;
  switch (rng.next_below(3)) {
    case 0: spec.mode = Mode::kEngineSingle; break;
    case 1: spec.mode = Mode::kEngineMulti; break;
    default: spec.mode = Mode::kEngineMulti2; break;
  }
  spec.buffering = 1 + static_cast<int>(rng.next_below(3));
  spec.num_spes = spec.mode == Mode::kEngineMulti2
                      ? 8
                      : 5 + static_cast<int>(rng.next_below(4));
  spec.use_naive = rng.next_below(100) < 10;
  // Mixed sizes stress the steal queue (a lane that drew a small image
  // finishes early and must steal); duplicated images stress the cache.
  int num_images = 2 + static_cast<int>(rng.next_below(4));
  for (int i = 0; i < num_images; ++i) {
    spec.images.push_back(pick_image(rng, /*allow_degenerate=*/false));
  }
  if (rng.next_below(100) < 40 && num_images >= 2) {
    // Duplicate one position onto an earlier one — the cache-hit path
    // must be bit-identical to the cold path the oracle models.
    const auto dst = 1 + rng.next_below(spec.images.size() - 1);
    const auto src = rng.next_below(dst);
    spec.images[dst] = spec.images[src];
  }
  spec.balanced = true;
  if (rng.next_below(100) < 60) {
    constexpr int kBudgetsKb[] = {2, 16, 64};
    spec.cache_kb = kBudgetsKb[rng.next_below(3)];
  }
  if (spec.mode != Mode::kEngineSingle) {
    spec.pipelined_batch = rng.next_below(100) < 40;
  }
  // cellguard rider: half the matrix steals around faults — the
  // quarantined-lane property is what this matrix exists for.
  if (rng.next_below(100) < 50) {
    spec.guarded = true;
    if (rng.next_below(100) < 60) {
      spec.sched_fault = static_cast<int>(rng.next_below(kNumSchedFaults));
      int pinned = spec.mode == Mode::kEngineMulti2 ? 8 : 5;
      spec.sched_spe = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(pinned)));
      spec.sched_at =
          static_cast<int>(rng.next_below(spec.images.size()));
    }
  }
  // Streamed balanced windows (cross-image stealing) and the other
  // riders compose the same way they do in the base matrix.
  if (rng.next_below(100) < 40) {
    spec.stream_batch = 1 + static_cast<int>(rng.next_below(4));
  }
  if (rng.next_below(100) < 25) {
    spec.sharded = true;
  }
  if (rng.next_below(100) < 25) {
    spec.feed = true;
  }
  if (rng.next_below(100) < 20) {
    spec.serve = true;
    spec.serve_tenants = 1 + static_cast<int>(rng.next_below(3));
    spec.serve_budget = 2 + static_cast<int>(rng.next_below(8));
    spec.serve_batch = 1 + static_cast<int>(rng.next_below(3));
    spec.serve_tight = rng.next_below(100) < 25;
  }
  spec.replay_twice = rng.next_below(4) == 0;
  return spec;
}

std::string spec_to_json(const ScenarioSpec& spec) {
  JsonWriter w;
  w.begin_object();
  // Seeds are full 64-bit values; JSON numbers only carry 53 bits of
  // integer precision through the parser, so they travel as strings.
  w.key("seed").value(std::to_string(spec.seed));
  w.key("mode").value(mode_name(spec.mode));
  w.key("num_spes").value(spec.num_spes);
  w.key("pool_workers").value(spec.pool_workers);
  w.key("buffering").value(spec.buffering);
  w.key("block_rows").value(spec.block_rows);
  w.key("use_naive").value(spec.use_naive);
  w.key("pipelined_batch").value(spec.pipelined_batch);
  w.key("stream_batch").value(spec.stream_batch);
  w.key("kernel").value(spec.kernel);
  w.key("fault_kind").value(spec.fault_kind);
  w.key("replay_twice").value(spec.replay_twice);
  w.key("scaling_probe").value(spec.scaling_probe);
  w.key("sharded").value(spec.sharded);
  w.key("feed").value(spec.feed);
  w.key("fused").value(spec.fused);
  w.key("balanced").value(spec.balanced);
  w.key("cache_kb").value(spec.cache_kb);
  w.key("guarded").value(spec.guarded);
  w.key("sched_fault").value(spec.sched_fault);
  w.key("sched_spe").value(spec.sched_spe);
  w.key("sched_at").value(spec.sched_at);
  w.key("serve").value(spec.serve);
  w.key("serve_tenants").value(spec.serve_tenants);
  w.key("serve_budget").value(spec.serve_budget);
  w.key("serve_batch").value(spec.serve_batch);
  w.key("serve_tight").value(spec.serve_tight);
  w.key("images").begin_array();
  for (const ImageSpec& img : spec.images) {
    w.begin_object();
    w.key("kind").value(img.kind);
    w.key("seed").value(std::to_string(img.seed));
    w.key("width").value(img.width);
    w.key("height").value(img.height);
    w.key("quality").value(img.quality);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

namespace {

double require_number(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    throw cellport::ConfigError("scenario JSON: missing number '" + key +
                                "'");
  }
  return v->number;
}

std::uint64_t require_seed(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    throw cellport::ConfigError("scenario JSON: missing seed string '" +
                                key + "'");
  }
  try {
    return std::stoull(v->string);
  } catch (const std::exception&) {
    throw cellport::ConfigError("scenario JSON: bad seed '" + v->string +
                                "'");
  }
}

bool require_bool(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kBool) {
    throw cellport::ConfigError("scenario JSON: missing bool '" + key +
                                "'");
  }
  return v->boolean;
}

// The guard fields postdate the format; old repro files omit them, so
// they parse with defaults instead of being required.
int optional_number(const JsonValue& obj, const std::string& key,
                    int fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    throw cellport::ConfigError("scenario JSON: bad number '" + key + "'");
  }
  return static_cast<int>(v->number);
}

bool optional_bool(const JsonValue& obj, const std::string& key,
                   bool fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->type != JsonValue::Type::kBool) {
    throw cellport::ConfigError("scenario JSON: bad bool '" + key + "'");
  }
  return v->boolean;
}

}  // namespace

ScenarioSpec spec_from_json(const std::string& text) {
  JsonValue doc = json_parse(text);
  if (!doc.is_object()) {
    throw cellport::ConfigError("scenario JSON: not an object");
  }
  ScenarioSpec spec;
  spec.seed = require_seed(doc, "seed");
  const JsonValue* mode = doc.find("mode");
  if (mode == nullptr || !mode->is_string()) {
    throw cellport::ConfigError("scenario JSON: missing 'mode'");
  }
  spec.mode = mode_from_name(mode->string);
  spec.num_spes = static_cast<int>(require_number(doc, "num_spes"));
  spec.pool_workers = static_cast<int>(require_number(doc, "pool_workers"));
  spec.buffering = static_cast<int>(require_number(doc, "buffering"));
  spec.block_rows = static_cast<int>(require_number(doc, "block_rows"));
  spec.use_naive = require_bool(doc, "use_naive");
  spec.pipelined_batch = require_bool(doc, "pipelined_batch");
  spec.kernel = static_cast<int>(require_number(doc, "kernel"));
  spec.fault_kind = static_cast<int>(require_number(doc, "fault_kind"));
  spec.replay_twice = require_bool(doc, "replay_twice");
  spec.scaling_probe = require_bool(doc, "scaling_probe");
  spec.stream_batch = optional_number(doc, "stream_batch", 0);
  spec.sharded = optional_bool(doc, "sharded", false);
  spec.feed = optional_bool(doc, "feed", false);
  spec.fused = optional_bool(doc, "fused", false);
  spec.balanced = optional_bool(doc, "balanced", false);
  spec.cache_kb = optional_number(doc, "cache_kb", 0);
  spec.guarded = optional_bool(doc, "guarded", false);
  spec.sched_fault = optional_number(doc, "sched_fault", -1);
  spec.sched_spe = optional_number(doc, "sched_spe", 0);
  spec.sched_at = optional_number(doc, "sched_at", 0);
  spec.serve = optional_bool(doc, "serve", false);
  spec.serve_tenants = optional_number(doc, "serve_tenants", 1);
  spec.serve_budget = optional_number(doc, "serve_budget", 8);
  spec.serve_batch = optional_number(doc, "serve_batch", 2);
  spec.serve_tight = optional_bool(doc, "serve_tight", false);
  const JsonValue* images = doc.find("images");
  if (images == nullptr || !images->is_array()) {
    throw cellport::ConfigError("scenario JSON: missing 'images'");
  }
  spec.images.clear();
  for (const JsonValue& entry : images->array) {
    ImageSpec img;
    img.kind = static_cast<int>(require_number(entry, "kind"));
    img.seed = require_seed(entry, "seed");
    img.width = static_cast<int>(require_number(entry, "width"));
    img.height = static_cast<int>(require_number(entry, "height"));
    img.quality = static_cast<int>(require_number(entry, "quality"));
    spec.images.push_back(img);
  }
  if (spec.images.empty()) {
    throw cellport::ConfigError("scenario JSON: empty image list");
  }
  return spec;
}

}  // namespace cellport::check
