// Shared fault-injection kernel for cellcheck scenarios and the gtest
// fault suite: one SPE-loadable module whose single entry point breaks a
// selected hardware rule. Each kind maps to a stable invariant rule id
// (sim/invariants.h) so callers can assert that the violation was both
// thrown *and* reported through the InvariantChannel.
#pragma once

#include <cstdint>

#include "port/dispatcher.h"

namespace cellport::check {

/// Wrapper message for the fault kernel: `ea` points at any 16-byte
/// aligned host buffer of >= 128 bytes; `which` selects the fault kind.
struct alignas(16) FaultMsg {
  std::uint64_t ea = 0;
  std::int32_t which = 0;
  std::int32_t pad = 0;
};

/// Fault kinds understood by the kernel (msg->which). Any other value is
/// a no-op returning 0, which lets tests confirm the machine survived.
inline constexpr int kFaultMisalignedDma = 0;
inline constexpr int kFaultLsOverflow = 1;
inline constexpr int kFaultOversizedTransfer = 2;
inline constexpr int kFaultBadTag = 3;
/// Issues a *legal* DMA and then a misaligned one while the first is
/// still in flight — the fault fires mid-transfer, leaving the MFC with
/// an unwaited command the dispatcher must survive.
inline constexpr int kFaultDuringDma = 4;
inline constexpr int kNumFaultKinds = 5;

/// The kernel module ("faulty", opcode 1 only).
port::KernelModule& fault_module();

/// Short stable name for a fault kind ("misaligned_dma", ...).
const char* fault_kind_name(int kind);

/// The invariant rule id the kind is expected to report
/// ("mfc.alignment", "ls.capacity.data", ...).
const char* fault_kind_rule(int kind);

}  // namespace cellport::check
