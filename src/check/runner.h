// Executes one scenario and checks every applicable property:
//
//   oracle.*        — Cell-side results match the reference implementation
//   invariants.*    — no simulator invariant fired (or, under fault
//                     injection, exactly the expected rule fired)
//   fault.*         — injected faults throw, are reported, and leave the
//                     machine usable
//   taskpool.*      — dynamic-scheduler accounting (task/fault counts,
//                     parallel makespan never pathologically worse than
//                     the one-worker serial run)
//   scaling.*       — more SPEs never slow a parallel group
//   determinism.*   — rerunning the scenario yields byte-identical
//                     canonical results and Chrome traces (static modes)
//   timing.*        — simulated clocks advance and stay monotone
//
// The first failed property aborts the scenario and is returned; "" in
// RunOutcome::property means every check passed.
#pragma once

#include <string>

#include "check/scenario.h"

namespace cellport::check {

struct RunConfig {
  /// Path to a saved model library (learn::save_library output).
  std::string library_path;
};

struct RunOutcome {
  bool ok = true;
  std::string property;  // stable id of the failed property ("" if ok)
  std::string message;   // one-line diagnostic
};

/// Runs `spec` against the differential oracle. Never throws for a
/// *detected* failure (that becomes an outcome); propagates only
/// infrastructure errors (e.g. an unreadable model library).
RunOutcome run_scenario(const ScenarioSpec& spec, const RunConfig& cfg);

}  // namespace cellport::check
