#include "check/oracle.h"

#include <cmath>
#include <cstddef>

#include "support/json.h"

namespace cellport::check {

namespace {

std::string size_mismatch(const std::string& name, std::size_t cell,
                          std::size_t ref) {
  return name + ": size " + std::to_string(cell) + " vs reference " +
         std::to_string(ref);
}

std::string compare_exact(const std::string& name,
                          const std::vector<float>& cell,
                          const std::vector<float>& ref) {
  if (cell.size() != ref.size()) {
    return size_mismatch(name, cell.size(), ref.size());
  }
  for (std::size_t i = 0; i < cell.size(); ++i) {
    if (cell[i] != ref[i]) {
      return name + "[" + std::to_string(i) + "]: " +
             std::to_string(cell[i]) + " != " + std::to_string(ref[i]);
    }
  }
  return "";
}

std::string compare_elementwise(const std::string& name,
                                const std::vector<float>& cell,
                                const std::vector<float>& ref,
                                double tol) {
  if (cell.size() != ref.size()) {
    return size_mismatch(name, cell.size(), ref.size());
  }
  for (std::size_t i = 0; i < cell.size(); ++i) {
    double d = std::abs(static_cast<double>(cell[i]) - ref[i]);
    if (!(d <= tol)) {
      return name + "[" + std::to_string(i) + "]: |" +
             std::to_string(cell[i]) + " - " + std::to_string(ref[i]) +
             "| = " + std::to_string(d) + " > " + std::to_string(tol);
    }
  }
  return "";
}

}  // namespace

std::string compare_ch(const features::FeatureVector& cell,
                       const features::FeatureVector& ref) {
  // The SPE color kernels mirror the reference's rounding exactly.
  return compare_exact("ch", cell.values, ref.values);
}

std::string compare_cc(const features::FeatureVector& cell,
                       const features::FeatureVector& ref) {
  return compare_exact("cc", cell.values, ref.values);
}

std::string compare_eh(const features::FeatureVector& cell,
                       const features::FeatureVector& ref) {
  if (cell.values.size() != ref.values.size()) {
    return size_mismatch("eh", cell.values.size(), ref.values.size());
  }
  double l1 = 0;
  for (std::size_t i = 0; i < cell.values.size(); ++i) {
    l1 += std::abs(static_cast<double>(cell.values[i]) - ref.values[i]);
  }
  if (!(l1 < 2e-3)) {
    return "eh: l1 distance " + std::to_string(l1) + " >= 2e-3";
  }
  return "";
}

std::string compare_tx(const features::FeatureVector& cell,
                       const features::FeatureVector& ref) {
  return compare_elementwise("tx", cell.values, ref.values, 1e-3);
}

std::string compare_detect(const std::string& name,
                           const std::vector<double>& cell,
                           const std::vector<double>& ref) {
  if (cell.size() != ref.size()) {
    return size_mismatch(name, cell.size(), ref.size());
  }
  for (std::size_t i = 0; i < cell.size(); ++i) {
    double d = std::abs(cell[i] - ref[i]);
    if (!(d <= 1e-2)) {
      return name + "[" + std::to_string(i) + "]: |" +
             std::to_string(cell[i]) + " - " + std::to_string(ref[i]) +
             "| = " + std::to_string(d) + " > 0.01";
    }
  }
  return "";
}

std::string compare_results(const marvel::AnalysisResult& cell,
                            const marvel::AnalysisResult& ref) {
  std::string err;
  if (!(err = compare_ch(cell.color_histogram, ref.color_histogram))
           .empty()) {
    return err;
  }
  if (!(err = compare_cc(cell.color_correlogram, ref.color_correlogram))
           .empty()) {
    return err;
  }
  if (!(err = compare_eh(cell.edge_histogram, ref.edge_histogram))
           .empty()) {
    return err;
  }
  if (!(err = compare_tx(cell.texture, ref.texture)).empty()) return err;
  if (!(err = compare_detect("ch_detect", cell.ch_detect.values,
                             ref.ch_detect.values))
           .empty()) {
    return err;
  }
  if (!(err = compare_detect("cc_detect", cell.cc_detect.values,
                             ref.cc_detect.values))
           .empty()) {
    return err;
  }
  if (!(err = compare_detect("tx_detect", cell.tx_detect.values,
                             ref.tx_detect.values))
           .empty()) {
    return err;
  }
  if (!(err = compare_detect("eh_detect", cell.eh_detect.values,
                             ref.eh_detect.values))
           .empty()) {
    return err;
  }
  return "";
}

std::string canonical_result_json(const marvel::AnalysisResult& r) {
  JsonWriter w;
  auto emit_floats = [&w](const char* key, const std::vector<float>& v) {
    w.key(key).begin_array();
    for (float x : v) w.value(static_cast<double>(x));
    w.end_array();
  };
  auto emit_doubles = [&w](const char* key, const std::vector<double>& v) {
    w.key(key).begin_array();
    for (double x : v) w.value(x);
    w.end_array();
  };
  w.begin_object();
  emit_floats("ch", r.color_histogram.values);
  emit_floats("cc", r.color_correlogram.values);
  emit_floats("tx", r.texture.values);
  emit_floats("eh", r.edge_histogram.values);
  emit_doubles("ch_detect", r.ch_detect.values);
  emit_doubles("cc_detect", r.cc_detect.values);
  emit_doubles("tx_detect", r.tx_detect.values);
  emit_doubles("eh_detect", r.eh_detect.values);
  w.end_object();
  return w.str();
}

}  // namespace cellport::check
