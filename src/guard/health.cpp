#include "guard/health.h"

namespace cellport::guard {

SpeHealth::SpeHealth(sim::Machine& machine, const RetryPolicy& policy)
    : machine_(machine),
      policy_(policy),
      state_(static_cast<std::size_t>(machine.num_spes())) {}

SpeHealth::Action SpeHealth::record_fault(int spe) {
  State& s = state_.at(static_cast<std::size_t>(spe));
  if (s.quarantined) return Action::kQuarantine;
  if (++s.consecutive < policy_.quarantine_after) return Action::kNone;
  if (!s.restarted) return Action::kRestart;
  s.quarantined = true;
  machine_.metrics().counter("guard.quarantined_spes").add(1);
  return Action::kQuarantine;
}

void SpeHealth::note_restarted(int spe) {
  State& s = state_.at(static_cast<std::size_t>(spe));
  s.restarted = true;
  s.consecutive = 0;
  machine_.metrics().counter("guard.restarts").add(1);
}

void SpeHealth::record_success(int spe) {
  state_.at(static_cast<std::size_t>(spe)).consecutive = 0;
}

int SpeHealth::quarantined_count() const {
  int n = 0;
  for (const State& s : state_) {
    if (s.quarantined) ++n;
  }
  return n;
}

int SpeHealth::pick(const std::vector<int>& candidates, int avoid) const {
  int fallback = -1;
  for (int c : candidates) {
    if (quarantined(c)) continue;
    if (c == avoid) {
      // Usable, but only when nothing else is: the point of retargeting
      // is to not hand the call straight back to the SPE that failed it.
      if (!machine_.spe_busy(c)) fallback = c;
      continue;
    }
    if (machine_.spe_busy(c)) continue;
    return c;
  }
  return fallback;
}

}  // namespace cellport::guard
