#include "guard/guarded_interface.h"

#include "sim/scalar_context.h"
#include "support/error.h"

namespace cellport::guard {

GuardedInterface::GuardedInterface(SpeHealth& health,
                                   const port::KernelModule& module,
                                   int primary_spe,
                                   std::vector<int> alternates)
    : health_(health), module_(&module) {
  candidates_.push_back(primary_spe);
  for (int a : alternates) candidates_.push_back(a);
  open_on(primary_spe);
}

GuardedInterface::~GuardedInterface() = default;

void GuardedInterface::open_on(int spe) {
  iface_ = std::make_unique<port::SPEInterface>(*module_, spe);
  spe_ = spe;
}

void GuardedInterface::close_current() {
  if (iface_ == nullptr) return;
  // Reclaim any abandoned completion first: the SPEInterface destructor
  // then shuts the (possibly hung) SPE down without ever syncing the PPE
  // clock to a kNeverNs timestamp.
  iface_->reclaim();
  iface_.reset();
  spe_ = -1;
}

void GuardedInterface::Send(int opcode, std::uint64_t ea) {
  pending_opcode_ = opcode;
  pending_ea_ = ea;
  pending_ = true;
  if (iface_ == nullptr) {
    int next = health_.pick(candidates_, -1);
    if (next < 0) return;  // surfaces as a failed Finish()
    open_on(next);
  }
  iface_->Send(opcode, ea);
}

GuardedInterface::Result GuardedInterface::Finish() {
  Result r;
  if (!pending_) {
    r.error = "GuardedInterface::Finish without a pending Send";
    return r;
  }
  const RetryPolicy& p = health_.policy();
  sim::ScalarContext& ppe = health_.machine().ppe();
  for (;;) {
    ++r.attempts;
    if (iface_ == nullptr) {
      r.error = "no healthy SPE available for kernel '" + module_->name() +
                "' (" + std::to_string(health_.quarantined_count()) +
                " quarantined)";
      pending_ = false;
      return r;
    }
    try {
      int value = 0;
      if (iface_->WaitFor(p.deadline_ns > 0 ? p.deadline_ns : -1, &value)) {
        health_.record_success(spe_);
        r.ok = true;
        r.value = value;
        r.error.clear();
        pending_ = false;
        return r;
      }
      health_.machine().metrics().counter("guard.timeouts").add(1);
      r.error = "kernel '" + module_->name() + "' on spe" +
                std::to_string(spe_) + " missed its deadline of " +
                std::to_string(p.deadline_ns) + " ns";
    } catch (const cellport::Error& e) {
      r.error = e.what();
    }
    if (!recover() || r.attempts >= p.max_attempts) {
      pending_ = false;
      return r;
    }
    // Bounded exponential backoff, charged to the PPE in simulated time.
    ppe.advance_ns(p.backoff_base_ns *
                   static_cast<double>(1u << (r.attempts - 1)));
    health_.machine().metrics().counter("guard.retries").add(1);
    iface_->Send(pending_opcode_, pending_ea_);
  }
}

sim::SimTime GuardedInterface::peek_ns() {
  if (!pending_) {
    throw cellport::ConfigError(
        "GuardedInterface::peek_ns without a pending Send");
  }
  // A send that found no healthy SPE has no completion to peek: it
  // surfaces as a failed Finish(), so schedule it like a hung lane.
  if (iface_ == nullptr) return sim::kNeverNs;
  return iface_->peek_completion_ns();
}

bool GuardedInterface::recover() {
  const int failed_spe = spe_;
  SpeHealth::Action action = health_.record_fault(failed_spe);
  close_current();
  if (action == SpeHealth::Action::kRestart) {
    // One fresh context before giving up on the SPE: clears a
    // restartable fault injection; a persistent fault strikes again on
    // the next visit and quarantines it.
    health_.machine().spe(failed_spe).fault_restart();
    health_.note_restarted(failed_spe);
  }
  int next = health_.pick(candidates_, failed_spe);
  if (next < 0) return false;
  open_on(next);
  return true;
}

}  // namespace cellport::guard
