// cellguard retry policy.
//
// Header-only on purpose: src/port's TaskPool consumes RetryPolicy while
// cp_guard links against cp_port, so the policy must not drag a link
// dependency in the other direction.
#pragma once

#include "sim/time.h"

namespace cellport::guard {

/// How a guarded call (GuardedInterface) or a guarded task (TaskPool)
/// responds to a fault or a missed deadline. All durations are simulated
/// nanoseconds; enforcement is deterministic and replayable.
struct RetryPolicy {
  /// Total tries per call/task, first attempt included.
  int max_attempts = 3;
  /// Exponential backoff charged to the PPE before retry k:
  /// backoff_base_ns * 2^(k-1).
  sim::SimTime backoff_base_ns = 100e3;  // 0.1 ms
  /// Per-attempt deadline; 0 disables deadlines (faults still retry,
  /// hangs are not detected).
  sim::SimTime deadline_ns = 0;
  /// Consecutive faults on one SPE before it is quarantined. Its context
  /// is restarted once when the threshold is first hit; a second strike
  /// quarantines it for good.
  int quarantine_after = 2;
};

/// CellEngine-level switch. Disabled (the default) leaves the engine's
/// legacy paths byte-for-byte untouched.
struct GuardPolicy {
  bool enabled = false;
  RetryPolicy retry;
};

}  // namespace cellport::guard
