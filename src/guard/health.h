// Per-SPE health board: consecutive-fault tracking, one-shot restart,
// and quarantine. Shared by every GuardedInterface on a machine so the
// picture of which SPEs are trustworthy is global, not per-call-site.
#pragma once

#include <vector>

#include "guard/policy.h"
#include "sim/machine.h"

namespace cellport::guard {

class SpeHealth {
 public:
  /// What the caller must do after recording a fault.
  enum class Action {
    kNone,       // below the quarantine threshold; plain retry
    kRestart,    // threshold hit for the first time: restart the context
    kQuarantine  // second strike: the SPE is out for good
  };

  SpeHealth(sim::Machine& machine, const RetryPolicy& policy);

  /// Records a fault on `spe` and decides its fate. On kQuarantine the
  /// SPE is marked and the machine's guard.quarantined_spes counter
  /// bumps; the *caller* performs the restart on kRestart (it owns the
  /// interface) and then calls note_restarted().
  Action record_fault(int spe);
  void note_restarted(int spe);
  void record_success(int spe);

  bool quarantined(int spe) const {
    return state_.at(static_cast<std::size_t>(spe)).quarantined;
  }
  int quarantined_count() const;

  /// Best retry destination among `candidates`: not quarantined, not
  /// running someone else's program, preferring any SPE other than
  /// `avoid` (the one that just failed). Falls back to `avoid` itself
  /// when it is the only healthy choice; -1 when none is usable.
  int pick(const std::vector<int>& candidates, int avoid) const;

  sim::Machine& machine() { return machine_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  struct State {
    int consecutive = 0;
    bool restarted = false;
    bool quarantined = false;
  };

  sim::Machine& machine_;
  RetryPolicy policy_;
  std::vector<State> state_;
};

}  // namespace cellport::guard
