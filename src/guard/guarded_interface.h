// GuardedInterface: a supervised SPEInterface.
//
// Wraps one kernel module's SPE call path with the cellguard policy:
// per-call simulated-time deadlines, bounded exponential backoff, retry
// on a *different* SPE when one is available, a single context restart
// before quarantine, and a clean "no healthy SPE" verdict the caller
// (marvel::CellEngine) turns into a PPE fallback. The Send/Finish split
// mirrors SPEInterface's so the engine's parallel scenarios keep their
// overlap structure — a fault-free guarded run charges exactly what an
// unguarded run charges.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "guard/health.h"
#include "guard/policy.h"
#include "port/spe_interface.h"

namespace cellport::guard {

class GuardedInterface {
 public:
  /// Opens `module` on `primary_spe`. `alternates` are the spare SPEs a
  /// retry may migrate to (often empty: every SPE pinned); the primary
  /// itself is always a candidate.
  GuardedInterface(SpeHealth& health, const port::KernelModule& module,
                   int primary_spe, std::vector<int> alternates = {});
  ~GuardedInterface();

  GuardedInterface(const GuardedInterface&) = delete;
  GuardedInterface& operator=(const GuardedInterface&) = delete;

  struct Result {
    bool ok = false;
    int value = 0;
    int attempts = 0;
    std::string error;
  };

  /// Asynchronous half: sends the command (re-opening on a healthy SPE
  /// first if the interface was lost). A send with no healthy SPE left
  /// is recorded and surfaces as a failed Finish().
  void Send(int opcode, std::uint64_t ea);

  /// Collects the pending call, running the retry/restart/quarantine
  /// loop on fault or timeout. Never throws for kernel faults or
  /// deadline misses — they are verdicts, not exceptions.
  Result Finish();

  /// Synchronous guarded call.
  Result Call(int opcode, std::uint64_t ea) {
    Send(opcode, ea);
    return Finish();
  }

  /// The SPE currently hosting the module; -1 when none (all candidates
  /// quarantined or busy).
  int spe() const { return spe_; }

  /// cellbalance: the delivery timestamp of the pending call's completion
  /// (sim::kNeverNs when the send found no healthy SPE — such a lane can
  /// never deliver and must lose every steal argmin). Non-consuming and
  /// clock-safe like SPEInterface::peek_completion_ns; Finish() later
  /// resolves the call, including the retry/fallback verdict.
  sim::SimTime peek_ns();

  /// Statistics passthrough for the engine (pipe counters, DMA traffic).
  /// Null when the interface is currently closed.
  port::SPEInterface* iface() { return iface_.get(); }

 private:
  void open_on(int spe);
  void close_current();
  /// Fault bookkeeping + possible restart; returns false when no healthy
  /// SPE remains to retry on.
  bool recover();

  SpeHealth& health_;
  const port::KernelModule* module_;
  std::vector<int> candidates_;
  std::unique_ptr<port::SPEInterface> iface_;
  int spe_ = -1;
  int pending_opcode_ = 0;
  std::uint64_t pending_ea_ = 0;
  bool pending_ = false;
};

}  // namespace cellport::guard
