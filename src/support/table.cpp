#include "support/table.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

namespace cellport {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E' || c == '%' ||
          c == 'x'))
      return false;
  }
  return true;
}

}  // namespace

Table::Table(std::string caption) : caption_(std::move(caption)) {}

void Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::str() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  if (!caption_.empty()) os << caption_ << "\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string cell = i < cells.size() ? cells[i] : "";
      os << "  ";
      if (looks_numeric(cell))
        os << std::setw(static_cast<int>(width[i])) << std::right << cell;
      else
        os << std::setw(static_cast<int>(width[i])) << std::left << cell;
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace cellport
