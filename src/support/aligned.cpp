#include "support/aligned.h"

#include <cstdlib>

#include "support/error.h"

namespace cellport {

void* malloc_align(std::size_t size, unsigned log2_align) {
  if (size == 0) return nullptr;
  std::size_t align = std::size_t{1} << log2_align;
  if (align < sizeof(void*)) align = sizeof(void*);
  // std::aligned_alloc requires size to be a multiple of the alignment.
  std::size_t padded = round_up(size, align);
  void* p = std::aligned_alloc(align, padded);
  if (p == nullptr) throw Error("malloc_align: out of memory");
  return p;
}

void free_align(void* ptr) { std::free(ptr); }

}  // namespace cellport
