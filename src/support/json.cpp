#include "support/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/error.h"

namespace cellport {

// ---- writer ----

void JsonWriter::before_value() {
  if (have_key_) {
    have_key_ = false;
    return;  // value attaches to the key already emitted
  }
  if (!counts_.empty()) {
    if (counts_.back().is_object) {
      throw Error("JsonWriter: value inside an object requires key()");
    }
    if (counts_.back().count > 0) out_ += ',';
    ++counts_.back().count;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  counts_.push_back({0, true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (counts_.empty() || have_key_) {
    throw Error("JsonWriter: unbalanced end_object");
  }
  counts_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  counts_.push_back({0, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (counts_.empty() || have_key_) {
    throw Error("JsonWriter: unbalanced end_array");
  }
  counts_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (counts_.empty() || !counts_.back().is_object || have_key_) {
    throw Error("JsonWriter: key outside an object");
  }
  if (counts_.back().count > 0) out_ += ',';
  ++counts_.back().count;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) throw Error("JsonWriter: number conversion failed");
  out_.append(buf, end);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) throw Error("JsonWriter: number conversion failed");
  out_.append(buf, end);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) throw Error("JsonWriter: number conversion failed");
  out_.append(buf, end);
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::value_fixed(double v, int precision) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  out_ += buf;
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- parser ----

const JsonValue* JsonValue::find(const std::string& k) const {
  if (type != Type::kObject) return nullptr;
  auto it = object.find(k);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    v.boolean = b;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Sufficient for our own output (we only escape control chars).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v.number);
    if (ec != std::errc{} || end != text_.data() + pos_) fail("bad number");
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string k = parse_string();
      skip_ws();
      expect(':');
      v.object[k] = parse_value();
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace cellport
