// Small statistics helpers used by tests and the benchmark reporters.
#pragma once

#include <cstddef>
#include <span>

namespace cellport {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 when n < 2.
double stddev(std::span<const double> xs);

/// Geometric mean; 0 for an empty span. All inputs must be > 0.
double geomean(std::span<const double> xs);

/// Relative error |a-b| / |b|; returns |a| when b == 0.
double relative_error(double a, double b);

/// The p-th percentile (p in [0, 100]) by linear interpolation between
/// order statistics; 0 for an empty span. The input need not be sorted.
double percentile(std::span<const double> xs, double p);

}  // namespace cellport
