// Aligned-memory helpers mirroring the Cell SDK's malloc_align/free_align.
//
// The paper's porting recipe requires every structure shared with an SPE
// kernel to be 16-byte aligned (128-byte alignment is preferred for peak
// DMA bandwidth). These helpers provide the C-style entry points used in
// the paper's listings plus an RAII wrapper for modern call sites.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace cellport {

/// Allocates `size` bytes aligned to `1 << log2_align` bytes.
/// Mirrors the Cell SDK `malloc_align`. Returns nullptr on size==0.
void* malloc_align(std::size_t size, unsigned log2_align);

/// Releases memory obtained from malloc_align. Safe on nullptr.
void free_align(void* ptr);

/// True when `ptr` is aligned to `align` bytes (align must be a power of 2).
inline bool is_aligned(const void* ptr, std::size_t align) {
  return (reinterpret_cast<std::uintptr_t>(ptr) & (align - 1)) == 0;
}

/// Rounds `n` up to the next multiple of `align` (power of two).
constexpr std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

/// RAII buffer of `T` elements with guaranteed byte alignment.
///
/// Default alignment is 128 bytes: optimal DMA transfers on the Cell start
/// on a cache-line (128 B) boundary.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "DMA-able buffers must be trivially copyable");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count, unsigned log2_align = 7)
      : size_(count),
        data_(static_cast<T*>(malloc_align(count * sizeof(T), log2_align))) {
    for (std::size_t i = 0; i < size_; ++i) new (data_ + i) T{};
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : size_(std::exchange(other.size_, 0)),
        data_(std::exchange(other.data_, nullptr)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      free_align(data_);
      size_ = std::exchange(other.size_, 0);
      data_ = std::exchange(other.data_, nullptr);
    }
    return *this;
  }

  ~AlignedBuffer() { free_align(data_); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::size_t bytes() const { return size_ * sizeof(T); }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  std::size_t size_ = 0;
  T* data_ = nullptr;
};

}  // namespace cellport
