// Error types shared across the cellport libraries.
//
// The simulator is strict by design: violating a hardware rule that the real
// Cell B.E. enforces (DMA alignment, local-store capacity, mailbox depth)
// throws instead of silently corrupting state, so a port that works on the
// simulator also respects the real machine's constraints.
#pragma once

#include <stdexcept>
#include <string>

namespace cellport {

/// Base class for all cellport errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A DMA request violated the MFC's alignment or size rules.
class DmaError : public Error {
 public:
  explicit DmaError(const std::string& what) : Error("DMA: " + what) {}
};

/// A local-store allocation exceeded the 256 KiB capacity or was misused.
class LocalStoreError : public Error {
 public:
  explicit LocalStoreError(const std::string& what)
      : Error("LocalStore: " + what) {}
};

/// Mailbox protocol misuse (e.g. overfilling a depth-limited mailbox).
class MailboxError : public Error {
 public:
  explicit MailboxError(const std::string& what) : Error("Mailbox: " + what) {}
};

/// Invalid machine/schedule configuration.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("Config: " + what) {}
};

/// A guarded wait gave up at its simulated-time deadline (the SPE hung,
/// stalled, or responded too slowly). The call's completion may still be
/// pending; SPEInterface::reclaim() drains it before the SPE is reused.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what)
      : Error("Timeout: " + what) {}
};

/// File or stream I/O failure.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("IO: " + what) {}
};

}  // namespace cellport
