// Plain-text table rendering for the benchmark harness.
//
// Every paper table/figure reproduction prints through this formatter so
// the bench output reads like the paper's tables (aligned columns, units,
// captions).
#pragma once

#include <string>
#include <vector>

namespace cellport {

/// Column-aligned ASCII table. Usage:
///   Table t("Table 1. SPE vs PPE kernel speed-ups");
///   t.header({"Kernel", "Speed-up", "Coverage[%]"});
///   t.row({"CH Extract", "53.67", "8"});
///   std::cout << t.str();
class Table {
 public:
  explicit Table(std::string caption = "");

  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);

  /// Renders the table, right-aligning numeric-looking cells.
  std::string str() const;

  /// Formats a double with the given precision (fixed notation).
  static std::string num(double v, int precision = 2);

 private:
  std::string caption_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cellport
