// Deterministic pseudo-random generation for synthetic workloads.
//
// All experiment inputs (test images, SVM models) are generated from seeded
// streams so every run of the benchmark harness reproduces the paper tables
// bit-for-bit.
#pragma once

#include <cstdint>

namespace cellport {

/// xoshiro256** generator, seeded via SplitMix64. Deterministic across
/// platforms (no dependence on libstdc++ distribution internals).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal variate (Box–Muller; consumes two uniforms).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

 private:
  std::uint64_t s_[4];
};

}  // namespace cellport
