#include "support/stats.h"

#include <cmath>

namespace cellport {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

double relative_error(double a, double b) {
  if (b == 0.0) return std::abs(a);
  return std::abs(a - b) / std::abs(b);
}

}  // namespace cellport
