#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace cellport {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

double relative_error(double a, double b) {
  if (b == 0.0) return std::abs(a);
  return std::abs(a - b) / std::abs(b);
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace cellport
