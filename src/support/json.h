// Minimal JSON support: a streaming writer and a small strict parser.
//
// The trace exporter and the bench-artifact writer need machine-readable
// output without third-party dependencies; the parser exists so tests can
// round-trip what the writer produced. Number formatting is deterministic
// (std::to_chars shortest form, or explicit fixed precision), which is what
// lets two identical simulated runs emit byte-identical trace files.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cellport {

/// Forward-only JSON emitter. Keys and values must be issued in a legal
/// order (key before value inside objects); violations throw Error.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& null();

  /// Fixed-precision double ("%.3f"-style): used for timestamps so traces
  /// are byte-stable and human-diffable.
  JsonWriter& value_fixed(double v, int precision);

  /// The document written so far (complete once all scopes are closed).
  const std::string& str() const { return out_; }

 private:
  void before_value();
  std::string out_;
  struct Scope {
    std::size_t count = 0;   // items emitted in this scope so far
    bool is_object = false;  // objects demand key() before each value
  };
  std::vector<Scope> counts_;
  bool have_key_ = false;
};

/// Escapes a string for embedding in JSON (quotes not included).
std::string json_escape(std::string_view s);

/// A parsed JSON document node.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& k) const;
};

/// Strict recursive-descent parse of a complete document; throws
/// cellport::Error on malformed input or trailing garbage.
JsonValue json_parse(std::string_view text);

}  // namespace cellport
