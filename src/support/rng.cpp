#include "support/rng.h"

#include <cmath>

namespace cellport {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() {
  double u1 = next_double();
  double u2 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

}  // namespace cellport
