// Anchor translation unit for the header-only SPU emulation layer.
#include "spu/spu.h"
