// 128-bit SPU vector types.
//
// Every SPU register is 128 bits wide and every SPU instruction is a SIMD
// instruction. SPE kernels in src/kernels are written against these types
// plus the intrinsics in spu/intrinsics.h, mirroring the Cell SDK's
// spu_intrinsics.h vector dialect, so the kernel sources read like real
// SPU C code. Lane arithmetic is emulated on the host; cycle costs are
// charged to the owning SPE context by the intrinsics layer.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace cellport::spu {

template <typename T, std::size_t N>
struct Vec {
  static_assert(sizeof(T) * N == 16, "SPU vectors are 128-bit");
  using lane_type = T;
  static constexpr std::size_t lanes = N;

  std::array<T, N> v{};

  static Vec splat(T x) {
    Vec r;
    r.v.fill(x);
    return r;
  }

  T operator[](std::size_t i) const { return v[i]; }
  T& operator[](std::size_t i) { return v[i]; }

  bool operator==(const Vec& other) const { return v == other.v; }
};

using vec_uchar16 = Vec<std::uint8_t, 16>;
using vec_char16 = Vec<std::int8_t, 16>;
using vec_ushort8 = Vec<std::uint16_t, 8>;
using vec_short8 = Vec<std::int16_t, 8>;
using vec_uint4 = Vec<std::uint32_t, 4>;
using vec_int4 = Vec<std::int32_t, 4>;
using vec_float4 = Vec<float, 4>;
using vec_double2 = Vec<double, 2>;

/// Reinterprets the 128 bits of one vector type as another (free on real
/// hardware: registers are untyped).
template <typename To, typename From>
To vec_cast(const From& x) {
  static_assert(sizeof(To) == 16 && sizeof(From) == 16);
  return std::bit_cast<To>(x);
}

}  // namespace cellport::spu
