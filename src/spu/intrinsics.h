// SPU SIMD intrinsics emulation (the Cell SDK spu_intrinsics.h dialect).
//
// Each function is functionally exact on its lanes and charges the cycle
// cost of the corresponding SPU instruction (or documented instruction
// sequence) to the current SPE context: arithmetic on the even pipe,
// shuffles on the odd pipe, double precision at 3.5 even cycles per op.
// SIMD speedups measured by the benchmarks therefore arise from lane width
// and pipeline balance, not from hard-coded factors.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "spu/pipes.h"
#include "spu/vec.h"

namespace cellport::spu {

// ---- arithmetic (even pipe) ----

template <typename T, std::size_t N>
Vec<T, N> spu_add(const Vec<T, N>& a, const Vec<T, N>& b) {
  charge_arith<T>();
  Vec<T, N> r;
  for (std::size_t i = 0; i < N; ++i)
    r.v[i] = static_cast<T>(a.v[i] + b.v[i]);
  return r;
}

template <typename T, std::size_t N>
Vec<T, N> spu_sub(const Vec<T, N>& a, const Vec<T, N>& b) {
  charge_arith<T>();
  Vec<T, N> r;
  for (std::size_t i = 0; i < N; ++i)
    r.v[i] = static_cast<T>(a.v[i] - b.v[i]);
  return r;
}

/// Single-precision multiply (one fused even-pipe instruction).
inline vec_float4 spu_mul(const vec_float4& a, const vec_float4& b) {
  charge_arith<float>();
  vec_float4 r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}

inline vec_double2 spu_mul(const vec_double2& a, const vec_double2& b) {
  charge_arith<double>();
  vec_double2 r;
  for (std::size_t i = 0; i < 2; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}

/// 32-bit integer multiply. The SPU only has 16x16 multipliers: a full
/// 32-bit multiply compiles to a ~5 instruction sequence (mpyh/mpyh/mpyu/
/// add/add), charged accordingly.
inline vec_int4 spu_mul(const vec_int4& a, const vec_int4& b) {
  charge_even(5);
  vec_int4 r;
  for (std::size_t i = 0; i < 4; ++i)
    r.v[i] = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(a.v[i]) *
        static_cast<std::uint32_t>(b.v[i]));
  return r;
}

inline vec_uint4 spu_mul(const vec_uint4& a, const vec_uint4& b) {
  charge_even(5);
  vec_uint4 r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}

/// Halfword modulo multiply (low 16 bits of the product). The SPU builds
/// this from its 16-bit multipliers in a 2-instruction sequence.
inline vec_ushort8 spu_mulhw(const vec_ushort8& a, const vec_ushort8& b) {
  charge_even(2);
  vec_ushort8 r;
  for (std::size_t i = 0; i < 8; ++i)
    r.v[i] = static_cast<std::uint16_t>(a.v[i] * b.v[i]);
  return r;
}

/// 16-bit multiply, even lanes widened to 32 bits (native mpye-style op).
inline vec_int4 spu_mule(const vec_short8& a, const vec_short8& b) {
  charge_even();
  vec_int4 r;
  for (std::size_t i = 0; i < 4; ++i)
    r.v[i] = static_cast<std::int32_t>(a.v[2 * i]) *
             static_cast<std::int32_t>(b.v[2 * i]);
  return r;
}

/// 16-bit multiply, odd lanes widened to 32 bits.
inline vec_int4 spu_mulo(const vec_short8& a, const vec_short8& b) {
  charge_even();
  vec_int4 r;
  for (std::size_t i = 0; i < 4; ++i)
    r.v[i] = static_cast<std::int32_t>(a.v[2 * i + 1]) *
             static_cast<std::int32_t>(b.v[2 * i + 1]);
  return r;
}

/// Fused multiply-add a*b+c (single instruction on the SPU).
inline vec_float4 spu_madd(const vec_float4& a, const vec_float4& b,
                           const vec_float4& c) {
  charge_arith<float>();
  vec_float4 r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] * b.v[i] + c.v[i];
  return r;
}

inline vec_double2 spu_madd(const vec_double2& a, const vec_double2& b,
                            const vec_double2& c) {
  charge_arith<double>();
  vec_double2 r;
  for (std::size_t i = 0; i < 2; ++i) r.v[i] = a.v[i] * b.v[i] + c.v[i];
  return r;
}

/// Fused multiply-subtract a*b-c.
inline vec_float4 spu_msub(const vec_float4& a, const vec_float4& b,
                           const vec_float4& c) {
  charge_arith<float>();
  vec_float4 r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] * b.v[i] - c.v[i];
  return r;
}

/// Negative multiply-subtract c-a*b (used by the Newton-Raphson division
/// refinement).
inline vec_float4 spu_nmsub(const vec_float4& a, const vec_float4& b,
                            const vec_float4& c) {
  charge_arith<float>();
  vec_float4 r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = c.v[i] - a.v[i] * b.v[i];
  return r;
}

/// Average of unsigned bytes, rounding up (native avgb).
inline vec_uchar16 spu_avg(const vec_uchar16& a, const vec_uchar16& b) {
  charge_even();
  vec_uchar16 r;
  for (std::size_t i = 0; i < 16; ++i)
    r.v[i] = static_cast<std::uint8_t>((a.v[i] + b.v[i] + 1) >> 1);
  return r;
}

/// Absolute difference of unsigned bytes (native absdb).
inline vec_uchar16 spu_absd(const vec_uchar16& a, const vec_uchar16& b) {
  charge_even();
  vec_uchar16 r;
  for (std::size_t i = 0; i < 16; ++i)
    r.v[i] = static_cast<std::uint8_t>(
        a.v[i] > b.v[i] ? a.v[i] - b.v[i] : b.v[i] - a.v[i]);
  return r;
}

// ---- logical (even pipe) ----

template <typename T, std::size_t N>
Vec<T, N> spu_and(const Vec<T, N>& a, const Vec<T, N>& b) {
  charge_even();
  Vec<T, N> r;
  auto pa = std::bit_cast<std::array<std::uint8_t, 16>>(a.v);
  auto pb = std::bit_cast<std::array<std::uint8_t, 16>>(b.v);
  std::array<std::uint8_t, 16> pr;
  for (std::size_t i = 0; i < 16; ++i)
    pr[i] = static_cast<std::uint8_t>(pa[i] & pb[i]);
  r.v = std::bit_cast<std::array<T, N>>(pr);
  return r;
}

template <typename T, std::size_t N>
Vec<T, N> spu_or(const Vec<T, N>& a, const Vec<T, N>& b) {
  charge_even();
  Vec<T, N> r;
  auto pa = std::bit_cast<std::array<std::uint8_t, 16>>(a.v);
  auto pb = std::bit_cast<std::array<std::uint8_t, 16>>(b.v);
  std::array<std::uint8_t, 16> pr;
  for (std::size_t i = 0; i < 16; ++i)
    pr[i] = static_cast<std::uint8_t>(pa[i] | pb[i]);
  r.v = std::bit_cast<std::array<T, N>>(pr);
  return r;
}

template <typename T, std::size_t N>
Vec<T, N> spu_xor(const Vec<T, N>& a, const Vec<T, N>& b) {
  charge_even();
  Vec<T, N> r;
  auto pa = std::bit_cast<std::array<std::uint8_t, 16>>(a.v);
  auto pb = std::bit_cast<std::array<std::uint8_t, 16>>(b.v);
  std::array<std::uint8_t, 16> pr;
  for (std::size_t i = 0; i < 16; ++i)
    pr[i] = static_cast<std::uint8_t>(pa[i] ^ pb[i]);
  r.v = std::bit_cast<std::array<T, N>>(pr);
  return r;
}

// ---- compares and select (even pipe) ----

/// Per-lane equality; result lanes are all-ones (true) or zero.
template <typename T, std::size_t N>
Vec<T, N> spu_cmpeq(const Vec<T, N>& a, const Vec<T, N>& b) {
  charge_even();
  Vec<T, N> r;
  for (std::size_t i = 0; i < N; ++i) {
    bool t = a.v[i] == b.v[i];
    if constexpr (std::is_floating_point_v<T>) {
      r.v[i] = t ? std::bit_cast<T>(
                       std::conditional_t<sizeof(T) == 4, std::uint32_t,
                                          std::uint64_t>(~0ull))
                 : T{};
    } else {
      r.v[i] = t ? static_cast<T>(~T{}) : T{};
    }
  }
  return r;
}

/// Per-lane a > b; all-ones / zero lanes.
template <typename T, std::size_t N>
Vec<T, N> spu_cmpgt(const Vec<T, N>& a, const Vec<T, N>& b) {
  charge_even();
  Vec<T, N> r;
  for (std::size_t i = 0; i < N; ++i) {
    bool t = a.v[i] > b.v[i];
    if constexpr (std::is_floating_point_v<T>) {
      r.v[i] = t ? std::bit_cast<T>(
                       std::conditional_t<sizeof(T) == 4, std::uint32_t,
                                          std::uint64_t>(~0ull))
                 : T{};
    } else {
      r.v[i] = t ? static_cast<T>(~T{}) : T{};
    }
  }
  return r;
}

/// Bitwise select: mask bit 1 picks b, 0 picks a. The SPU's branch-free
/// workhorse (the paper's "remove/replace branches" optimization).
template <typename T, std::size_t N, typename M>
Vec<T, N> spu_sel(const Vec<T, N>& a, const Vec<T, N>& b,
                  const Vec<M, N>& mask) {
  static_assert(sizeof(M) == sizeof(T));
  charge_even();
  Vec<T, N> r;
  auto pa = std::bit_cast<std::array<std::uint8_t, 16>>(a.v);
  auto pb = std::bit_cast<std::array<std::uint8_t, 16>>(b.v);
  auto pm = std::bit_cast<std::array<std::uint8_t, 16>>(mask.v);
  std::array<std::uint8_t, 16> pr;
  for (std::size_t i = 0; i < 16; ++i)
    pr[i] = static_cast<std::uint8_t>((pa[i] & ~pm[i]) | (pb[i] & pm[i]));
  r.v = std::bit_cast<std::array<T, N>>(pr);
  return r;
}

// ---- shifts (even pipe) ----

template <typename T, std::size_t N>
Vec<T, N> spu_sl(const Vec<T, N>& a, unsigned count) {
  static_assert(std::is_integral_v<T>);
  charge_even();
  Vec<T, N> r;
  for (std::size_t i = 0; i < N; ++i)
    r.v[i] = static_cast<T>(a.v[i] << count);
  return r;
}

template <typename T, std::size_t N>
Vec<T, N> spu_sr(const Vec<T, N>& a, unsigned count) {
  static_assert(std::is_integral_v<T>);
  charge_even();
  Vec<T, N> r;
  for (std::size_t i = 0; i < N; ++i)
    r.v[i] = static_cast<T>(a.v[i] >> count);
  return r;
}

// ---- splat / extract / insert ----

template <typename V>
V spu_splats(typename V::lane_type x) {
  charge_even();
  return V::splat(x);
}

/// Moves one lane to a scalar (compiles to a rotate on real SPUs: odd pipe).
template <typename T, std::size_t N>
T spu_extract(const Vec<T, N>& a, std::size_t lane) {
  charge_odd();
  return a.v[lane % N];
}

/// Replaces one lane (shuffle sequence: odd pipe).
template <typename T, std::size_t N>
Vec<T, N> spu_insert(T x, const Vec<T, N>& a, std::size_t lane) {
  charge_odd();
  Vec<T, N> r = a;
  r.v[lane % N] = x;
  return r;
}

/// Promotes a scalar into lane `lane` of an otherwise undefined vector.
template <typename V>
V spu_promote(typename V::lane_type x, std::size_t lane) {
  charge_odd();
  V r{};
  r.v[lane % V::lanes] = x;
  return r;
}

// ---- byte operations ----

/// Per-byte population count (native cntb, even pipe).
inline vec_uchar16 spu_cntb(const vec_uchar16& a) {
  charge_even();
  vec_uchar16 r;
  for (std::size_t i = 0; i < 16; ++i)
    r.v[i] = static_cast<std::uint8_t>(std::popcount(a.v[i]));
  return r;
}

/// Sums each group of 4 bytes of `a` into the corresponding word lane
/// (native sumb semantics, simplified to one operand; even pipe).
inline vec_uint4 spu_sumb(const vec_uchar16& a) {
  charge_even();
  vec_uint4 r;
  for (std::size_t w = 0; w < 4; ++w) {
    std::uint32_t s = 0;
    for (std::size_t b = 0; b < 4; ++b) s += a.v[4 * w + b];
    r.v[w] = s;
  }
  return r;
}

// ---- conversions (even pipe) ----

/// Signed words -> floats with scale 2^-scale (native cuflt/csflt).
inline vec_float4 spu_convtf(const vec_int4& a, unsigned scale = 0) {
  charge_even();
  vec_float4 r;
  float k = std::ldexp(1.0f, -static_cast<int>(scale));
  for (std::size_t i = 0; i < 4; ++i)
    r.v[i] = static_cast<float>(a.v[i]) * k;
  return r;
}

inline vec_float4 spu_convtf(const vec_uint4& a, unsigned scale = 0) {
  charge_even();
  vec_float4 r;
  float k = std::ldexp(1.0f, -static_cast<int>(scale));
  for (std::size_t i = 0; i < 4; ++i)
    r.v[i] = static_cast<float>(a.v[i]) * k;
  return r;
}

/// Floats -> signed words, truncating, with scale 2^scale (native cflts).
inline vec_int4 spu_convts(const vec_float4& a, unsigned scale = 0) {
  charge_even();
  vec_int4 r;
  float k = std::ldexp(1.0f, static_cast<int>(scale));
  for (std::size_t i = 0; i < 4; ++i) {
    float x = a.v[i] * k;
    // Saturating conversion, like the hardware.
    if (x >= 2147483647.0f) {
      r.v[i] = std::numeric_limits<std::int32_t>::max();
    } else if (x <= -2147483648.0f) {
      r.v[i] = std::numeric_limits<std::int32_t>::min();
    } else {
      r.v[i] = static_cast<std::int32_t>(x);
    }
  }
  return r;
}

// ---- estimates and derived math ----

/// Reciprocal estimate (~12 bits, native frest+fi pair: 2 even cycles).
inline vec_float4 spu_re(const vec_float4& a) {
  charge_even(2);
  vec_float4 r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = 1.0f / a.v[i];
  return r;
}

/// Reciprocal square-root estimate (frsqest+fi).
inline vec_float4 spu_rsqrte(const vec_float4& a) {
  charge_even(2);
  vec_float4 r;
  for (std::size_t i = 0; i < 4; ++i)
    r.v[i] = 1.0f / std::sqrt(a.v[i]);
  return r;
}

/// Full-precision division. On the SPU this is the standard estimate +
/// Newton-Raphson sequence (there is no divide instruction), whose result
/// is within 1 ulp of the correctly rounded quotient; the emulation
/// charges that sequence's cost but returns the correctly rounded IEEE
/// quotient, so kernels that mirror the reference's operation order are
/// bit-identical to it.
inline vec_float4 spu_div(const vec_float4& a, const vec_float4& b) {
  charge_even(5);  // frest/fi + multiply + nmsub + madd
  vec_float4 r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] / b.v[i];
  return r;
}

/// Full-precision square root via rsqrte + refinement.
inline vec_float4 spu_sqrt(const vec_float4& a) {
  vec_float4 y = spu_rsqrte(a);             // ~1/sqrt(a)
  vec_float4 x = spu_mul(a, y);             // ~sqrt(a)
  vec_float4 half = spu_splats<vec_float4>(0.5f);
  vec_float4 err = spu_nmsub(x, y, spu_splats<vec_float4>(1.0f));
  vec_float4 corr = spu_mul(spu_mul(x, half), err);
  return spu_add(x, corr);
}

// ---- shuffle / quadword (odd pipe) ----

/// Byte shuffle: result byte i = pattern byte < 16 ? a[p] : b[p-16].
/// (Simplified: the hardware's special 0xC0/0xE0 patterns are not modeled.)
inline vec_uchar16 spu_shuffle(const vec_uchar16& a, const vec_uchar16& b,
                               const vec_uchar16& pattern) {
  charge_odd();
  vec_uchar16 r;
  for (std::size_t i = 0; i < 16; ++i) {
    std::uint8_t p = pattern.v[i] & 0x1F;
    r.v[i] = p < 16 ? a.v[p] : b.v[p - 16];
  }
  return r;
}

template <typename T, std::size_t N>
Vec<T, N> spu_shuffle(const Vec<T, N>& a, const Vec<T, N>& b,
                      const vec_uchar16& pattern) {
  auto r = spu_shuffle(vec_cast<vec_uchar16>(a), vec_cast<vec_uchar16>(b),
                       pattern);
  return vec_cast<Vec<T, N>>(r);
}

/// Rotates the quadword left by `bytes` bytes (odd pipe).
template <typename T, std::size_t N>
Vec<T, N> spu_rlqwbyte(const Vec<T, N>& a, unsigned bytes) {
  charge_odd();
  auto in = vec_cast<vec_uchar16>(a);
  vec_uchar16 out;
  for (std::size_t i = 0; i < 16; ++i)
    out.v[i] = in.v[(i + bytes) % 16];
  return vec_cast<Vec<T, N>>(out);
}

}  // namespace cellport::spu
