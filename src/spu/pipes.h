// Pipeline charging hooks shared by the SPU intrinsics emulation.
//
// Charging is a no-op outside an SPE thread so the functional semantics of
// the vector layer can be unit-tested standalone; inside a kernel, every
// intrinsic accrues cycles on the owning SpeContext's even or odd pipe.
#pragma once

#include "sim/spe_context.h"

namespace cellport::spu {

inline void charge_even(double cycles = 1.0) {
  if (auto* c = sim::current_spe()) c->charge_even(cycles);
}

inline void charge_odd(double cycles = 1.0) {
  if (auto* c = sim::current_spe()) c->charge_odd(cycles);
}

inline void charge_double_op(double ops = 1.0) {
  if (auto* c = sim::current_spe()) c->charge_double(ops);
}

inline void charge_branch_miss(double n = 1.0) {
  if (auto* c = sim::current_spe()) c->charge_branch_miss(n);
}

/// Arithmetic charge dispatch: double-precision lanes pay the SPU's
/// 2-results-per-7-cycles penalty, everything else is one even-pipe cycle.
template <typename T>
inline void charge_arith(double ops = 1.0) {
  if constexpr (std::is_same_v<T, double>) {
    charge_double_op(ops);
  } else {
    charge_even(ops);
  }
}

}  // namespace cellport::spu
