// Umbrella header for SPE kernel code: vector types, intrinsics, memory
// and channel access — everything a kernel source needs to read like real
// SPU C code.
#pragma once

#include "sim/spu_mfcio.h"  // IWYU pragma: export
#include "spu/intrinsics.h" // IWYU pragma: export
#include "spu/memory.h"     // IWYU pragma: export
#include "spu/vec.h"        // IWYU pragma: export
