// SPU local-store access and control-flow cost helpers.
//
// Vector loads/stores on the SPU are always 16-byte aligned quadword
// accesses on the odd pipeline; scalar access compiles to load+rotate
// (2 odd cycles) and stores to a read-modify-write (3 cycles). Branches
// have no hardware predictor: a branch resolved against its software hint
// costs ~18 cycles. These helpers make the kernel code pay those costs
// explicitly, which is how the pre-optimization ports of Section 5.3 end
// up *slower* than the PPE on branchy code.
#pragma once

#include <cstring>

#include "spu/pipes.h"
#include "spu/vec.h"
#include "support/aligned.h"
#include "support/error.h"

namespace cellport::spu {

/// Quadword vector load. `p` must be 16-byte aligned (hardware silently
/// ignores low address bits; we fail loudly instead).
template <typename V>
V vld(const void* p) {
  if (!cellport::is_aligned(p, 16)) {
    throw cellport::Error("SPU vector load from unaligned address");
  }
  charge_odd();
  V r;
  std::memcpy(&r, p, 16);
  return r;
}

/// Quadword vector store; `p` must be 16-byte aligned.
template <typename V>
void vst(void* p, const V& x) {
  if (!cellport::is_aligned(p, 16)) {
    throw cellport::Error("SPU vector store to unaligned address");
  }
  charge_odd();
  std::memcpy(p, &x, 16);
}

/// Scalar load: quadword load + rotate-to-preferred-slot (2 odd cycles).
template <typename T>
T sload(const T* p) {
  charge_odd(2);
  return *p;
}

/// Scalar store: load-quadword, insert, store (1 even + 2 odd cycles).
template <typename T>
void sstore(T* p, T x) {
  charge_even(1);
  charge_odd(2);
  *p = x;
}

/// Scalar arithmetic: n single-lane ops still occupy a full even-pipe
/// issue slot each.
inline void sop(double n = 1.0) { charge_even(n); }

/// A conditional branch. `hint_correct` says whether the software branch
/// hint (or fall-through assumption) matched the actual direction; a
/// wrong hint flushes the pipeline (~18 cycles).
inline bool spu_branch(bool taken, bool hint_correct = true) {
  charge_odd();
  if (!hint_correct) charge_branch_miss();
  return taken;
}

/// Per-iteration loop overhead of compiled SPU loops (induction update +
/// compare on the even pipe, branch on the odd pipe), `n` iterations.
inline void spu_loop(double n) {
  charge_even(2 * n);
  charge_odd(n);
}

}  // namespace cellport::spu
